//! Data-parallel adders.
//!
//! The canonical majority-logic construction: per bit position,
//! `carry = MAJ(a, b, c_in)` and `sum = (a ⊕ b) ⊕ c_in`. Every wire
//! carries an `n`-channel word, so one W-bit adder adds `n` independent
//! pairs of numbers simultaneously.

use crate::netlist::Circuit;
use magnon_core::word::Word;
use magnon_core::GateError;

/// Builds a full adder inside `circuit`; returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn full_adder(
    circuit: &mut Circuit,
    a: crate::netlist::NodeId,
    b: crate::netlist::NodeId,
    carry_in: crate::netlist::NodeId,
) -> Result<(crate::netlist::NodeId, crate::netlist::NodeId), GateError> {
    let axb = circuit.xor2(a, b)?;
    let sum = circuit.xor2(axb, carry_in)?;
    let carry = circuit.maj3(a, b, carry_in)?;
    Ok((sum, carry))
}

/// A W-bit ripple-carry adder over `n`-channel words.
///
/// # Examples
///
/// ```
/// use magnon_circuits::adder::RippleCarryAdder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 8-bit adder over byte-wide (8-channel) words: 8 additions at once.
/// let adder = RippleCarryAdder::new(8, 8)?;
/// let sums = adder.add_many(&[100, 200, 15, 0, 255, 1, 77, 128],
///                           &[27, 55, 240, 0, 1, 255, 23, 127])?;
/// assert_eq!(sums[0], 127);
/// assert_eq!(sums[4], 256); // carry-out preserved
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RippleCarryAdder {
    circuit: Circuit,
    bit_width: usize,
    word_width: usize,
}

impl RippleCarryAdder {
    /// Builds a `bit_width`-bit adder over `word_width`-channel words.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a zero bit width or
    /// an invalid word width.
    pub fn new(bit_width: usize, word_width: usize) -> Result<Self, GateError> {
        if bit_width == 0 || bit_width > 63 {
            return Err(GateError::InvalidParameter {
                parameter: "bit_width",
                value: bit_width as f64,
            });
        }
        let mut circuit = Circuit::new(word_width)?;
        let a_bits: Vec<_> = (0..bit_width).map(|_| circuit.input()).collect();
        let b_bits: Vec<_> = (0..bit_width).map(|_| circuit.input()).collect();
        let mut carry = circuit.constant(Word::zeros(word_width)?)?;
        for i in 0..bit_width {
            let (sum, carry_out) = full_adder(&mut circuit, a_bits[i], b_bits[i], carry)?;
            circuit.mark_output(sum)?;
            carry = carry_out;
        }
        circuit.mark_output(carry)?;
        Ok(RippleCarryAdder {
            circuit,
            bit_width,
            word_width,
        })
    }

    /// Adder bit width W.
    pub fn bit_width(&self) -> usize {
        self.bit_width
    }

    /// Channels per wire (parallel additions per evaluation).
    pub fn word_width(&self) -> usize {
        self.word_width
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Adds bit-transposed operands: `a_bits[i]` carries bit `i` of all
    /// `n` numbers. Returns `bit_width + 1` output words (sums plus
    /// carry).
    ///
    /// # Errors
    ///
    /// Propagates operand validation from the netlist.
    pub fn add_words(&self, a_bits: &[Word], b_bits: &[Word]) -> Result<Vec<Word>, GateError> {
        let inputs = self.gather_operands(a_bits, b_bits)?;
        self.circuit.evaluate(&inputs)
    }

    /// [`RippleCarryAdder::add_words`] with every gate evaluated on a
    /// physical spin-wave backend from `bank`.
    ///
    /// # Errors
    ///
    /// Operand validation plus gate/backend errors from the bank.
    pub fn add_words_with(
        &self,
        bank: &mut crate::netlist::GateBank,
        a_bits: &[Word],
        b_bits: &[Word],
    ) -> Result<Vec<Word>, GateError> {
        self.add_words_on(bank, a_bits, b_bits)
    }

    /// [`RippleCarryAdder::add_words`] with every gate routed through
    /// any [`crate::netlist::GateDispatcher`] — an inline bank or a
    /// serving scheduler.
    ///
    /// # Errors
    ///
    /// Operand validation plus gate/backend errors from the dispatcher.
    pub fn add_words_on(
        &self,
        dispatcher: &mut dyn crate::netlist::GateDispatcher,
        a_bits: &[Word],
        b_bits: &[Word],
    ) -> Result<Vec<Word>, GateError> {
        let inputs = self.gather_operands(a_bits, b_bits)?;
        self.circuit.evaluate_on(dispatcher, &inputs)
    }

    fn gather_operands(&self, a_bits: &[Word], b_bits: &[Word]) -> Result<Vec<Word>, GateError> {
        if a_bits.len() != self.bit_width || b_bits.len() != self.bit_width {
            return Err(GateError::InputCountMismatch {
                expected: self.bit_width,
                actual: a_bits.len().min(b_bits.len()),
            });
        }
        Ok(a_bits.iter().chain(b_bits.iter()).copied().collect())
    }

    /// Adds `n = word_width` pairs of numbers, transposing to channel
    /// form and back internally.
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] when the slices do not hold
    ///   exactly `word_width` numbers.
    /// * [`GateError::InvalidParameter`] when an operand does not fit in
    ///   `bit_width` bits.
    pub fn add_many(&self, a: &[u64], b: &[u64]) -> Result<Vec<u64>, GateError> {
        let (a_bits, b_bits) = self.transpose_operands(a, b)?;
        let outputs = self.add_words(&a_bits, &b_bits)?;
        Ok(transpose_from_words(&outputs, self.word_width))
    }

    /// [`RippleCarryAdder::add_many`] with every gate evaluated on a
    /// physical spin-wave backend from `bank`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RippleCarryAdder::add_many`], plus
    /// gate/backend errors from the bank.
    pub fn add_many_with(
        &self,
        bank: &mut crate::netlist::GateBank,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, GateError> {
        self.add_many_on(bank, a, b)
    }

    /// [`RippleCarryAdder::add_many`] with every gate routed through
    /// any [`crate::netlist::GateDispatcher`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RippleCarryAdder::add_many`], plus
    /// gate/backend errors from the dispatcher.
    pub fn add_many_on(
        &self,
        dispatcher: &mut dyn crate::netlist::GateDispatcher,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, GateError> {
        let (a_bits, b_bits) = self.transpose_operands(a, b)?;
        let outputs = self.add_words_on(dispatcher, &a_bits, &b_bits)?;
        Ok(transpose_from_words(&outputs, self.word_width))
    }

    fn transpose_operands(
        &self,
        a: &[u64],
        b: &[u64],
    ) -> Result<(Vec<Word>, Vec<Word>), GateError> {
        if a.len() != self.word_width || b.len() != self.word_width {
            return Err(GateError::InputCountMismatch {
                expected: self.word_width,
                actual: a.len().min(b.len()),
            });
        }
        let limit = 1u64 << self.bit_width;
        for &v in a.iter().chain(b.iter()) {
            if v >= limit {
                return Err(GateError::InvalidParameter {
                    parameter: "operand",
                    value: v as f64,
                });
            }
        }
        Ok((
            transpose_to_words(a, self.bit_width, self.word_width)?,
            transpose_to_words(b, self.bit_width, self.word_width)?,
        ))
    }
}

/// Transposes `numbers[c]` (one per channel) into bit-plane words:
/// result `[i]` holds bit `i` of every number, channel-aligned.
///
/// # Errors
///
/// Returns [`GateError::InputCountMismatch`] when `numbers.len()` is not
/// `word_width`.
pub fn transpose_to_words(
    numbers: &[u64],
    bit_width: usize,
    word_width: usize,
) -> Result<Vec<Word>, GateError> {
    if numbers.len() != word_width {
        return Err(GateError::InputCountMismatch {
            expected: word_width,
            actual: numbers.len(),
        });
    }
    let mut words = Vec::with_capacity(bit_width);
    for i in 0..bit_width {
        let mut w = Word::zeros(word_width)?;
        for (c, &v) in numbers.iter().enumerate() {
            w = w.with_bit(c, (v >> i) & 1 == 1)?;
        }
        words.push(w);
    }
    Ok(words)
}

/// Inverse of [`transpose_to_words`]: collects bit-plane words back into
/// one number per channel.
pub fn transpose_from_words(words: &[Word], word_width: usize) -> Vec<u64> {
    let mut numbers = vec![0u64; word_width];
    for (i, w) in words.iter().enumerate() {
        for (c, number) in numbers.iter_mut().enumerate() {
            if w.bit(c).unwrap_or(false) {
                *number |= 1 << i;
            }
        }
    }
    numbers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_full_adder_truth_table() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let cin = c.input();
        let (s, cout) = full_adder(&mut c, a, b, cin).unwrap();
        c.mark_output(s).unwrap();
        c.mark_output(cout).unwrap();
        // Drive all 8 combinations, one per channel.
        let a_w = Word::from_u8(0b10101010);
        let b_w = Word::from_u8(0b11001100);
        let c_w = Word::from_u8(0b11110000);
        let out = c.evaluate(&[a_w, b_w, c_w]).unwrap();
        for i in 0..8 {
            let (ai, bi, ci) = ((i >> 1) & 1, (i >> 2) & 1, (i >> 3 != 0) as usize);
            let _ = (ai, bi, ci);
            let a_bit = a_w.bit(i).unwrap() as usize;
            let b_bit = b_w.bit(i).unwrap() as usize;
            let c_bit = c_w.bit(i).unwrap() as usize;
            let total = a_bit + b_bit + c_bit;
            assert_eq!(out[0].bit(i).unwrap(), total % 2 == 1, "sum at {i}");
            assert_eq!(out[1].bit(i).unwrap(), total >= 2, "carry at {i}");
        }
    }

    #[test]
    fn adder_matches_u64_arithmetic() {
        let adder = RippleCarryAdder::new(8, 8).unwrap();
        let a = [0u64, 255, 17, 100, 200, 1, 128, 64];
        let b = [0u64, 255, 42, 55, 56, 254, 128, 191];
        let sums = adder.add_many(&a, &b).unwrap();
        for c in 0..8 {
            assert_eq!(sums[c], a[c] + b[c], "channel {c}");
        }
    }

    #[test]
    fn adder_randomised_against_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let adder = RippleCarryAdder::new(12, 8).unwrap();
        for _ in 0..50 {
            let a: Vec<u64> = (0..8).map(|_| rng.gen_range(0..4096)).collect();
            let b: Vec<u64> = (0..8).map(|_| rng.gen_range(0..4096)).collect();
            let sums = adder.add_many(&a, &b).unwrap();
            for c in 0..8 {
                assert_eq!(sums[c], a[c] + b[c]);
            }
        }
    }

    #[test]
    fn gate_counts_match_construction() {
        // W-bit ripple-carry: W MAJ + 2W XOR.
        let adder = RippleCarryAdder::new(8, 8).unwrap();
        let counts = adder.circuit().gate_counts();
        assert_eq!(counts.maj3, 8);
        assert_eq!(counts.xor2, 16);
    }

    #[test]
    fn operand_validation() {
        let adder = RippleCarryAdder::new(4, 8).unwrap();
        assert!(adder.add_many(&[0; 7], &[0; 8]).is_err());
        // 16 does not fit in 4 bits.
        assert!(adder.add_many(&[16, 0, 0, 0, 0, 0, 0, 0], &[0; 8]).is_err());
        assert!(RippleCarryAdder::new(0, 8).is_err());
        assert!(RippleCarryAdder::new(64, 8).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let numbers = [5u64, 9, 0, 15, 3, 8, 1, 2];
        let words = transpose_to_words(&numbers, 4, 8).unwrap();
        assert_eq!(words.len(), 4);
        let back = transpose_from_words(&words, 8);
        assert_eq!(back, numbers.to_vec());
    }

    #[test]
    fn physical_adder_matches_boolean_adder() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let adder = RippleCarryAdder::new(6, 8).unwrap();
        let mut bank = crate::netlist::GateBank::new(
            Waveguide::paper_default().unwrap(),
            8,
            BackendChoice::Cached,
        );
        let a = [63u64, 0, 17, 42, 5, 60, 33, 1];
        let b = [1u64, 63, 8, 21, 58, 3, 30, 62];
        let physical = adder.add_many_with(&mut bank, &a, &b).unwrap();
        let boolean = adder.add_many(&a, &b).unwrap();
        assert_eq!(physical, boolean);
        for c in 0..8 {
            assert_eq!(physical[c], a[c] + b[c], "channel {c}");
        }
        // 6 full adders x 3 gates each, all batched once per node.
        assert!(bank.sets_evaluated() >= 18);
    }

    #[test]
    fn carry_out_is_preserved() {
        let adder = RippleCarryAdder::new(4, 2).unwrap();
        let sums = adder.add_many(&[15, 1], &[1, 1]).unwrap();
        assert_eq!(sums[0], 16);
        assert_eq!(sums[1], 2);
    }
}
