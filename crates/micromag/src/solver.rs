//! The finite-difference LLG solver.
//!
//! [`LlgSolver`] owns the magnetization state, a per-cell damping
//! profile and a stack of [`FieldTerm`]s, and advances the state with a
//! fixed-step RK4 integrator specialised to `Vec<Vec3>` states (no
//! flattening, no per-step allocation). After every step the
//! magnetization is projected back onto the unit sphere — `|m| = 1` is
//! an LLG invariant that explicit integrators drift from.

use crate::error::SimError;
use crate::field::FieldTerm;
use crate::mesh::Mesh;
use crate::probe::Recorder;
use magnon_math::constants::{GAMMA_E, MU_0};
use magnon_math::Vec3;
use magnon_physics::material::Material;

/// Finite-difference Landau–Lifshitz–Gilbert solver.
///
/// # Examples
///
/// Relaxation: a tilted uniform state relaxes to the easy axis under
/// anisotropy + damping.
///
/// ```
/// use magnon_micromag::field::UniaxialAnisotropy;
/// use magnon_micromag::mesh::Mesh;
/// use magnon_micromag::solver::LlgSolver;
/// use magnon_math::Vec3;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(20.0e-9, 2.0e-9, 50.0e-9, 1.0e-9)?;
/// let material = Material::fe_co_b().with_damping(0.5).map_err(magnon_micromag::SimError::from)?;
/// let mut solver = LlgSolver::new(mesh, material)?;
/// solver.add_field_term(Box::new(UniaxialAnisotropy::perpendicular(solver.material())?));
/// solver.set_uniform_magnetization(Vec3::new(0.3, 0.0, 0.954).normalized().unwrap());
/// solver.run(0.2e-9, 2.0e-14)?;
/// assert!(solver.magnetization().iter().all(|m| m.z > 0.99));
/// # Ok(())
/// # }
/// ```
pub struct LlgSolver {
    mesh: Mesh,
    material: Material,
    alpha: Vec<f64>,
    field_terms: Vec<Box<dyn FieldTerm>>,
    m: Vec<Vec3>,
    t: f64,
    // RK4 scratch buffers.
    h: Vec<Vec3>,
    k1: Vec<Vec3>,
    k2: Vec<Vec3>,
    k3: Vec<Vec3>,
    k4: Vec<Vec3>,
    m_tmp: Vec<Vec3>,
}

impl std::fmt::Debug for LlgSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlgSolver")
            .field("mesh", &self.mesh)
            .field("t", &self.t)
            .field(
                "terms",
                &self
                    .field_terms
                    .iter()
                    .map(|t| t.name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl LlgSolver {
    /// Creates a solver with the magnetization initialised along +z
    /// (the PMA ground state) and uniform material damping.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty mesh (cannot
    /// occur for meshes built by [`Mesh`]).
    pub fn new(mesh: Mesh, material: Material) -> Result<Self, SimError> {
        let n = mesh.cell_count();
        if n == 0 {
            return Err(SimError::InvalidParameter {
                parameter: "cell_count",
                value: 0.0,
            });
        }
        Ok(LlgSolver {
            alpha: vec![material.gilbert_damping(); n],
            field_terms: Vec::new(),
            m: vec![Vec3::Z; n],
            t: 0.0,
            h: vec![Vec3::ZERO; n],
            k1: vec![Vec3::ZERO; n],
            k2: vec![Vec3::ZERO; n],
            k3: vec![Vec3::ZERO; n],
            k4: vec![Vec3::ZERO; n],
            m_tmp: vec![Vec3::ZERO; n],
            mesh,
            material,
        })
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// The magnetization state (unit vectors, one per cell).
    pub fn magnetization(&self) -> &[Vec3] {
        &self.m
    }

    /// Adds an effective-field contribution.
    pub fn add_field_term(&mut self, term: Box<dyn FieldTerm>) {
        self.field_terms.push(term);
    }

    /// Names of the installed field terms, in application order.
    pub fn field_term_names(&self) -> Vec<&'static str> {
        self.field_terms.iter().map(|t| t.name()).collect()
    }

    /// Replaces the per-cell damping profile (e.g. with absorbers).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] on length mismatch or
    /// out-of-range values.
    pub fn set_damping_profile(&mut self, alpha: Vec<f64>) -> Result<(), SimError> {
        if alpha.len() != self.m.len() {
            return Err(SimError::InvalidParameter {
                parameter: "alpha_len",
                value: alpha.len() as f64,
            });
        }
        if alpha
            .iter()
            .any(|&a| !(a.is_finite() && a > 0.0 && a <= 1.0))
        {
            return Err(SimError::InvalidParameter {
                parameter: "alpha",
                value: f64::NAN,
            });
        }
        self.alpha = alpha;
        Ok(())
    }

    /// Sets every cell to direction `m0` (normalised internally).
    pub fn set_uniform_magnetization(&mut self, m0: Vec3) {
        let mut v = m0;
        v.renormalize();
        self.m.fill(v);
    }

    /// Sets the magnetization cell-wise from a function of the flat cell
    /// index (normalised internally).
    pub fn set_magnetization_with<F: FnMut(usize) -> Vec3>(&mut self, mut f: F) {
        for (i, cell) in self.m.iter_mut().enumerate() {
            let mut v = f(i);
            v.renormalize();
            *cell = v;
        }
    }

    fn assemble_field(&mut self, m: &[Vec3], t: f64) {
        self.h.fill(Vec3::ZERO);
        for term in &self.field_terms {
            term.add_field(&self.mesh, m, t, &mut self.h);
        }
    }

    /// Evaluates `dm/dt` for state `m` at time `t` into `out`.
    fn rhs(&mut self, t: f64, state_from_tmp: bool, out_sel: usize) {
        // Work around borrow rules: the state lives either in self.m or
        // self.m_tmp; copy references via indices.
        let n = self.m.len();
        // SAFETY-free approach: assemble into h using a clone-free split.
        if state_from_tmp {
            let tmp = std::mem::take(&mut self.m_tmp);
            self.assemble_field(&tmp, t);
            self.m_tmp = tmp;
        } else {
            let cur = std::mem::take(&mut self.m);
            self.assemble_field(&cur, t);
            self.m = cur;
        }
        let gamma_prime = GAMMA_E * MU_0;
        let state: &[Vec3] = if state_from_tmp { &self.m_tmp } else { &self.m };
        let out: &mut [Vec3] = match out_sel {
            1 => &mut self.k1,
            2 => &mut self.k2,
            3 => &mut self.k3,
            _ => &mut self.k4,
        };
        for i in 0..n {
            let mi = state[i];
            let hi = self.h[i];
            let a = self.alpha[i];
            let pref = -gamma_prime / (1.0 + a * a);
            let m_x_h = mi.cross(hi);
            let m_x_m_x_h = mi.cross(m_x_h);
            out[i] = (m_x_h + m_x_m_x_h * a) * pref;
        }
    }

    /// Advances the state by one RK4 step of `dt` seconds and
    /// renormalises.
    pub fn step(&mut self, dt: f64) {
        let n = self.m.len();
        // k1 = f(t, m)
        self.rhs(self.t, false, 1);
        // k2 = f(t + dt/2, m + dt/2 k1)
        for i in 0..n {
            self.m_tmp[i] = self.m[i] + self.k1[i] * (0.5 * dt);
        }
        self.rhs(self.t + 0.5 * dt, true, 2);
        // k3 = f(t + dt/2, m + dt/2 k2)
        for i in 0..n {
            self.m_tmp[i] = self.m[i] + self.k2[i] * (0.5 * dt);
        }
        self.rhs(self.t + 0.5 * dt, true, 3);
        // k4 = f(t + dt, m + dt k3)
        for i in 0..n {
            self.m_tmp[i] = self.m[i] + self.k3[i] * dt;
        }
        self.rhs(self.t + dt, true, 4);
        let sixth = dt / 6.0;
        for i in 0..n {
            let incr = (self.k1[i] + (self.k2[i] + self.k3[i]) * 2.0 + self.k4[i]) * sixth;
            let mut m = self.m[i] + incr;
            m.renormalize();
            self.m[i] = m;
        }
        self.t += dt;
    }

    /// Runs for `duration` seconds with step `dt`, without recording.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidParameter`] for non-positive inputs.
    /// * [`SimError::UnstableTimeStep`] when `dt` exceeds the stability
    ///   limit of the mesh/material pair.
    /// * [`SimError::Diverged`] if the state stops being finite.
    pub fn run(&mut self, duration: f64, dt: f64) -> Result<usize, SimError> {
        self.run_with(duration, dt, |_, _| Ok(()))
    }

    /// Runs for `duration` seconds with step `dt`, recording probes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LlgSolver::run`], plus probe errors.
    pub fn run_recorded(
        &mut self,
        duration: f64,
        dt: f64,
        recorder: &mut Recorder,
    ) -> Result<usize, SimError> {
        // Record the initial state, then after every step.
        recorder.observe(&self.mesh, &self.m)?;
        self.run_with(duration, dt, |mesh_m, rec_step| {
            let (mesh, m) = mesh_m;
            let _ = rec_step;
            recorder.observe(mesh, m)
        })
    }

    fn run_with<F>(&mut self, duration: f64, dt: f64, mut observe: F) -> Result<usize, SimError>
    where
        F: FnMut((&Mesh, &[Vec3]), usize) -> Result<(), SimError>,
    {
        if !(duration.is_finite() && duration > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "duration",
                value: duration,
            });
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "dt",
                value: dt,
            });
        }
        let limit = crate::stability::max_stable_time_step(&self.mesh, &self.material);
        if dt > limit {
            return Err(SimError::UnstableTimeStep {
                requested: dt,
                limit,
            });
        }
        let steps = (duration / dt).round().max(1.0) as usize;
        for s in 0..steps {
            self.step(dt);
            if s % 256 == 0 && !self.m[0].is_finite() {
                return Err(SimError::Diverged { at_time: self.t });
            }
            observe((&self.mesh, &self.m), s)?;
        }
        if self.m.iter().any(|m| !m.is_finite()) {
            return Err(SimError::Diverged { at_time: self.t });
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{Exchange, LocalDemag, UniaxialAnisotropy, Zeeman};
    use crate::probe::Probe;
    use crate::source::Antenna;
    use crate::stability::suggested_time_step;
    use magnon_math::constants::{GHZ, NM, NS};
    use magnon_physics::macrospin::Macrospin;

    fn small_mesh() -> Mesh {
        Mesh::line(100.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap()
    }

    fn paper_solver(mesh: Mesh) -> LlgSolver {
        let material = Material::fe_co_b();
        let mut s = LlgSolver::new(mesh, material).unwrap();
        s.add_field_term(Box::new(Exchange::new(&material)));
        s.add_field_term(Box::new(
            UniaxialAnisotropy::perpendicular(&material).unwrap(),
        ));
        s.add_field_term(Box::new(LocalDemag::out_of_plane(&material, 1.0).unwrap()));
        s
    }

    #[test]
    fn ground_state_is_stationary() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        let dt = suggested_time_step(s.mesh(), s.material());
        s.run(0.05 * NS, dt).unwrap();
        for m in s.magnetization() {
            assert!((m.z - 1.0).abs() < 1e-10, "ground state drifted: {m}");
        }
    }

    #[test]
    fn norm_invariant_during_dynamics() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        let a = Antenna::new(20.0 * NM, 10.0 * NM, 20.0 * GHZ, 2.0e4, 0.0).unwrap();
        s.add_field_term(Box::new(a));
        let dt = suggested_time_step(s.mesh(), s.material());
        s.run(0.1 * NS, dt).unwrap();
        for m in s.magnetization() {
            assert!((m.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_macrospin_for_single_cell_dynamics() {
        // A uniform state under a Zeeman field precesses like the
        // macrospin integrator from magnon-physics.
        let mesh = Mesh::line(8.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let material = Material::fe_co_b();
        let field = Vec3::new(0.0, 0.0, 2.0e5);
        let mut s = LlgSolver::new(mesh, material).unwrap();
        s.add_field_term(Box::new(Zeeman::new(field)));
        let m0 = Vec3::new(0.4, 0.0, 0.916_515_138_991_168)
            .normalized()
            .unwrap();
        s.set_uniform_magnetization(m0);
        let dt = 1.0e-14;
        let duration = 0.05 * NS;
        s.run(duration, dt).unwrap();

        let reference = Macrospin::new(field, material.gilbert_damping()).unwrap();
        let traj = reference.integrate(m0, duration, dt).unwrap();
        let expected = traj.last().unwrap();
        let got = s.magnetization()[0];
        assert!(
            (got - *expected).norm() < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn antenna_excites_at_drive_frequency() {
        let mesh = Mesh::line(400.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let mut s = paper_solver(mesh);
        let f = 20.0 * GHZ;
        s.add_field_term(Box::new(
            Antenna::new(50.0 * NM, 10.0 * NM, f, 2.0e4, 0.0).unwrap(),
        ));
        let dt = suggested_time_step(s.mesh(), s.material());
        let interval = 5;
        let mut rec = Recorder::new(vec![Probe::point(250.0 * NM)], interval, dt).unwrap();
        s.run_recorded(1.2 * NS, dt, &mut rec).unwrap();
        let series = rec.into_series().unwrap();
        let steady = series[0].after(0.6 * NS).unwrap();
        let amp_drive = steady.amplitude_at(f).unwrap();
        let amp_off = steady.amplitude_at(2.0 * f).unwrap();
        assert!(amp_drive > 1e-4, "drive tone missing: {amp_drive}");
        assert!(amp_drive > 20.0 * amp_off, "harmonic leakage too high");
    }

    #[test]
    fn rejects_unstable_time_step() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        let limit = crate::stability::max_stable_time_step(s.mesh(), s.material());
        assert!(matches!(
            s.run(1.0 * NS, 10.0 * limit),
            Err(SimError::UnstableTimeStep { .. })
        ));
    }

    #[test]
    fn rejects_bad_run_parameters() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        assert!(s.run(0.0, 1e-14).is_err());
        assert!(s.run(1.0 * NS, -1e-14).is_err());
    }

    #[test]
    fn damping_profile_validation() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        assert!(s.set_damping_profile(vec![0.004; 3]).is_err());
        let n = s.mesh().cell_count();
        assert!(s.set_damping_profile(vec![-0.1; n]).is_err());
        assert!(s.set_damping_profile(vec![0.01; n]).is_ok());
    }

    #[test]
    fn set_magnetization_with_normalises() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        s.set_magnetization_with(|i| Vec3::new(i as f64 + 1.0, 0.0, 1.0));
        for m in s.magnetization() {
            assert!((m.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn field_term_names_listed() {
        let mesh = small_mesh();
        let s = paper_solver(mesh);
        assert_eq!(
            s.field_term_names(),
            vec!["exchange", "uniaxial_anisotropy", "local_demag"]
        );
    }

    #[test]
    fn time_advances() {
        let mesh = small_mesh();
        let mut s = paper_solver(mesh);
        let dt = suggested_time_step(s.mesh(), s.material());
        let steps = s.run(0.01 * NS, dt).unwrap();
        assert!((s.time() - steps as f64 * dt).abs() < 1e-20);
    }
}
