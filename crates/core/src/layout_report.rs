//! Human-readable rendering of in-line gate layouts.
//!
//! Renders the paper's Fig. 2 as text: one lane per channel, `0`–`9`
//! marking that channel's input transducers in order and `D` its
//! detector, plus a summary table of frequencies, wavelengths and
//! spacings. Used by examples and debugging sessions; the renderer is
//! pure formatting over [`InlineLayout`].

use crate::channel::ChannelPlan;
use crate::gate::LaneId;
use crate::inline::InlineLayout;
use std::fmt::Write as _;

/// Renders `layout` as an ASCII diagram, `columns` characters wide.
///
/// Returns a multi-line string; one lane per channel plus an axis line.
///
/// # Examples
///
/// ```
/// use magnon_core::channel::{ChannelPlan, DispersionModel};
/// use magnon_core::encoding::ReadoutMode;
/// use magnon_core::inline::{InlineLayout, LayoutSpec};
/// use magnon_core::layout_report::render_layout;
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let guide = Waveguide::paper_default()?;
/// let plan = ChannelPlan::uniform(&guide, DispersionModel::Exchange, 2, 10.0e9, 10.0e9)?;
/// let layout = InlineLayout::solve(&plan, 3, LayoutSpec::default(), &[ReadoutMode::Direct; 2])?;
/// let diagram = render_layout(&plan, &layout, 72);
/// assert!(diagram.contains("f1"));
/// assert!(diagram.contains('D'));
/// # Ok(())
/// # }
/// ```
pub fn render_layout(plan: &ChannelPlan, layout: &InlineLayout, columns: usize) -> String {
    let columns = columns.max(20);
    let start = layout.start();
    let end = layout.end();
    let span = (end - start).max(1e-12);
    let scale = |x: f64| -> usize {
        (((x - start) / span) * (columns - 1) as f64)
            .round()
            .clamp(0.0, (columns - 1) as f64) as usize
    };

    let mut out = String::new();
    for c in 0..layout.channel_count() {
        let ch = &plan.channels()[c];
        let mut lane = vec![b'-'; columns];
        for src in layout.sources().iter().filter(|s| s.channel == c) {
            let pos = scale(src.position);
            lane[pos] = b'0' + (src.input as u8 % 10);
        }
        if let Some(det) = layout.detectors().iter().find(|d| d.channel == c) {
            let pos = scale(det.position);
            lane[pos] = b'D';
        }
        let lane_str = String::from_utf8(lane).expect("ascii lane");
        let _ = writeln!(
            out,
            "f{:<2} {:>5.1} GHz |{}| d={:5.1} nm, λ={:5.1} nm",
            c + 1,
            ch.frequency / 1e9,
            lane_str,
            layout.spacings()[c] * 1e9,
            ch.wavelength * 1e9,
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:<width$}  span {:.0} nm, {} sources + {} detectors",
        "",
        format!(
            "0 nm{:>w$}",
            format!("{:.0} nm", span * 1e9),
            w = columns.saturating_sub(4)
        ),
        layout.span() * 1e9,
        layout.sources().len(),
        layout.detectors().len(),
        width = columns
    );
    out
}

/// Renders the frequency occupancy of several lanes sharing one
/// waveguide as an ASCII spectrum, `columns` characters wide: one row
/// per lane, `|` marking each of that lane's channel frequencies on a
/// common axis. Guard bands between lanes show up as the blank runs
/// between marker clusters — the at-a-glance view of an FDM lane
/// assignment (companion paper arXiv:2008.12220).
pub fn render_lane_spectrum(lanes: &[(LaneId, &ChannelPlan)], columns: usize) -> String {
    let columns = columns.max(20);
    let mut out = String::new();
    if lanes.is_empty() {
        return out;
    }
    let f_lo = lanes
        .iter()
        .map(|(_, p)| p.band().0)
        .fold(f64::INFINITY, f64::min);
    let f_hi = lanes.iter().map(|(_, p)| p.band().1).fold(0.0f64, f64::max);
    let span = (f_hi - f_lo).max(1.0);
    let scale = |f: f64| -> usize {
        (((f - f_lo) / span) * (columns - 1) as f64)
            .round()
            .clamp(0.0, (columns - 1) as f64) as usize
    };
    for (lane, plan) in lanes {
        let mut row = vec![b'.'; columns];
        for ch in plan.channels() {
            row[scale(ch.frequency)] = b'|';
        }
        let (low, high) = plan.band();
        let _ = writeln!(
            out,
            "{lane:<7} [{}] {:5.1}-{:5.1} GHz ({} ch)",
            String::from_utf8(row).expect("ascii row"),
            low / 1e9,
            high / 1e9,
            plan.len(),
        );
    }
    let _ = writeln!(
        out,
        "{:<7} {:5.1} GHz{:>w$}",
        "",
        f_lo / 1e9,
        format!("{:.1} GHz", f_hi / 1e9),
        w = columns.saturating_sub(6)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::DispersionModel;
    use crate::encoding::ReadoutMode;
    use crate::inline::LayoutSpec;
    use magnon_math::constants::GHZ;
    use magnon_physics::waveguide::Waveguide;

    fn setup(n: usize) -> (ChannelPlan, InlineLayout) {
        let guide = Waveguide::paper_default().unwrap();
        let plan =
            ChannelPlan::uniform(&guide, DispersionModel::Exchange, n, 10.0 * GHZ, 10.0 * GHZ)
                .unwrap();
        let layout = InlineLayout::solve(
            &plan,
            3,
            LayoutSpec::default(),
            &vec![ReadoutMode::Direct; n],
        )
        .unwrap();
        (plan, layout)
    }

    #[test]
    fn renders_one_lane_per_channel() {
        let (plan, layout) = setup(4);
        let s = render_layout(&plan, &layout, 80);
        let lanes = s.lines().filter(|l| l.starts_with('f')).count();
        assert_eq!(lanes, 4);
    }

    #[test]
    fn every_lane_has_three_sources_and_a_detector() {
        let (plan, layout) = setup(3);
        let s = render_layout(&plan, &layout, 100);
        for line in s.lines().filter(|l| l.starts_with('f')) {
            assert!(line.contains('0'), "missing source 0: {line}");
            assert!(line.contains('1'), "missing source 1: {line}");
            assert!(line.contains('2'), "missing source 2: {line}");
            assert!(line.contains('D'), "missing detector: {line}");
        }
    }

    #[test]
    fn detector_is_rightmost_marker() {
        let (plan, layout) = setup(2);
        let s = render_layout(&plan, &layout, 90);
        for line in s.lines().filter(|l| l.starts_with('f')) {
            let lane: &str = line.split('|').nth(1).unwrap();
            let d = lane.find('D').unwrap();
            for marker in ['0', '1', '2'] {
                let m = lane.find(marker).unwrap();
                assert!(m < d, "source {marker} after detector in {lane}");
            }
        }
    }

    #[test]
    fn narrow_width_is_clamped() {
        let (plan, layout) = setup(2);
        let s = render_layout(&plan, &layout, 1);
        assert!(!s.is_empty());
        // Clamped to the 20-column minimum.
        assert!(s.lines().next().unwrap().split('|').nth(1).unwrap().len() >= 20);
    }

    #[test]
    fn lane_spectrum_renders_one_row_per_lane_with_guard_gaps() {
        let guide = Waveguide::paper_default().unwrap();
        let lane0 =
            ChannelPlan::uniform(&guide, DispersionModel::Exchange, 4, 10.0 * GHZ, 10.0 * GHZ)
                .unwrap();
        let lane1 = ChannelPlan::uniform(
            &guide,
            DispersionModel::Exchange,
            4,
            100.0 * GHZ,
            10.0 * GHZ,
        )
        .unwrap();
        let s = render_lane_spectrum(
            &[
                (crate::gate::LaneId(0), &lane0),
                (crate::gate::LaneId(1), &lane1),
            ],
            80,
        );
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with("lane")).collect();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.matches('|').count(), 4, "4 channels per lane: {row}");
        }
        // Lane 0's markers sit left of lane 1's (disjoint bands).
        let last0 = rows[0].rfind('|').unwrap();
        let first1 = rows[1].find('|').unwrap();
        assert!(last0 < first1, "lane bands must not interleave: {s}");
        assert!(s.contains("10.0"));
        assert!(render_lane_spectrum(&[], 40).is_empty());
    }

    #[test]
    fn summary_line_reports_counts() {
        let (plan, layout) = setup(4);
        let s = render_layout(&plan, &layout, 60);
        assert!(s.contains("12 sources + 4 detectors"));
    }
}
