//! Versioned on-disk persistence for the cached backend's LUT.
//!
//! A [`crate::backend::CachedBackend`] memoizes one
//! [`ChannelReadout`] per `(channel, input-combination)` pair. Warming
//! that table costs `n · 2^m` analytic evaluations — work a serving
//! runtime should not repeat on every restart. This module gives the
//! table a hand-rolled binary format (the workspace's serde shim is a
//! no-op, see `vendor/README.md`):
//!
//! ```text
//! magic   4 B   "MGLT"
//! version 2 B   little-endian u16, currently 1
//! func    1 B   0 = majority, 1 = xor
//! pad     1 B   0
//! m       4 B   input count (LE u32)
//! n       4 B   word width / channel count (LE u32)
//! freqs   n×8 B channel carrier frequencies (LE f64 bits)
//! rows    n ×   row tag (1 B: 0 = untouched row, 1 = present),
//!               then if present 2^m entries, each:
//!               tag (1 B: 0 = empty, 1 = filled),
//!               if filled: amplitude f64, phase f64, logic u8
//! check   8 B   FNV-1a 64 over every preceding byte (LE u64)
//! ```
//!
//! The header doubles as a gate fingerprint: a snapshot only imports
//! into a gate with the same function, operand count and channel
//! frequencies, so a stale file from a different design is rejected
//! instead of silently corrupting results. Any truncation, trailing
//! garbage, wrong magic/version or checksum mismatch fails decoding
//! with [`GateError::Persistence`].

use crate::engine::ChannelReadout;
use crate::error::GateError;
use crate::gate::ParallelGate;
use crate::truth::LogicFunction;
use std::fs;
use std::path::Path;

/// File magic of the LUT format.
pub const LUT_MAGIC: [u8; 4] = *b"MGLT";

/// Current format version.
pub const LUT_VERSION: u16 = 1;

/// A cached backend's LUT contents, detached from the backend so it can
/// be persisted, merged across shards, and re-imported.
#[derive(Debug, Clone, PartialEq)]
pub struct LutSnapshot {
    function: LogicFunction,
    input_count: usize,
    frequencies: Vec<f64>,
    /// `rows[channel][combo]` — an empty row means the channel was
    /// never touched (the backend's lazy representation).
    rows: Vec<Vec<Option<ChannelReadout>>>,
}

impl LutSnapshot {
    /// Wraps `rows` captured from a backend bound to `gate`.
    pub(crate) fn from_gate(gate: &ParallelGate, rows: Vec<Vec<Option<ChannelReadout>>>) -> Self {
        LutSnapshot {
            function: gate.function(),
            input_count: gate.input_count(),
            frequencies: gate.channel_plan().frequencies(),
            rows,
        }
    }

    /// The logic function the table was computed for.
    pub fn function(&self) -> LogicFunction {
        self.function
    }

    /// Operand count `m`.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Word width `n`.
    pub fn word_width(&self) -> usize {
        self.frequencies.len()
    }

    /// Number of filled `(channel, combo)` entries.
    pub fn entry_count(&self) -> usize {
        self.rows
            .iter()
            .map(|row| row.iter().filter(|e| e.is_some()).count())
            .sum()
    }

    /// The per-channel rows, in the backend's lazy representation.
    pub(crate) fn rows(&self) -> &[Vec<Option<ChannelReadout>>] {
        &self.rows
    }

    /// Checks the snapshot was computed for (a gate identical to)
    /// `gate`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Persistence`] naming the first mismatching
    /// fingerprint field.
    pub fn matches_gate(&self, gate: &ParallelGate) -> Result<(), GateError> {
        if self.function != gate.function() {
            return Err(GateError::Persistence {
                reason: format!(
                    "LUT computed for {:?}, gate is {:?}",
                    self.function,
                    gate.function()
                ),
            });
        }
        if self.input_count != gate.input_count() {
            return Err(GateError::Persistence {
                reason: format!(
                    "LUT computed for {} inputs, gate has {}",
                    self.input_count,
                    gate.input_count()
                ),
            });
        }
        let gate_freqs = gate.channel_plan().frequencies();
        if self.frequencies != gate_freqs {
            return Err(GateError::Persistence {
                reason: format!(
                    "LUT channel plan ({} channels) differs from the gate's ({})",
                    self.frequencies.len(),
                    gate_freqs.len()
                ),
            });
        }
        Ok(())
    }

    /// Merges `other`'s entries into `self` (union; existing entries
    /// win). Returns the number of newly adopted entries.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Persistence`] when the snapshots'
    /// fingerprints differ.
    pub fn merge(&mut self, other: &LutSnapshot) -> Result<usize, GateError> {
        if self.function != other.function
            || self.input_count != other.input_count
            || self.frequencies != other.frequencies
        {
            return Err(GateError::Persistence {
                reason: "cannot merge LUT snapshots of different gates".into(),
            });
        }
        let combos = 1usize << self.input_count;
        let mut adopted = 0usize;
        for (row, other_row) in self.rows.iter_mut().zip(other.rows.iter()) {
            if other_row.is_empty() {
                continue;
            }
            if row.is_empty() {
                row.resize(combos, None);
            }
            for (entry, other_entry) in row.iter_mut().zip(other_row) {
                if entry.is_none() && other_entry.is_some() {
                    *entry = *other_entry;
                    adopted += 1;
                }
            }
        }
        Ok(adopted)
    }

    /// Serializes the snapshot into the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let combos = 1usize << self.input_count;
        let mut buf = Vec::with_capacity(16 + self.frequencies.len() * (8 + 1 + combos * 18));
        buf.extend_from_slice(&LUT_MAGIC);
        buf.extend_from_slice(&LUT_VERSION.to_le_bytes());
        buf.push(match self.function {
            LogicFunction::Majority => 0,
            LogicFunction::Xor => 1,
        });
        buf.push(0);
        buf.extend_from_slice(&(self.input_count as u32).to_le_bytes());
        buf.extend_from_slice(&(self.frequencies.len() as u32).to_le_bytes());
        for f in &self.frequencies {
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        for row in &self.rows {
            if row.is_empty() {
                buf.push(0);
                continue;
            }
            buf.push(1);
            for entry in row {
                match entry {
                    None => buf.push(0),
                    Some(r) => {
                        buf.push(1);
                        buf.extend_from_slice(&r.amplitude.to_bits().to_le_bytes());
                        buf.extend_from_slice(&r.phase.to_bits().to_le_bytes());
                        buf.push(r.logic as u8);
                    }
                }
            }
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Deserializes a snapshot, verifying magic, version, structure and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Persistence`] for any malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, GateError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != LUT_MAGIC {
            return Err(malformed("bad magic (not a LUT file)"));
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
        if version != LUT_VERSION {
            return Err(GateError::Persistence {
                reason: format!("unsupported LUT version {version} (expected {LUT_VERSION})"),
            });
        }
        let function = match r.byte()? {
            0 => LogicFunction::Majority,
            1 => LogicFunction::Xor,
            tag => {
                return Err(GateError::Persistence {
                    reason: format!("unknown logic-function tag {tag}"),
                })
            }
        };
        if r.byte()? != 0 {
            return Err(malformed("nonzero padding byte"));
        }
        let input_count = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
        if input_count == 0 || input_count > 16 {
            return Err(malformed("input count outside the cached backend's 1..=16"));
        }
        let width = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
        if width == 0 || width > 64 {
            return Err(malformed("word width outside 1..=64"));
        }
        let mut frequencies = Vec::with_capacity(width);
        for _ in 0..width {
            let bits = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
            frequencies.push(f64::from_bits(bits));
        }
        let combos = 1usize << input_count;
        let mut rows = Vec::with_capacity(width);
        for (channel, &frequency) in frequencies.iter().enumerate() {
            match r.byte()? {
                0 => rows.push(Vec::new()),
                1 => {
                    let mut row = Vec::with_capacity(combos);
                    for _ in 0..combos {
                        match r.byte()? {
                            0 => row.push(None),
                            1 => {
                                let amplitude = f64::from_bits(u64::from_le_bytes(
                                    r.take(8)?.try_into().expect("8 bytes"),
                                ));
                                let phase = f64::from_bits(u64::from_le_bytes(
                                    r.take(8)?.try_into().expect("8 bytes"),
                                ));
                                let logic = match r.byte()? {
                                    0 => false,
                                    1 => true,
                                    _ => return Err(malformed("logic byte outside 0/1")),
                                };
                                row.push(Some(ChannelReadout {
                                    channel,
                                    frequency,
                                    amplitude,
                                    phase,
                                    logic,
                                }));
                            }
                            _ => return Err(malformed("entry tag outside 0/1")),
                        }
                    }
                    rows.push(row);
                }
                _ => return Err(malformed("row tag outside 0/1")),
            }
        }
        let payload_len = r.consumed();
        let stored = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        if r.remaining() != 0 {
            return Err(malformed("trailing bytes after checksum"));
        }
        let computed = fnv1a(&bytes[..payload_len]);
        if stored != computed {
            return Err(malformed("checksum mismatch (file corrupted)"));
        }
        Ok(LutSnapshot {
            function,
            input_count,
            frequencies,
            rows,
        })
    }
}

/// Writes `snapshot` to `path` (parent directories are created).
///
/// The write is crash-safe: bytes land in a uniquely named temporary
/// file in the same directory, which is renamed over `path` only once
/// fully written. An interruption mid-write leaves at worst a stale
/// `.tmp-*` sibling — a previously valid LUT at `path` is never
/// replaced by a truncated one.
///
/// # Errors
///
/// Returns [`GateError::Persistence`] wrapping the I/O failure; on
/// error the temporary file is removed and `path` is untouched.
pub fn save_lut(path: &Path, snapshot: &LutSnapshot) -> Result<(), GateError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| io_error(path, "create directory for", &e))?;
        }
    }
    let tmp = tmp_sibling(path);
    fs::write(&tmp, snapshot.encode()).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_error(&tmp, "write", &e)
    })?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_error(path, "commit", &e)
    })
}

/// A temporary path in `path`'s directory, unique to this process and
/// call (concurrent savers never stomp each other's staging file).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — the counter only needs uniqueness; the names
    // never race because each caller gets a distinct value.
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp-{}-{n}", std::process::id()));
    path.with_file_name(name)
}

/// Reads and decodes a snapshot from `path`.
///
/// # Errors
///
/// Returns [`GateError::Persistence`] for I/O failures and any decoding
/// error.
pub fn load_lut(path: &Path) -> Result<LutSnapshot, GateError> {
    let bytes = fs::read(path).map_err(|e| io_error(path, "read", &e))?;
    LutSnapshot::decode(&bytes)
}

fn io_error(path: &Path, action: &str, e: &std::io::Error) -> GateError {
    GateError::Persistence {
        reason: format!("failed to {action} {}: {e}", path.display()),
    }
}

fn malformed(reason: &str) -> GateError {
    GateError::Persistence {
        reason: format!("malformed LUT file: {reason}"),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Cursor over the encoded byte stream; every read is bounds-checked so
/// truncated files fail cleanly.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], GateError> {
        if self.pos + n > self.bytes.len() {
            return Err(malformed("unexpected end of file"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, GateError> {
        Ok(self.take(1)?[0])
    }

    fn consumed(&self) -> usize {
        self.pos
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CachedBackend, SpinWaveBackend};
    use crate::gate::ParallelGateBuilder;
    use magnon_physics::waveguide::Waveguide;

    fn warm_backend() -> CachedBackend {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .build()
            .unwrap();
        let mut cached = CachedBackend::new(gate).unwrap();
        cached.precompile();
        cached
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = warm_backend().lut_snapshot().unwrap();
        assert_eq!(snap.entry_count(), 4 * 8);
        let decoded = LutSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn partial_tables_roundtrip_too() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .build()
            .unwrap();
        let mut cached = CachedBackend::new(gate).unwrap();
        // Touch a single set: only some entries fill.
        cached
            .evaluate(&[
                crate::word::Word::from_bits(0b0101, 4).unwrap(),
                crate::word::Word::from_bits(0b0011, 4).unwrap(),
                crate::word::Word::from_bits(0b1111, 4).unwrap(),
            ])
            .unwrap();
        let snap = cached.lut_snapshot().unwrap();
        assert!(snap.entry_count() > 0 && snap.entry_count() < 4 * 8);
        assert_eq!(LutSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn corruption_is_rejected() {
        let snap = warm_backend().lut_snapshot().unwrap();
        let good = snap.encode();
        // Flip one payload byte: checksum must catch it.
        let mut bad = good.clone();
        bad[20] ^= 0xFF;
        assert!(matches!(
            LutSnapshot::decode(&bad),
            Err(GateError::Persistence { .. })
        ));
        // Truncation.
        assert!(LutSnapshot::decode(&good[..good.len() - 3]).is_err());
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(LutSnapshot::decode(&long).is_err());
        // Wrong magic.
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(LutSnapshot::decode(&magic).is_err());
        // Wrong version.
        let mut version = good;
        version[4] = 99;
        assert!(matches!(
            LutSnapshot::decode(&version),
            Err(GateError::Persistence { reason }) if reason.contains("version")
        ));
    }

    #[test]
    fn fingerprint_rejects_other_gates() {
        let snap = warm_backend().lut_snapshot().unwrap();
        let other = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .build()
            .unwrap();
        assert!(snap.matches_gate(&other).is_err());
        let xor = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(2)
            .function(LogicFunction::Xor)
            .build()
            .unwrap();
        assert!(snap.matches_gate(&xor).is_err());
    }

    #[test]
    fn merge_unions_entries() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .build()
            .unwrap();
        let w = |bits: u64| crate::word::Word::from_bits(bits, 4).unwrap();
        let mut a = CachedBackend::new(gate.clone()).unwrap();
        a.evaluate(&[w(0b0000), w(0b0000), w(0b0000)]).unwrap();
        let mut b = CachedBackend::new(gate).unwrap();
        b.evaluate(&[w(0b1111), w(0b1111), w(0b1111)]).unwrap();
        let mut merged = a.lut_snapshot().unwrap();
        let before = merged.entry_count();
        let adopted = merged.merge(&b.lut_snapshot().unwrap()).unwrap();
        assert_eq!(merged.entry_count(), before + adopted);
        assert!(adopted > 0);
        // Merging disagreeing shapes fails.
        let other = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .build()
            .unwrap();
        let mut other_snap = CachedBackend::new(other).unwrap().lut_snapshot().unwrap();
        assert!(other_snap.merge(&merged).is_err());
    }

    #[test]
    fn interrupted_write_never_clobbers_a_valid_lut() {
        let snap = warm_backend().lut_snapshot().unwrap();
        let dir = std::env::temp_dir().join(format!("magnon_lut_atomic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("maj3_w4.mglut");
        save_lut(&path, &snap).unwrap();

        // Simulate a crash mid-save: a truncated staging file left
        // behind in the directory. The real path must still decode.
        let encoded = snap.encode();
        std::fs::write(
            dir.join("maj3_w4.mglut.tmp-crashed-0"),
            &encoded[..encoded.len() / 3],
        )
        .unwrap();
        assert_eq!(load_lut(&path).unwrap(), snap);

        // A subsequent save replaces the file atomically and leaves no
        // staging residue of its own.
        let richer = warm_backend().lut_snapshot().unwrap();
        save_lut(&path, &richer).unwrap();
        assert_eq!(load_lut(&path).unwrap(), richer);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.contains(".tmp-") && !name.contains("crashed")
            })
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");

        // A failed commit (target occupied by a directory) errors out
        // without leaving the staging file behind.
        let blocked = dir.join("blocked.mglut");
        std::fs::create_dir_all(&blocked).unwrap();
        assert!(matches!(
            save_lut(&blocked, &snap),
            Err(GateError::Persistence { .. })
        ));
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .contains("blocked.mglut.tmp-")
            })
            .collect();
        assert!(stray.is_empty(), "failed commit left staging: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let snap = warm_backend().lut_snapshot().unwrap();
        let dir = std::env::temp_dir().join("magnon_lut_store_test");
        let path = dir.join("maj3_w4.mglut");
        save_lut(&path, &snap).unwrap();
        assert_eq!(load_lut(&path).unwrap(), snap);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            load_lut(&path),
            Err(GateError::Persistence { .. })
        ));
        let _ = std::fs::remove_dir(&dir);
    }
}
