//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use spinwave_parallel::circuits::adder::{transpose_from_words, transpose_to_words};
use spinwave_parallel::core::encoding::{decode_phase, phase_of, wrap_phase};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::truth::LogicFunction;
use spinwave_parallel::math::fft;
use spinwave_parallel::math::Complex64;
use spinwave_parallel::physics::demag::prism_demag_factors;
use spinwave_parallel::physics::dispersion::DispersionRelation;
use spinwave_parallel::physics::waveguide::Waveguide;

fn byte_gate() -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytic spin-wave engine always agrees with boolean majority.
    #[test]
    fn engine_matches_boolean_majority(a: u8, b: u8, c: u8) {
        let gate = byte_gate();
        let out = gate
            .evaluate(&[Word::from_u8(a), Word::from_u8(b), Word::from_u8(c)])
            .unwrap();
        let expected = (a & b) | (a & c) | (b & c);
        prop_assert_eq!(out.word().to_u8(), expected);
    }

    /// Majority is self-dual: complementing all inputs complements the
    /// output — through the physical engine.
    #[test]
    fn engine_majority_self_dual(a: u8, b: u8, c: u8) {
        let gate = byte_gate();
        let direct = gate
            .evaluate(&[Word::from_u8(a), Word::from_u8(b), Word::from_u8(c)])
            .unwrap()
            .word();
        let complemented = gate
            .evaluate(&[
                Word::from_u8(!a),
                Word::from_u8(!b),
                Word::from_u8(!c),
            ])
            .unwrap()
            .word();
        prop_assert_eq!(direct.not(), complemented);
    }

    /// FFT roundtrip recovers arbitrary signals.
    #[test]
    fn fft_roundtrip(values in proptest::collection::vec(-1.0e3f64..1.0e3, 1..200)) {
        let mut data: Vec<Complex64> =
            values.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        data.resize(fft::next_power_of_two_len(data.len()), Complex64::ZERO);
        let original = data.clone();
        fft::fft_in_place(&mut data).unwrap();
        fft::ifft_in_place(&mut data).unwrap();
        for (got, want) in data.iter().zip(&original) {
            prop_assert!((got.re - want.re).abs() < 1e-8);
            prop_assert!(got.im.abs() < 1e-8);
        }
    }

    /// Parseval: FFT preserves energy (up to 1/N normalisation).
    #[test]
    fn fft_parseval(values in proptest::collection::vec(-10.0f64..10.0, 2..128)) {
        let mut data: Vec<Complex64> =
            values.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        data.resize(fft::next_power_of_two_len(data.len()), Complex64::ZERO);
        let n = data.len() as f64;
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        fft::fft_in_place(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0));
    }

    /// Demagnetizing factors of any prism are positive and sum to 1.
    #[test]
    fn demag_trace_is_one(
        x in 1.0e-9f64..1.0e-5,
        y in 1.0e-9f64..1.0e-5,
        z in 1.0e-9f64..1.0e-5,
    ) {
        let (nx, ny, nz) = prism_demag_factors(x, y, z).unwrap();
        prop_assert!(nx > 0.0 && ny > 0.0 && nz > 0.0);
        prop_assert!((nx + ny + nz - 1.0).abs() < 1e-6);
    }

    /// Dispersion inversion roundtrips for any usable frequency.
    #[test]
    fn dispersion_roundtrip(f_ghz in 6.0f64..200.0) {
        let disp = Waveguide::paper_default()
            .unwrap()
            .exchange_dispersion()
            .unwrap();
        let f = f_ghz * 1e9;
        let k = disp.wavenumber(f).unwrap();
        prop_assert!((disp.frequency(k) - f).abs() / f < 1e-9);
        // Group velocity is positive above FMR.
        prop_assert!(disp.group_velocity(k) > 0.0);
    }

    /// Phase encode/decode are inverse through arbitrary 2π wraps.
    #[test]
    fn phase_roundtrip(bit: bool, wraps in -5i32..5) {
        let phase = phase_of(bit) + wraps as f64 * 2.0 * std::f64::consts::PI;
        prop_assert_eq!(decode_phase(phase), bit);
        let w = wrap_phase(phase);
        prop_assert!(w > -std::f64::consts::PI - 1e-9);
        prop_assert!(w <= std::f64::consts::PI + 1e-9);
    }

    /// Word bit accessors are consistent with the raw bits.
    #[test]
    fn word_bits_consistent(bits: u64, width in 1usize..=64) {
        let w = Word::from_bits(bits, width).unwrap();
        for i in 0..width {
            prop_assert_eq!(w.bit(i).unwrap(), (bits >> i) & 1 == 1);
        }
        prop_assert_eq!(w.not().not(), w);
        let ones = w.iter_bits().filter(|&b| b).count() as u32;
        prop_assert_eq!(ones, w.count_ones());
    }

    /// Transpose to channel words and back is the identity.
    #[test]
    fn transpose_roundtrip(
        numbers in proptest::collection::vec(0u64..65536, 1..16),
    ) {
        let width = numbers.len();
        let words = transpose_to_words(&numbers, 16, width).unwrap();
        let back = transpose_from_words(&words, width);
        prop_assert_eq!(back, numbers);
    }

    /// Layout invariant: for random channel counts and input counts the
    /// solved layout keeps every source→detector distance an integer
    /// number of that channel's wavelengths.
    #[test]
    fn layout_distances_are_wavelength_multiples(
        channels in 2usize..7,
        inputs in 1usize..3,
    ) {
        let inputs = inputs * 2 + 1; // 3 or 5 (odd for majority)
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(channels)
            .inputs(inputs)
            .function(LogicFunction::Majority)
            .build()
            .unwrap();
        for det in gate.layout().detectors() {
            let lambda = gate.channel_plan().channels()[det.channel].wavelength;
            for src in gate
                .layout()
                .sources()
                .iter()
                .filter(|s| s.channel == det.channel)
            {
                let n = (det.position - src.position) / lambda;
                prop_assert!((n - n.round()).abs() < 1e-6, "ratio {}", n);
            }
        }
        // And the gate must decode its truth table.
        prop_assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    /// XOR gates agree with boolean XOR for random words.
    #[test]
    fn engine_matches_boolean_xor(a: u8, b: u8) {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(2)
            .function(LogicFunction::Xor)
            .build()
            .unwrap();
        let out = gate
            .evaluate(&[Word::from_u8(a), Word::from_u8(b)])
            .unwrap();
        prop_assert_eq!(out.word().to_u8(), a ^ b);
    }

    /// The ALU agrees with u64 arithmetic for every op and random
    /// operand vectors.
    #[test]
    fn alu_matches_reference(
        a in proptest::collection::vec(0u64..256, 8),
        b in proptest::collection::vec(0u64..256, 8),
    ) {
        use spinwave_parallel::circuits::alu::{Alu, AluOp};
        let alu = Alu::new(8, 8).unwrap();
        let add = alu.execute(AluOp::Add, &a, &b).unwrap();
        let sub = alu.execute(AluOp::Sub, &a, &b).unwrap();
        let and = alu.execute(AluOp::And, &a, &b).unwrap();
        let or = alu.execute(AluOp::Or, &a, &b).unwrap();
        let xor = alu.execute(AluOp::Xor, &a, &b).unwrap();
        for c in 0..8 {
            prop_assert_eq!(add[c], a[c] + b[c]);
            prop_assert_eq!(sub[c], a[c].wrapping_sub(b[c]) & 0xFF);
            prop_assert_eq!(and[c], a[c] & b[c]);
            prop_assert_eq!(or[c], a[c] | b[c]);
            prop_assert_eq!(xor[c], a[c] ^ b[c]);
        }
    }

    /// `evaluate_batch` is exactly `evaluate` mapped over the sets, on
    /// every software backend.
    #[test]
    fn batch_equals_mapped_single_shot(
        raw_sets in proptest::collection::vec(proptest::collection::vec(0u64..256, 3), 1..12),
    ) {
        let gate = byte_gate();
        let sets: Vec<OperandSet> = raw_sets
            .iter()
            .map(|words| {
                OperandSet::new(words.iter().map(|&v| Word::from_u8(v as u8)).collect())
            })
            .collect();
        for choice in [BackendChoice::Analytic, BackendChoice::Cached] {
            let mut session = gate.session(choice).unwrap();
            let batch = session.evaluate_batch(&sets).unwrap();
            prop_assert_eq!(batch.len(), sets.len());
            for (set, out) in sets.iter().zip(&batch) {
                let single = gate.evaluate(set.words()).unwrap();
                prop_assert_eq!(
                    out.word(),
                    single.word(),
                    "{} backend diverged from single-shot",
                    session.backend_name()
                );
            }
        }
        prop_assert_eq!(
            gate.session(BackendChoice::Cached).unwrap().backend_name(),
            "cached"
        );
    }

    /// Sessions over random gate shapes agree with the boolean truth
    /// table on random operand words.
    #[test]
    fn sessions_match_truth_table(
        width in 1usize..=8,
        a: u8, b: u8, c: u8,
    ) {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(width)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap();
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let words = vec![
            Word::from_bits(a as u64 & mask, width).unwrap(),
            Word::from_bits(b as u64 & mask, width).unwrap(),
            Word::from_bits(c as u64 & mask, width).unwrap(),
        ];
        let expected = ((a & b) | (a & c) | (b & c)) as u64 & mask;
        for choice in [BackendChoice::Analytic, BackendChoice::Cached] {
            let mut session = gate.session(choice).unwrap();
            let out = session.evaluate(&words).unwrap();
            prop_assert_eq!(out.word().bits(), expected);
        }
    }

    /// Monte-Carlo error rates are proper probabilities, zero without
    /// noise, and deterministic under a fixed seed.
    #[test]
    fn robustness_error_rate_bounds(sigma in 0.0f64..2.5, seed: u64) {
        use spinwave_parallel::core::robustness::{monte_carlo_error_rate, NoiseModel};
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(2)
            .inputs(3)
            .build()
            .unwrap();
        let noise = NoiseModel::new(sigma, 0.0).unwrap();
        let r = monte_carlo_error_rate(&gate, noise, 5, seed).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.error_rate()));
        prop_assert_eq!(r.checks, 5 * 8 * 2);
        let r2 = monte_carlo_error_rate(&gate, noise, 5, seed).unwrap();
        prop_assert_eq!(r.failures, r2.failures);
        if sigma == 0.0 {
            prop_assert_eq!(r.failures, 0);
        }
    }
}

/// Backend equivalence, exhaustively: the analytic and cached backends
/// must agree on *every* input combination of 3-input majority gates at
/// widths 1–8 — and both must match the boolean truth table.
#[test]
fn analytic_and_cached_agree_on_every_majority_combination() {
    for width in 1usize..=8 {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(width)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap();
        let mut analytic = gate.session(BackendChoice::Analytic).unwrap();
        let mut cached = gate.session(BackendChoice::Cached).unwrap();
        // One operand set per combination, the combination applied
        // identically on every channel.
        let sets: Vec<OperandSet> = (0..8usize)
            .map(|combo| {
                OperandSet::new(
                    (0..3)
                        .map(|j| {
                            if (combo >> j) & 1 == 1 {
                                Word::ones(width).unwrap()
                            } else {
                                Word::zeros(width).unwrap()
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let from_analytic = analytic.evaluate_batch(&sets).unwrap();
        let from_cached = cached.evaluate_batch(&sets).unwrap();
        for (combo, (a, c)) in from_analytic.iter().zip(&from_cached).enumerate() {
            assert_eq!(
                a.word(),
                c.word(),
                "width {width} combo {combo:03b}: analytic vs cached"
            );
            let ones = (combo & 1) + ((combo >> 1) & 1) + ((combo >> 2) & 1);
            let expected = if ones >= 2 {
                Word::ones(width).unwrap()
            } else {
                Word::zeros(width).unwrap()
            };
            assert_eq!(
                a.word(),
                expected,
                "width {width} combo {combo:03b}: truth table"
            );
        }
    }
}

/// The same exhaustive equivalence for 2-input XOR gates (amplitude
/// decoding) at widths 1–8.
#[test]
fn analytic_and_cached_agree_on_every_xor_combination() {
    for width in 1usize..=8 {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(width)
            .inputs(2)
            .function(LogicFunction::Xor)
            .build()
            .unwrap();
        let mut analytic = gate.session(BackendChoice::Analytic).unwrap();
        let mut cached = gate.session(BackendChoice::Cached).unwrap();
        let sets: Vec<OperandSet> = (0..4usize)
            .map(|combo| {
                OperandSet::new(
                    (0..2)
                        .map(|j| {
                            if (combo >> j) & 1 == 1 {
                                Word::ones(width).unwrap()
                            } else {
                                Word::zeros(width).unwrap()
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let from_analytic = analytic.evaluate_batch(&sets).unwrap();
        let from_cached = cached.evaluate_batch(&sets).unwrap();
        for (combo, (a, c)) in from_analytic.iter().zip(&from_cached).enumerate() {
            assert_eq!(a.word(), c.word(), "width {width} combo {combo:02b}");
            let expected = if ((combo & 1) ^ ((combo >> 1) & 1)) == 1 {
                Word::ones(width).unwrap()
            } else {
                Word::zeros(width).unwrap()
            };
            assert_eq!(
                a.word(),
                expected,
                "width {width} combo {combo:02b}: truth table"
            );
        }
    }
}
