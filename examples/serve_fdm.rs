//! Frequency-division multiplexed serving: an adder and an ALU share
//! ONE physical waveguide on two frequency lanes.
//!
//! The companion paper (*Multi-frequency Data Parallel Spin Wave Logic
//! Gates*, arXiv:2008.12220) shows spin waves at different frequencies
//! coexist on one waveguide, so gates patterned on disjoint bands
//! compute simultaneously on the same medium. Here lane 0 carries the
//! adder's MAJ/XOR pair (10–80 GHz) and lane 1 the ALU's (100–170
//! GHz); two client threads drive both circuits concurrently and the
//! scheduler stacks each whole-waveguide drain into a single
//! multi-lane pass — serving density doubles with zero extra hardware:
//!
//! ```text
//! cargo run --release --example serve_fdm
//! ```

use spinwave_parallel::circuits::adder::RippleCarryAdder;
use spinwave_parallel::circuits::alu::{Alu, AluOp};
use spinwave_parallel::core::backend::BackendChoice;
use spinwave_parallel::core::crosstalk::LaneIsolationReport;
use spinwave_parallel::core::layout_report::render_lane_spectrum;
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::robustness::{monte_carlo_error_rate, NoiseModel};
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{AdaptiveConfig, ScheduledBank, SchedulerBuilder, ServeConfig};
use std::time::{Duration, Instant};

const WIDTH: usize = 8;
const OPS: [AluOp; 5] = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let guide = Waveguide::paper_default()?;
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 1, // one waveguide — all lanes live on one shard
        max_batch: 256,
        linger: Duration::from_micros(150),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(), // FDM stacking is not a policy knob
    });
    let (adder_maj, adder_xor) = builder.register_circuit_gates_on_lane(
        guide,
        WaveguideId(0),
        LaneId(0),
        WIDTH,
        BackendChoice::Cached,
    )?;
    let (alu_maj, alu_xor) = builder.register_circuit_gates_on_lane(
        guide,
        WaveguideId(0),
        LaneId(1),
        WIDTH,
        BackendChoice::Cached,
    )?;
    let scheduler = builder.build()?;

    // The FDM assignment: two lanes, disjoint bands, one waveguide.
    let lane0 = scheduler.gate(adder_maj).unwrap().channel_plan().clone();
    let lane1 = scheduler.gate(alu_maj).unwrap().channel_plan().clone();
    println!("lane spectrum of waveguide 0:");
    print!(
        "{}",
        render_lane_spectrum(&[(LaneId(0), &lane0), (LaneId(1), &lane1)], 64)
    );
    let isolation = LaneIsolationReport::analyze(&[&lane0, &lane1], 0.5e9)?;
    println!(
        "inter-lane isolation: {:.1} dB (guard band {:.0} GHz, {} overlapping pairs)",
        isolation.isolation_db,
        isolation.min_guard_band / 1e9,
        isolation.overlapping_pairs,
    );
    // Fold the crosstalk penalty into a robustness run: the stacked
    // lanes must not cost the majority vote its noise margin.
    let noise = NoiseModel::new(0.1, 0.02)?.with_lane_leakage(isolation.amplitude_leakage())?;
    let robustness = monte_carlo_error_rate(scheduler.gate(adder_maj).unwrap(), noise, 25, 11)?;
    println!(
        "crosstalk-penalized robustness: {} failures in {} checks",
        robustness.failures, robustness.checks,
    );
    assert_eq!(robustness.failures, 0, "the FDM penalty must stay absorbed");

    // Two circuits, one waveguide, driven concurrently.
    let a: Vec<u64> = (0..WIDTH as u64).map(|i| (37 * i + 11) % 256).collect();
    let b: Vec<u64> = (0..WIDTH as u64).map(|i| (91 * i + 170) % 256).collect();
    let adder = RippleCarryAdder::new(WIDTH, WIDTH)?;
    let alu = Alu::new(WIDTH, WIDTH)?;
    let start = Instant::now();
    let (sums, alu_results) = std::thread::scope(|scope| {
        let adder_lane = scope.spawn(|| {
            let mut bank = ScheduledBank::new(&scheduler, adder_maj, adder_xor)?;
            let mut sums = Vec::new();
            for _ in 0..OPS.len() {
                sums = adder.add_many_on(&mut bank, &a, &b)?;
            }
            Ok::<_, Box<dyn std::error::Error + Send + Sync>>(sums)
        });
        let alu_lane = scope.spawn(|| {
            let mut bank = ScheduledBank::new(&scheduler, alu_maj, alu_xor)?;
            let mut results = Vec::new();
            for op in OPS {
                results.push(alu.execute_on(&mut bank, op, &a, &b)?);
            }
            Ok::<_, Box<dyn std::error::Error + Send + Sync>>(results)
        });
        (
            adder_lane.join().expect("adder thread"),
            alu_lane.join().expect("alu thread"),
        )
    });
    let sums = sums.expect("adder lane");
    let alu_results = alu_results.expect("alu lane");
    let elapsed = start.elapsed();

    // Both circuits computed correctly through the shared medium.
    assert_eq!(sums, adder.add_many(&a, &b)?);
    for (op, result) in OPS.iter().zip(&alu_results) {
        assert_eq!(result, &alu.execute(*op, &a, &b)?, "{op:?}");
    }
    println!(
        "\nadder + ALU on one waveguide in {elapsed:?}: sums[0]={}, alu add[0]={}",
        sums[0], alu_results[0][0],
    );

    // A deterministic co-queued burst: submit everything before waiting,
    // so both lanes are pending together whatever the thread timing
    // above did — this is what the stacked-pass assertion below pins.
    use spinwave_parallel::core::backend::OperandSet;
    let burst: Vec<_> = (0..32u64)
        .map(|i| {
            let gate = if i % 2 == 0 { adder_maj } else { alu_maj };
            let words = (0..3)
                .map(|j| Word::from_u8((i.wrapping_mul(0x9E37_79B9) >> (8 * j)) as u8))
                .collect();
            (gate, OperandSet::new(words))
        })
        .collect();
    let outputs = scheduler.evaluate_many(&burst)?;
    for ((gate, set), output) in burst.iter().zip(&outputs) {
        let reference = scheduler.gate(*gate).unwrap().evaluate(set.words())?;
        assert_eq!(output.word(), reference.word());
    }

    let stats = scheduler.stats();
    println!(
        "drains: {} passes, mean {:.1} req/drain; FDM: {} stacked passes x {:.1} lanes, {} of {} requests stacked",
        stats.drain_passes,
        stats.mean_drain(),
        stats.fdm_batches,
        if stats.fdm_batches == 0 {
            0.0
        } else {
            stats.fdm_lanes as f64 / stats.fdm_batches as f64
        },
        stats.fdm_requests,
        stats.completed,
    );
    let telemetry = scheduler.telemetry();
    println!("per-lane counters:");
    for lane in &telemetry.lanes {
        println!(
            "  {} {} -> shard {}: {} served",
            lane.id, lane.lane, lane.shard, lane.served,
        );
    }
    assert!(
        stats.fdm_batches > 0,
        "co-queued two-lane traffic must stack into multi-lane passes: {stats:?}"
    );
    let lane_served: u64 = telemetry.lanes.iter().map(|l| l.served).sum();
    assert_eq!(lane_served, stats.completed);
    scheduler.shutdown()?;
    println!("OK: two circuits served concurrently by one waveguide over FDM lanes");
    Ok(())
}
