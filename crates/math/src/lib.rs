//! Numerical foundations for the `spinwave-parallel` workspace.
//!
//! This crate provides the self-contained numerics used by every other
//! crate in the reproduction of *"n-bit Data Parallel Spin Wave Logic
//! Gate"* (DATE 2020):
//!
//! * [`Complex64`] — complex arithmetic for wave amplitudes and spectra,
//! * [`Vec3`] — 3-vectors for magnetization and magnetic fields,
//! * [`fft`] — radix-2 FFT, inverse FFT and real-input helpers,
//! * [`spectrum`] — sampled time series, windowed spectra, Goertzel
//!   single-bin DFT, band-pass reconstruction (the "Matlab
//!   post-processing" of the paper),
//! * [`integrate`] — explicit ODE integrators (RK4, Heun, adaptive
//!   Dormand–Prince) used by the LLG solvers,
//! * [`roots`] — bracketing root finders for dispersion inversion,
//! * [`interp`] — monotone linear interpolation tables,
//! * [`stats`] — small-sample statistics for signal post-processing,
//! * [`constants`] — physical constants (γ, μ₀) and unit multipliers.
//!
//! # Examples
//!
//! Compute the spectrum of a synthetic two-tone signal and read back the
//! amplitude of each tone:
//!
//! ```
//! use magnon_math::spectrum::TimeSeries;
//!
//! # fn main() -> Result<(), magnon_math::MathError> {
//! let dt = 1.0e-12; // 1 ps sampling
//! let samples: Vec<f64> = (0..4096)
//!     .map(|i| {
//!         let t = i as f64 * dt;
//!         (2.0 * std::f64::consts::PI * 10.0e9 * t).sin()
//!             + 0.5 * (2.0 * std::f64::consts::PI * 30.0e9 * t).sin()
//!     })
//!     .collect();
//! let series = TimeSeries::new(dt, samples)?;
//! let a10 = series.goertzel(10.0e9)?.abs();
//! let a30 = series.goertzel(30.0e9)?.abs();
//! assert!((a10 - 1.0).abs() < 0.05);
//! assert!((a30 - 0.5).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

pub mod complex;
pub mod constants;
pub mod error;
pub mod fft;
pub mod integrate;
pub mod interp;
pub mod roots;
pub mod spectrum;
pub mod stats;
pub mod vec3;
pub mod window;

pub use complex::Complex64;
pub use error::MathError;
pub use vec3::Vec3;
