//! Bit-sliced lane packing for word-parallel batch evaluation.
//!
//! The paper's gate is data-parallel across *channels*: one excitation
//! pass answers `n` logic results. The batch hot path adds the
//! orthogonal axis — data parallelism across *operand sets*. Up to 64
//! sets form the lanes of a block: lane `s`'s bit for channel `c` and
//! input `j` is packed into bit `s` of a `u64` plane, after which one
//! boolean word-op (or one LUT gather) advances all 64 lanes at once.
//!
//! The only non-trivial primitive is the 64×64 bit-matrix transpose
//! that converts between the natural *set-major* layout (one `u64` per
//! operand word, bit `c` = channel `c`) and the *lane-major* layout the
//! sliced kernel consumes (one `u64` per channel, bit `s` = set `s`).
//! [`transpose64`] is the classic recursive block-swap (Hacker's
//! Delight §7-3, widened to 64): swap the off-diagonal 32×32 blocks,
//! then the 16×16 blocks inside them, … down to single bits — six
//! passes of shift/mask/xor over the whole matrix.

/// Transposes a 64×64 bit matrix in place.
///
/// Semantics: after the call, bit `k` of `a[i]` equals bit `i` of the
/// *original* `a[k]`. The transform is an involution — applying it
/// twice restores the input.
pub fn transpose64(a: &mut [u64; 64]) {
    // Hacker's Delight writes this for MSB-first columns; `Word` packs
    // channel 0 at bit 0 (LSB-first), so the shifts run the other way:
    // the mask selects the *high* half and narrows from there.
    let mut j = 32usize;
    let mut m: u64 = 0xFFFF_FFFF_0000_0000;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            // The stride keeps `k`'s `j` bit clear, so `k` and `k + j`
            // both stay inside the 64×64 tile.
            // analyze: allow(can-panic) — in-bounds: k + j < 64 by the stride above
            let t = (a[k] ^ (a[k + j] << j)) & m;
            a[k] ^= t;
            // analyze: allow(can-panic) — in-bounds, as above
            a[k + j] ^= t >> j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
}

/// The lane-occupancy mask for a block of `lanes` sets: bits
/// `0..lanes` set. `lanes` must be in `1..=64`.
pub fn lane_mask(lanes: usize) -> u64 {
    debug_assert!((1..=64).contains(&lanes));
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bit(x: u64, i: usize) -> bool {
        (x >> i) & 1 == 1
    }

    #[test]
    fn transpose_swaps_rows_and_columns() {
        let mut a = [0u64; 64];
        for (k, row) in a.iter_mut().enumerate() {
            // An asymmetric, dense-ish pattern.
            *row = (k as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(k as u32);
        }
        let original = a;
        transpose64(&mut a);
        for (k, &orig_row) in original.iter().enumerate() {
            for (i, &new_row) in a.iter().enumerate() {
                assert_eq!(
                    bit(new_row, k),
                    bit(orig_row, i),
                    "element ({k},{i}) not transposed"
                );
            }
        }
        // Involution.
        transpose64(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn transpose_identity_is_fixed_point() {
        let mut a = [0u64; 64];
        for (k, row) in a.iter_mut().enumerate() {
            *row = 1u64 << k;
        }
        let original = a;
        transpose64(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(7), 0x7F);
        assert_eq!(lane_mask(64), u64::MAX);
    }
}
