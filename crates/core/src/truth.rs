//! Logic functions evaluated by interference.
//!
//! The paper's §II: when several same-frequency spin waves meet, the
//! majority phase wins — a waveguide natively computes MAJ. XOR of two
//! inputs falls out of the amplitude: in-phase waves add, antiphase
//! waves cancel.

use crate::error::GateError;

/// The logic function a data-parallel gate computes per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogicFunction {
    /// Majority vote of an odd number (≥ 3) of inputs. The paper's
    /// headline gate is the 3-input majority.
    #[default]
    Majority,
    /// Exclusive OR of exactly 2 inputs, decoded from the interference
    /// amplitude (in-phase → full amplitude → 0; antiphase → cancellation
    /// → 1).
    Xor,
}

impl LogicFunction {
    /// Validates that this function supports `input_count` operands.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::UnsupportedFunction`]:
    /// * majority requires an odd `input_count >= 3`;
    /// * XOR requires exactly 2 inputs (amplitude readout cannot
    ///   separate 1-of-3 from 2-of-3 interference).
    pub fn check_input_count(self, input_count: usize) -> Result<(), GateError> {
        match self {
            LogicFunction::Majority => {
                if input_count < 3 || input_count.is_multiple_of(2) {
                    return Err(GateError::UnsupportedFunction {
                        reason: "majority needs an odd number of inputs, at least 3",
                    });
                }
            }
            LogicFunction::Xor => {
                if input_count != 2 {
                    return Err(GateError::UnsupportedFunction {
                        reason: "amplitude-decoded XOR supports exactly 2 inputs",
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the function on boolean inputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogicFunction::check_input_count`].
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_core::truth::LogicFunction;
    ///
    /// # fn main() -> Result<(), magnon_core::GateError> {
    /// assert!(LogicFunction::Majority.eval(&[true, false, true])?);
    /// assert!(!LogicFunction::Majority.eval(&[true, false, false])?);
    /// assert!(LogicFunction::Xor.eval(&[true, false])?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn eval(self, inputs: &[bool]) -> Result<bool, GateError> {
        self.check_input_count(inputs.len())?;
        Ok(match self {
            LogicFunction::Majority => {
                let ones = inputs.iter().filter(|&&b| b).count();
                ones * 2 > inputs.len()
            }
            LogicFunction::Xor => inputs[0] ^ inputs[1],
        })
    }

    /// The full truth table for `input_count` operands, indexed by the
    /// input combination interpreted as a binary number
    /// (bit `j` of the index = input `j`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogicFunction::check_input_count`].
    pub fn truth_table(self, input_count: usize) -> Result<Vec<bool>, GateError> {
        self.check_input_count(input_count)?;
        (0..1usize << input_count)
            .map(|combo| {
                let inputs: Vec<bool> = (0..input_count).map(|j| (combo >> j) & 1 == 1).collect();
                self.eval(&inputs)
            })
            .collect()
    }
}

impl std::fmt::Display for LogicFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicFunction::Majority => write!(f, "MAJ"),
            LogicFunction::Xor => write!(f, "XOR"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_three_input_table() {
        // The paper's Fig. 3/4 truth table: output 1 iff ≥ 2 inputs are 1.
        let table = LogicFunction::Majority.truth_table(3).unwrap();
        assert_eq!(
            table,
            vec![false, false, false, true, false, true, true, true]
        );
    }

    #[test]
    fn majority_input_count_constraints() {
        assert!(LogicFunction::Majority.check_input_count(3).is_ok());
        assert!(LogicFunction::Majority.check_input_count(5).is_ok());
        assert!(LogicFunction::Majority.check_input_count(2).is_err());
        assert!(LogicFunction::Majority.check_input_count(4).is_err());
        assert!(LogicFunction::Majority.check_input_count(1).is_err());
    }

    #[test]
    fn xor_table() {
        let table = LogicFunction::Xor.truth_table(2).unwrap();
        assert_eq!(table, vec![false, true, true, false]);
        assert!(LogicFunction::Xor.check_input_count(3).is_err());
    }

    #[test]
    fn majority_is_symmetric() {
        // Permuting inputs never changes the result.
        for combo in 0..8u32 {
            let a = [(combo & 1) == 1, (combo & 2) == 2, (combo & 4) == 4];
            let b = [a[2], a[0], a[1]];
            assert_eq!(
                LogicFunction::Majority.eval(&a).unwrap(),
                LogicFunction::Majority.eval(&b).unwrap()
            );
        }
    }

    #[test]
    fn majority_is_self_dual() {
        // MAJ(!a, !b, !c) == !MAJ(a, b, c).
        for combo in 0..8u32 {
            let a = [(combo & 1) == 1, (combo & 2) == 2, (combo & 4) == 4];
            let inv = [!a[0], !a[1], !a[2]];
            assert_eq!(
                LogicFunction::Majority.eval(&inv).unwrap(),
                !LogicFunction::Majority.eval(&a).unwrap()
            );
        }
    }

    #[test]
    fn five_input_majority() {
        let f = LogicFunction::Majority;
        assert!(f.eval(&[true, true, true, false, false]).unwrap());
        assert!(!f.eval(&[true, true, false, false, false]).unwrap());
        assert_eq!(f.truth_table(5).unwrap().len(), 32);
    }

    #[test]
    fn display_strings() {
        assert_eq!(LogicFunction::Majority.to_string(), "MAJ");
        assert_eq!(LogicFunction::Xor.to_string(), "XOR");
    }
}
