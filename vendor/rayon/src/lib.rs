//! Subset shim for `rayon` (offline build environment).
//!
//! Supports the one pattern the workspace uses —
//! `slice.par_iter().map(f).collect()` — with an order-preserving
//! implementation on `std::thread::scope`. Work is split into one
//! contiguous chunk per available core; on a single-core host it
//! degrades to a plain sequential map with no thread overhead.

use std::num::NonZeroUsize;

pub mod prelude {
    //! The traits `use rayon::prelude::*` is expected to bring in.
    pub use crate::{FromParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads to use for a parallel map.
fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// `&collection → par_iter()` — implemented for slices and `Vec`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Starts a parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (potentially on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Accepted for API compatibility; chunking is already coarse.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map and gathers results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let workers = worker_count(n);
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelIterator<R>: Sized {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(items: Vec<R>) -> Self {
        items
    }
}

impl<R, E> FromParallelIterator<Result<R, E>> for Result<Vec<R>, E> {
    fn from_ordered_vec(items: Vec<Result<R, E>>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let squared: Vec<u64> = input.par_iter().map(|&v| v * v).collect();
        assert_eq!(squared.len(), 1000);
        for (i, v) in squared.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn collect_into_result_short_circuits_errors() {
        let input = [1u32, 2, 3, 4];
        let ok: Result<Vec<u32>, String> = input.par_iter().map(|&v| Ok(v * 2)).collect();
        assert_eq!(ok.unwrap(), vec![2, 4, 6, 8]);
        let err: Result<Vec<u32>, String> = input
            .par_iter()
            .map(|&v| {
                if v == 3 {
                    Err("three".to_string())
                } else {
                    Ok(v)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "three");
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&v| v).collect();
        assert!(out.is_empty());
    }
}
