//! FIG3 — reproduces Figure 3 of the paper: the byte-wide 3-input
//! majority gate's detector response in time and frequency for all
//! eight input combinations, validated micromagnetically.
//!
//! Prints, per combination: the decoded output word, the expected
//! majority value, per-channel tone amplitudes, and the spectral
//! isolation (peaks only at the excitation frequencies). Writes
//! `results/fig3_spectrum.csv` and `results/fig3_time.csv`.
//!
//! Usage: `cargo run --release -p magnon-bench --bin repro_fig3`
//! (set `REPRO_FAST=1` for a reduced 3-channel smoke run).

use magnon_bench::{combo_words, experiment_gate, fast_mode, fmt_sci, results_dir, write_csv};
use magnon_core::crosstalk::CrosstalkReport;
use magnon_core::micromag_bridge::{MicromagValidator, ValidationSettings};
use magnon_math::window::Window;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let gate = experiment_gate()?;
    let n = gate.word_width();
    let m = gate.input_count();
    let freqs = gate.channel_plan().frequencies();

    println!(
        "FIG3: byte-wide {}-input majority — micromagnetic validation",
        m
    );
    println!(
        "gate: {} channels at {:?} GHz, span {:.0} nm, {} sources + {} detectors",
        n,
        freqs.iter().map(|f| f / 1e9).collect::<Vec<_>>(),
        gate.layout().span() * 1e9,
        gate.layout().sources().len(),
        gate.layout().detectors().len(),
    );
    let settings = if fast_mode() {
        ValidationSettings {
            duration: Some(2.0e-9),
            ..ValidationSettings::default()
        }
    } else {
        ValidationSettings::default()
    };
    let mut validator = MicromagValidator::with_settings(&gate, settings);

    let mut spectrum_rows: Vec<Vec<String>> = Vec::new();
    let mut time_rows: Vec<Vec<String>> = Vec::new();
    let mut all_pass = true;
    let mut worst_isolation = f64::INFINITY;

    println!(
        "\n{:<10} {:>9} {:>10} {:>14}  per-channel decoded bits",
        "combo", "expected", "decoded", "isolation(dB)"
    );
    for combo in 0..(1usize << m) {
        let words = combo_words(combo, m, n)?;
        let reading = validator.evaluate(&words)?;
        let expected = (combo.count_ones() as usize) * 2 > m;
        let expected_word = if expected { (1u64 << n) - 1 } else { 0 };
        let pass = reading.word.bits() == expected_word;
        all_pass &= pass;

        // Spectrum at the last detector (all channels pass it).
        let trace = reading.series.last().expect("at least one detector");
        let steady = trace.after(trace.duration() * 0.5)?;
        let spectrum = steady.spectrum(Window::Hann)?;
        let report = CrosstalkReport::analyze(&spectrum, &freqs, 2.0e9)?;
        worst_isolation = worst_isolation.min(report.isolation_db);

        println!(
            "{:<10} {:>9} {:>10} {:>14.1}  {}",
            format!("{combo:0m$b}"),
            expected as u8,
            format!("{}", reading.word),
            report.isolation_db,
            if pass { "PASS" } else { "FAIL" },
        );

        for (k, &a) in spectrum.amplitudes().iter().enumerate() {
            let f = spectrum.frequency_at(k);
            if f <= freqs.last().copied().unwrap_or(0.0) * 1.25 {
                spectrum_rows.push(vec![combo.to_string(), fmt_sci(f), fmt_sci(a)]);
            }
        }
        // Decimated time trace (every 8th sample).
        for (i, &v) in trace.samples().iter().enumerate().step_by(8) {
            time_rows.push(vec![
                combo.to_string(),
                fmt_sci(trace.time_at(i)),
                fmt_sci(v),
            ]);
        }
    }

    let dir = results_dir();
    write_csv(
        &dir.join("fig3_spectrum.csv"),
        &["combo", "frequency_hz", "amplitude"],
        &spectrum_rows,
    )?;
    write_csv(
        &dir.join("fig3_time.csv"),
        &["combo", "time_s", "mx_over_ms"],
        &time_rows,
    )?;
    println!("\nworst inter-channel isolation: {worst_isolation:.1} dB (paper: no visible off-channel peaks)");
    println!(
        "wrote {}/fig3_spectrum.csv and fig3_time.csv",
        dir.display()
    );
    println!(
        "FIG3 {}",
        if all_pass {
            "PASS: all combinations decoded correctly on every channel"
        } else {
            "FAIL"
        }
    );
    if !all_pass {
        std::process::exit(1);
    }
    Ok(())
}
