//! Integration: end-to-end micromagnetic validation of a reduced
//! data-parallel majority gate — the paper's OOMMF methodology (Fig. 3)
//! at test-suite scale. The full byte-wide validation lives in the
//! `repro_fig3` / `repro_fig4` binaries.

use spinwave_parallel::core::micromag_bridge::{MicromagValidator, ValidationSettings};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::math::constants::GHZ;
use spinwave_parallel::physics::waveguide::Waveguide;

fn reduced_gate(channels: usize) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(channels)
        .inputs(3)
        .function(LogicFunction::Majority)
        .base_frequency(10.0 * GHZ)
        .frequency_step(10.0 * GHZ)
        .build()
        .unwrap()
}

fn fast_settings() -> ValidationSettings {
    ValidationSettings {
        cell_size: Some(2.0e-9),
        duration: Some(2.5e-9),
        ..ValidationSettings::default()
    }
}

#[test]
fn two_channel_gate_decodes_key_combinations() {
    let gate = reduced_gate(2);
    let mut validator = MicromagValidator::with_settings(&gate, fast_settings());
    // Distinct per-channel data: channel 0 sees (0,1,0) -> MAJ 0;
    // channel 1 sees (1,1,0) -> MAJ 1.
    let a = Word::from_bits(0b10, 2).unwrap();
    let b = Word::from_bits(0b11, 2).unwrap();
    let c = Word::from_bits(0b00, 2).unwrap();
    let (micromag, analytic) = validator.cross_check(&[a, b, c]).unwrap();
    assert_eq!(analytic.bits(), 0b10);
    assert_eq!(
        micromag, analytic,
        "micromagnetic decode must match the analytic engine"
    );
}

#[test]
fn two_channel_gate_all_zero_and_all_one() {
    let gate = reduced_gate(2);
    let mut validator = MicromagValidator::with_settings(&gate, fast_settings());
    let zeros = Word::zeros(2).unwrap();
    let ones = Word::ones(2).unwrap();

    let reading = validator.evaluate(&[zeros, zeros, zeros]).unwrap();
    assert_eq!(
        reading.word.bits(),
        0,
        "MAJ(0,0,0) must be 0 on both channels"
    );
    for delta in &reading.phase_deltas {
        assert!(delta.cos() > 0.0, "phase delta {delta} should be near 0");
    }

    let reading = validator.evaluate(&[ones, ones, ones]).unwrap();
    assert_eq!(
        reading.word.bits(),
        0b11,
        "MAJ(1,1,1) must be 1 on both channels"
    );
    for delta in &reading.phase_deltas {
        assert!(delta.cos() < 0.0, "phase delta {delta} should be near π");
    }
}

#[test]
fn majority_amplitude_hierarchy() {
    // Unanimous votes interfere fully constructively; 2-1 votes leave a
    // single net wave: the unanimous amplitude must be visibly larger.
    let gate = reduced_gate(2);
    let mut validator = MicromagValidator::with_settings(&gate, fast_settings());
    let zeros = Word::zeros(2).unwrap();
    let ones = Word::ones(2).unwrap();
    let unanimous = validator.evaluate(&[zeros, zeros, zeros]).unwrap();
    let split = validator.evaluate(&[ones, zeros, zeros]).unwrap();
    for c in 0..2 {
        assert!(
            unanimous.amplitudes[c] > 1.5 * split.amplitudes[c],
            "channel {c}: unanimous {:.3e} vs split {:.3e}",
            unanimous.amplitudes[c],
            split.amplitudes[c]
        );
    }
}
