//! Analytic wave-superposition engine.
//!
//! Evaluates a gate in O(sources) by summing complex wave amplitudes per
//! channel at the detector:
//!
//! ```text
//! z_c = Σ_j  A_{c,j} · e^{−Δx_{c,j}/L_c} · e^{i (k_c Δx_{c,j} + φ_j)}
//! ```
//!
//! with `Δx` the source→detector distance, `L_c` the attenuation length
//! and `φ_j ∈ {0, π}` the encoded input bit. Because the layout places
//! same-channel sources an integer number of wavelengths apart, the
//! geometric phases collapse and the interference is governed by the
//! encoded bits exactly as in the paper's §II. The engine keeps the full
//! `k_c Δx` term, so layout errors surface as wrong logic — the same
//! failure mode a real device would show.

use crate::channel::ChannelPlan;
use crate::encoding::phase_of;
use crate::inline::InlineLayout;
use crate::truth::LogicFunction;
use magnon_math::Complex64;

/// Per-channel readout produced by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelReadout {
    /// Channel index.
    pub channel: usize,
    /// Carrier frequency in Hz.
    pub frequency: f64,
    /// Interference amplitude at the detector (arbitrary units; 1.0 =
    /// one un-attenuated source).
    pub amplitude: f64,
    /// Interference phase at the detector in radians.
    pub phase: f64,
    /// The decoded logic value.
    pub logic: bool,
}

/// Evaluates one channel: complex superposition of all of the channel's
/// sources observed at its detector.
///
/// `bits[j]` is input `j`'s logic value on this channel; `amplitudes[j]`
/// the excitation amplitude of source `j` (1.0 nominal).
pub(crate) fn superpose_channel(
    plan: &ChannelPlan,
    layout: &InlineLayout,
    channel: usize,
    bits: &[bool],
    amplitudes: &[f64],
) -> Complex64 {
    let ch = &plan.channels()[channel];
    let detector = layout
        .detectors()
        .iter()
        .find(|d| d.channel == channel)
        .expect("layout carries one detector per channel");
    let mut z = Complex64::ZERO;
    for src in layout.sources().iter().filter(|s| s.channel == channel) {
        let dx = detector.position - src.position;
        let decay = (-dx / ch.attenuation_length).exp();
        let phase = ch.wavenumber * dx + phase_of(bits[src.input]);
        z += Complex64::from_polar(amplitudes[src.input] * decay, phase);
    }
    z
}

/// Decodes the interference phasor of one channel into a logic value.
///
/// * Majority: the phase decides — `Re(z) < 0` means the π-phase camp
///   won. Inverted readout is realised geometrically (the detector
///   offset already flips the phase), so no software inversion happens
///   here.
/// * XOR: the amplitude decides — below half of the full constructive
///   amplitude `reference` means cancellation, i.e. logic 1; inverted
///   readout complements that decision (amplitude carries no geometric
///   phase flip).
pub(crate) fn decode_channel(
    function: LogicFunction,
    z: Complex64,
    reference: f64,
    inverted_amplitude_readout: bool,
) -> bool {
    match function {
        LogicFunction::Majority => z.re < 0.0,
        LogicFunction::Xor => {
            let bit = z.abs() < 0.5 * reference;
            if inverted_amplitude_readout {
                !bit
            } else {
                bit
            }
        }
    }
}

/// The full constructive-interference amplitude of a channel — all
/// sources in phase — used as the XOR decision reference.
pub(crate) fn constructive_reference(
    plan: &ChannelPlan,
    layout: &InlineLayout,
    channel: usize,
    amplitudes: &[f64],
) -> f64 {
    let ch = &plan.channels()[channel];
    let detector = layout
        .detectors()
        .iter()
        .find(|d| d.channel == channel)
        .expect("layout carries one detector per channel");
    layout
        .sources()
        .iter()
        .filter(|s| s.channel == channel)
        .map(|src| {
            let dx = detector.position - src.position;
            amplitudes[src.input] * (-dx / ch.attenuation_length).exp()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::DispersionModel;
    use crate::encoding::ReadoutMode;
    use crate::inline::LayoutSpec;
    use magnon_math::constants::GHZ;
    use magnon_physics::waveguide::Waveguide;

    fn setup(n: usize, m: usize, readout: ReadoutMode) -> (ChannelPlan, InlineLayout) {
        let guide = Waveguide::paper_default().unwrap();
        let plan =
            ChannelPlan::uniform(&guide, DispersionModel::Exchange, n, 10.0 * GHZ, 10.0 * GHZ)
                .unwrap();
        let layout =
            InlineLayout::solve(&plan, m, LayoutSpec::default(), &vec![readout; n]).unwrap();
        (plan, layout)
    }

    #[test]
    fn all_zeros_interferes_constructively_near_zero_phase() {
        let (plan, layout) = setup(3, 3, ReadoutMode::Direct);
        for c in 0..3 {
            let z = superpose_channel(&plan, &layout, c, &[false; 3], &[1.0; 3]);
            assert!(z.re > 0.0, "channel {c}: phase should be ~0");
            // Almost all the amplitude survives (sub-micron propagation,
            // micron-scale attenuation).
            assert!(z.abs() > 2.0, "channel {c}: |z| = {}", z.abs());
            assert!(z.arg().abs() < 1e-3, "channel {c}: arg = {}", z.arg());
        }
    }

    #[test]
    fn all_ones_interferes_constructively_at_pi() {
        let (plan, layout) = setup(3, 3, ReadoutMode::Direct);
        for c in 0..3 {
            let z = superpose_channel(&plan, &layout, c, &[true; 3], &[1.0; 3]);
            assert!(z.re < 0.0);
            assert!(z.abs() > 2.0);
        }
    }

    #[test]
    fn majority_phase_wins_in_two_vs_one() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        for c in 0..2 {
            // Two zeros, one one: phase ≈ 0, amplitude ≈ 1 source.
            let z = superpose_channel(&plan, &layout, c, &[false, true, false], &[1.0; 3]);
            assert!(z.re > 0.0);
            assert!(z.abs() < 1.5 && z.abs() > 0.5);
            // Two ones, one zero: phase ≈ π.
            let z = superpose_channel(&plan, &layout, c, &[true, false, true], &[1.0; 3]);
            assert!(z.re < 0.0);
        }
    }

    #[test]
    fn inverted_detector_flips_phase_geometrically() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Inverted);
        for c in 0..2 {
            let z = superpose_channel(&plan, &layout, c, &[false; 3], &[1.0; 3]);
            // All-zeros at a half-wavelength-offset detector: phase π.
            assert!(z.re < 0.0, "inverted channel {c} should read π for zeros");
        }
    }

    #[test]
    fn xor_cancellation() {
        let (plan, layout) = setup(2, 2, ReadoutMode::Direct);
        for c in 0..2 {
            let equal = superpose_channel(&plan, &layout, c, &[false, false], &[1.0; 2]);
            let differ = superpose_channel(&plan, &layout, c, &[false, true], &[1.0; 2]);
            let reference = constructive_reference(&plan, &layout, c, &[1.0; 2]);
            assert!(equal.abs() > 0.9 * reference);
            assert!(differ.abs() < 0.2 * reference, "cancellation failed: {}", differ.abs());
            assert!(!decode_channel(LogicFunction::Xor, equal, reference, false));
            assert!(decode_channel(LogicFunction::Xor, differ, reference, false));
        }
    }

    #[test]
    fn xor_inverted_readout_complements() {
        let z_small = Complex64::new(0.05, 0.0);
        let z_big = Complex64::new(1.9, 0.0);
        assert!(decode_channel(LogicFunction::Xor, z_small, 2.0, false));
        assert!(!decode_channel(LogicFunction::Xor, z_small, 2.0, true));
        assert!(!decode_channel(LogicFunction::Xor, z_big, 2.0, false));
        assert!(decode_channel(LogicFunction::Xor, z_big, 2.0, true));
    }

    #[test]
    fn majority_decode_sign_convention() {
        assert!(!decode_channel(
            LogicFunction::Majority,
            Complex64::new(0.8, 0.1),
            0.0,
            false
        ));
        assert!(decode_channel(
            LogicFunction::Majority,
            Complex64::new(-0.3, 0.2),
            0.0,
            false
        ));
    }

    #[test]
    fn unequal_amplitudes_shift_the_balance() {
        // The scalability hazard: if the far source is much weaker, a
        // 2-vs-1 majority can flip. With equalised amplitudes it cannot.
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        let z_eq = superpose_channel(&plan, &layout, 0, &[true, false, false], &[1.0; 3]);
        assert!(z_eq.re > 0.0, "balanced amplitudes: majority of zeros wins");
        // Give the two logic-0 sources only a tenth of the amplitude.
        let z_skew =
            superpose_channel(&plan, &layout, 0, &[true, false, false], &[1.0, 0.05, 0.05]);
        assert!(z_skew.re < 0.0, "skewed amplitudes flip the vote");
    }

    #[test]
    fn decay_reduces_far_source_contribution() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        // Drive only input 0 (farthest) vs only input 2 (nearest).
        let far = superpose_channel(&plan, &layout, 0, &[false; 3], &[1.0, 0.0, 0.0]);
        let near = superpose_channel(&plan, &layout, 0, &[false; 3], &[0.0, 0.0, 1.0]);
        assert!(far.abs() < near.abs(), "farther source must arrive weaker");
        assert!(far.abs() > 0.5 * near.abs(), "but not catastrophically so");
    }
}
