//! SERVE-CIRCUIT bench: compiled-plan execution through the scheduler,
//! caller-serialized level-by-level vs dependency-aware pipelined.
//!
//! The workload is one netlist with two **independent subgraphs** of
//! opposite shape — a 8-bit ripple-carry adder (deep, narrow: the
//! carry serializes its majorities) and a wide XOR parity tree over
//! eight extra inputs (shallow, wide) — compiled once and served over
//! 2 worker shards. Two execution modes on the SAME executor, plan and
//! scheduler:
//!
//! * `levelized_x{N}` — [`CircuitExecutor::run_batch_levelized`]: each
//!   ASAP wavefront is submitted whole and fully awaited before the
//!   next; the barrier idles every gate whose operands were ready
//!   early (the parity tree finishes its work in 3 levels, then waits
//!   for the adder's carry chain at every remaining barrier);
//! * `pipelined_x{N}` — [`CircuitExecutor::run_batch`]: each node's
//!   request goes out the moment its operands complete, so the two
//!   subgraphs (and all N operand sets) interleave across shards and
//!   drain cycles with no global synchronization.
//!
//! The serving policy (`max_batch: 48`, `linger: 300µs`, fixed — the
//! adaptive knobs are off so both modes face identical windows) is
//! where the barrier's cost shows up: a level's requests rarely divide
//! evenly into drains, and levelized guarantees an **empty queue** at
//! every level boundary, so each level's final partial drain sits out
//! its full linger window with nothing arriving behind it. Pipelined
//! submission keeps refilling the open window with freshly unblocked
//! dependents, so those tails get used instead of wasted.
//!
//! Acceptance: pipelined beats levelized on this ≥2-subgraph circuit.
//! (Single-core CI caveat: with one hardware thread the gap narrows —
//! workers, clients and the harness timeshare one core — but the
//! barrier cost is idle linger, not compute, so the ordering holds.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_circuits::adder::full_adder;
use magnon_circuits::netlist::Circuit;
use magnon_compiler::{compile, CompilerConfig};
use magnon_core::backend::BackendChoice;
use magnon_core::gate::WaveguideId;
use magnon_core::word::Word;
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{
    register_compiled, AdaptiveConfig, CircuitExecutor, SchedulerBuilder, ServeConfig,
};
use std::hint::black_box;
use std::time::Duration;

const WIDTH: usize = 8;
const ADDER_BITS: usize = 8;
const PARITY_INPUTS: usize = 8;
const SETS: usize = 32;

/// Adder + parity tree in one netlist, sharing no wires.
fn two_subgraph_circuit() -> Circuit {
    let mut c = Circuit::new(WIDTH).expect("circuit");
    let a: Vec<_> = (0..ADDER_BITS).map(|_| c.input()).collect();
    let b: Vec<_> = (0..ADDER_BITS).map(|_| c.input()).collect();
    let mut carry = c
        .constant(Word::zeros(WIDTH).expect("zeros"))
        .expect("constant");
    for i in 0..ADDER_BITS {
        let (sum, carry_out) = full_adder(&mut c, a[i], b[i], carry).expect("full adder");
        c.mark_output(sum).expect("output");
        carry = carry_out;
    }
    c.mark_output(carry).expect("output");
    // The independent subgraph: a balanced XOR reduction.
    let mut layer: Vec<_> = (0..PARITY_INPUTS).map(|_| c.input()).collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    c.xor2(pair[0], pair[1]).expect("xor")
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    c.mark_output(layer[0]).expect("output");
    c
}

fn random_sets(inputs: usize, count: usize) -> Vec<Vec<Word>> {
    (0..count as u64)
        .map(|i| {
            (0..inputs as u64)
                .map(|j| {
                    Word::from_u8(
                        (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .rotate_left(j as u32 * 13)
                            >> 19) as u8,
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_serve_circuit(c: &mut Criterion) {
    let guide = Waveguide::paper_default().expect("waveguide");
    let circuit = two_subgraph_circuit();
    let compiled = compile(&circuit, &guide, &CompilerConfig::default()).expect("compile");
    let report = compiled.report();
    let gate_count = report.gate_counts.maj3 + report.gate_counts.xor2;
    println!(
        "plan: {gate_count} gates, {} levels (widest {}), {} slots on {} waveguides x {} lanes \
         ({:.1} dB isolation)",
        report.depth,
        report.max_level_width,
        report.slot_count,
        report.waveguides_used,
        report.lanes_per_waveguide,
        report.isolation_db,
    );
    assert!(
        report.waveguides_used < gate_count,
        "placement must pack denser than one waveguide per gate: {report:?}"
    );

    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: 48,
        linger: Duration::from_micros(300),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(),
    });
    let gates = register_compiled(
        &mut builder,
        &compiled,
        guide,
        WaveguideId(0),
        BackendChoice::Cached,
    )
    .expect("register");
    let scheduler = builder.build().expect("scheduler");
    let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gates).expect("executor");

    let sets = random_sets(circuit.input_count(), SETS);
    let reference = circuit.evaluate_batch(&sets).expect("reference");
    // Warm every slot's LUT (and check both modes) before timing.
    assert_eq!(executor.run_batch(&sets).expect("pipelined"), reference);
    assert_eq!(
        executor.run_batch_levelized(&sets).expect("levelized"),
        reference
    );

    let mut group = c.benchmark_group("serve_circuit");
    group.sample_size(20);
    group.throughput(Throughput::Elements((SETS * WIDTH) as u64));
    group.bench_function(format!("levelized_x{SETS}"), |b| {
        b.iter(|| {
            black_box(
                executor
                    .run_batch_levelized(black_box(&sets))
                    .expect("levelized"),
            )
        })
    });
    group.bench_function(format!("pipelined_x{SETS}"), |b| {
        b.iter(|| black_box(executor.run_batch(black_box(&sets)).expect("pipelined")))
    });
    group.finish();

    println!(
        "peak in flight (pipelined): {} requests across {} slots",
        executor.peak_in_flight(),
        compiled.slots().len(),
    );
    scheduler.shutdown().expect("shutdown");
}

criterion_group!(benches, bench_serve_circuit);
criterion_main!(benches);
