//! The paper's §V scalability rule from the public API: to keep the
//! majority vote balanced, sources farther from the output must be
//! excited harder — `E(I_1) > E(I_2) > … > E(I_m)` — and the required
//! spread grows with the gate size.
//!
//! Run with: `cargo run --release --example scalability_levels`

use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::scalability::scalability_sweep;
use spinwave_parallel::physics::waveguide::Waveguide;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let guide = Waveguide::paper_default()?;

    // Per-input drive amplitudes for the byte gate.
    let gate = ParallelGateBuilder::new(guide)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;
    println!("per-channel drive amplitudes (relative), byte-wide MAJ-3:");
    println!("channel   E(I_1)   E(I_2)   E(I_3)");
    for c in 0..8 {
        let a = gate.schedule().amplitudes_for_channel(c);
        println!("  f{}     {:.4}   {:.4}   {:.4}", c + 1, a[0], a[1], a[2]);
        assert!(
            a[0] > a[1] && a[1] > a[2],
            "paper ordering E(I_1)>E(I_2)>E(I_3)"
        );
    }

    // How the requirement scales with the channel count.
    println!("\nchannels  span(nm)  worst-decay  required spread");
    for p in scalability_sweep(&guide, 3, &[2, 4, 8, 12, 16], 10.0e9, 5.0e9)? {
        println!(
            "{:>8}  {:>8.0}  {:>11.4}  {:>15.4}",
            p.channels,
            p.span * 1e9,
            p.worst_decay,
            p.amplitude_spread
        );
    }
    println!("\nthe spread stays close to 1 at the paper's scale (sub-micron gates,");
    println!("micron attenuation lengths) — graded energies only matter for large n,");
    println!("exactly as the paper's scalability discussion states.");
    Ok(())
}
