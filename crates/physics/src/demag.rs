//! Demagnetizing factors of rectangular prisms.
//!
//! The gate waveguide is a long rectangular bar. Its out-of-plane
//! demagnetizing factor `N_z` sets the internal field
//! `H_i = H_ani − N_z·Ms`, and therefore the FMR frequency. The paper's
//! "Waveguide Width Variation" study (§V) observes that the FMR
//! frequency falls as the width grows — exactly the behaviour of
//! `N_z(width)` computed here.
//!
//! [`prism_demag_factor`] implements Aharoni's exact closed form for a
//! uniformly magnetized rectangular prism (A. Aharoni, *J. Appl. Phys.*
//! **83**, 3432 (1998)).

use crate::error::PhysicsError;

/// Demagnetizing factor of a rectangular prism along its `2c` edge.
///
/// Arguments are the **full** edge lengths of the prism along x, y and
/// z; the returned factor is for magnetization along z. The three
/// factors obtained by permuting arguments sum to 1.
///
/// # Errors
///
/// Returns [`PhysicsError::InvalidGeometry`] when a dimension is not
/// strictly positive and finite.
///
/// # Examples
///
/// ```
/// use magnon_physics::demag::prism_demag_factor;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// // A cube has N = 1/3 along each axis.
/// let n = prism_demag_factor(1.0, 1.0, 1.0)?;
/// assert!((n - 1.0 / 3.0).abs() < 1e-12);
///
/// // A thin film (z much smaller than x, y) has N_z -> 1.
/// let n = prism_demag_factor(1e-6, 1e-6, 1e-9)?;
/// assert!(n > 0.99);
/// # Ok(())
/// # }
/// ```
pub fn prism_demag_factor(x: f64, y: f64, z: f64) -> Result<f64, PhysicsError> {
    for (name, v) in [("x", x), ("y", y), ("z", z)] {
        if !(v.is_finite() && v > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: name,
                value: v,
            });
        }
    }
    // Aharoni's formula is written for semi-axes a, b, c with
    // magnetization along c.
    let a = x / 2.0;
    let b = y / 2.0;
    let c = z / 2.0;

    let a2 = a * a;
    let b2 = b * b;
    let c2 = c * c;
    let r_abc = (a2 + b2 + c2).sqrt();
    let r_ab = (a2 + b2).sqrt();
    let r_bc = (b2 + c2).sqrt();
    let r_ac = (a2 + c2).sqrt();

    let mut pi_nz = 0.0;
    pi_nz += (b2 - c2) / (2.0 * b * c) * ((r_abc - a) / (r_abc + a)).ln();
    pi_nz += (a2 - c2) / (2.0 * a * c) * ((r_abc - b) / (r_abc + b)).ln();
    pi_nz += b / (2.0 * c) * ((r_ab + a) / (r_ab - a)).ln();
    pi_nz += a / (2.0 * c) * ((r_ab + b) / (r_ab - b)).ln();
    pi_nz += c / (2.0 * a) * ((r_bc - b) / (r_bc + b)).ln();
    pi_nz += c / (2.0 * b) * ((r_ac - a) / (r_ac + a)).ln();
    pi_nz += 2.0 * (a * b / (c * r_abc)).atan();
    pi_nz += (a2 + b2 - 2.0 * c2) / (3.0 * a * b * c) * r_abc;
    pi_nz += (a * a * a + b * b * b - 2.0 * c * c * c) / (3.0 * a * b * c);
    pi_nz += c / (a * b) * (r_ac + r_bc);
    pi_nz -= (r_ab.powi(3) + r_bc.powi(3) + r_ac.powi(3)) / (3.0 * a * b * c);

    Ok(pi_nz / std::f64::consts::PI)
}

/// All three demagnetizing factors `(N_x, N_y, N_z)` of a prism with
/// full edge lengths `(x, y, z)`.
///
/// # Errors
///
/// Returns [`PhysicsError::InvalidGeometry`] when a dimension is not
/// strictly positive and finite.
pub fn prism_demag_factors(x: f64, y: f64, z: f64) -> Result<(f64, f64, f64), PhysicsError> {
    Ok((
        prism_demag_factor(y, z, x)?,
        prism_demag_factor(z, x, y)?,
        prism_demag_factor(x, y, z)?,
    ))
}

/// Out-of-plane demagnetizing factor of an effectively infinite
/// waveguide bar of rectangular cross-section (`width` × `thickness`),
/// magnetized along the thickness.
///
/// Evaluates Aharoni's prism factor with a length 10⁴ times the larger
/// cross-section dimension, which converges to the infinite-bar limit to
/// better than 10⁻⁴.
///
/// # Errors
///
/// Returns [`PhysicsError::InvalidGeometry`] when a dimension is not
/// strictly positive and finite.
///
/// # Examples
///
/// ```
/// use magnon_physics::demag::waveguide_demag_factor;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// let narrow = waveguide_demag_factor(50.0e-9, 1.0e-9)?;
/// let wide = waveguide_demag_factor(500.0e-9, 1.0e-9)?;
/// // A wider bar is closer to an infinite film: N_z grows toward 1,
/// // so the internal field and the FMR frequency fall (paper §V).
/// assert!(wide > narrow);
/// assert!(wide < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn waveguide_demag_factor(width: f64, thickness: f64) -> Result<f64, PhysicsError> {
    for (name, v) in [("width", width), ("thickness", thickness)] {
        if !(v.is_finite() && v > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: name,
                value: v,
            });
        }
    }
    let length = 1.0e4 * width.max(thickness);
    prism_demag_factor(length, width, thickness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_has_one_third() {
        let n = prism_demag_factor(2.0, 2.0, 2.0).unwrap();
        assert!((n - 1.0 / 3.0).abs() < 1e-12, "N_cube = {n}");
    }

    #[test]
    fn factors_sum_to_one() {
        for dims in [
            (1.0, 1.0, 1.0),
            (2.0, 1.0, 0.5),
            (10.0, 1.0, 0.1),
            (50.0e-9, 1.0e-9, 100.0e-9),
        ] {
            let (nx, ny, nz) = prism_demag_factors(dims.0, dims.1, dims.2).unwrap();
            let sum = nx + ny + nz;
            assert!((sum - 1.0).abs() < 1e-9, "sum = {sum} for {dims:?}");
            assert!(nx > 0.0 && ny > 0.0 && nz > 0.0);
        }
    }

    #[test]
    fn thin_film_limit() {
        let n = prism_demag_factor(1.0, 1.0, 1e-4).unwrap();
        assert!(n > 0.999, "thin-film N_z = {n}");
    }

    #[test]
    fn long_rod_limit() {
        // Magnetized along the long axis: N -> 0.
        let n = prism_demag_factor(1e-3, 1e-3, 10.0).unwrap();
        assert!(n < 1e-3, "rod N_z = {n}");
    }

    #[test]
    fn square_bar_cross_section_symmetry() {
        // An infinite bar with square cross-section: the two transverse
        // factors are equal and sum to ~1.
        let ny = prism_demag_factor(1e4, 1.0, 1.0).unwrap();
        assert!((ny - 0.5).abs() < 1e-3, "square bar N = {ny}");
    }

    #[test]
    fn monotone_in_aspect_ratio() {
        // Flattening the prism along z increases N_z monotonically.
        let mut last = 0.0;
        for t in [1.0, 0.5, 0.2, 0.1, 0.01] {
            let n = prism_demag_factor(1.0, 1.0, t).unwrap();
            assert!(n > last, "N_z not monotone at t={t}");
            last = n;
        }
    }

    #[test]
    fn rejects_nonpositive_dimensions() {
        assert!(prism_demag_factor(0.0, 1.0, 1.0).is_err());
        assert!(prism_demag_factor(1.0, -1.0, 1.0).is_err());
        assert!(prism_demag_factor(1.0, 1.0, f64::NAN).is_err());
        assert!(waveguide_demag_factor(0.0, 1e-9).is_err());
    }

    #[test]
    fn paper_waveguide_values() {
        // 50 nm × 1 nm cross-section: mostly film-like but clearly below 1.
        let n50 = waveguide_demag_factor(50e-9, 1e-9).unwrap();
        assert!(n50 > 0.9 && n50 < 1.0, "N_z(50nm) = {n50}");
        let n500 = waveguide_demag_factor(500e-9, 1e-9).unwrap();
        assert!(n500 > n50);
        // Width scaling monotonically raises N_z.
        let widths = [50e-9, 100e-9, 200e-9, 350e-9, 500e-9];
        let mut prev = 0.0;
        for w in widths {
            let n = waveguide_demag_factor(w, 1e-9).unwrap();
            assert!(n > prev);
            prev = n;
        }
    }

    #[test]
    fn permutation_consistency() {
        // prism_demag_factors must equal direct calls with permuted axes.
        let (nx, ny, nz) = prism_demag_factors(3.0, 2.0, 1.0).unwrap();
        assert_eq!(nx, prism_demag_factor(2.0, 1.0, 3.0).unwrap());
        assert_eq!(ny, prism_demag_factor(1.0, 3.0, 2.0).unwrap());
        assert_eq!(nz, prism_demag_factor(3.0, 2.0, 1.0).unwrap());
    }
}
