//! The serving-stack invariant suite.
//!
//! Every scenario is a plain `fn()` that builds its world from scratch,
//! drives it through façade-instrumented primitives (so every sync op
//! is a yield point), asserts its invariants inline, and tears down.
//! A panic anywhere — an `assert!`, a worker that never joins
//! (deadlock), a lost completion (the waiting task blocks forever) —
//! is a violation the harness reports with a replay token.
//!
//! The scenarios cover the checker's contract for the serving stack:
//!
//! * [`serve_exactly_once`] — every submitted ticket redeems exactly
//!   once with the right word; the queue-depth gauge never reads
//!   negative and drains to zero; shutdown is clean. This is the CI
//!   smoke scenario (2 shards × 2 waveguides × small batch).
//! * [`shutdown_joins_despite_worker_panic`] — an injected shard panic
//!   must not detach the surviving workers or hang `shutdown`.
//! * [`timed_out_ticket_redeems`] — a ticket whose timed wait expires
//!   is not lost; the completion is still redeemable.
//! * [`rebalance_no_loss_no_dup`] — placement moves under skewed
//!   traffic neither lose nor duplicate a request.
//! * [`executor_pipeline_completes`] — the pipelined circuit executor's
//!   park/harvest loop completes every plan against the reference even
//!   when completions land out of order behind a slow head ticket.
//! * [`net_reap_outside_lock`] — the connection-reap discipline the
//!   lock-order pass enforces in `magnon_net`: handles reaped under the
//!   registry guard, joined outside it, none lost or double-joined.
//! * [`racy_counter`] — a deliberately broken load-then-store counter;
//!   the checker's self-test (it must FIND this bug).

use magnon_core::backend::{BackendChoice, OperandSet};
use magnon_core::gate::{ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_core::sync::time::Duration;
use magnon_core::sync::{thread, Arc};
use magnon_core::word::Word;
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{
    register_compiled, AdaptiveConfig, CircuitExecutor, SchedulerBuilder, ServeConfig, ServeError,
};

/// Scenario registry: `(name, body)`, the CLI's `--scenario` namespace.
/// [`racy_counter`] is deliberately absent — it is the broken self-test
/// body, exercised by `--self-test` and the test suite, never part of
/// a clean sweep.
pub fn all() -> &'static [(&'static str, fn())] {
    &[
        ("serve-exactly-once", serve_exactly_once as fn()),
        (
            "shutdown-worker-panic",
            shutdown_joins_despite_worker_panic as fn(),
        ),
        ("ticket-timeout-redeem", timed_out_ticket_redeems as fn()),
        ("rebalance-no-loss", rebalance_no_loss_no_dup as fn()),
        ("executor-pipeline", executor_pipeline_completes as fn()),
        ("net-reap-outside-lock", net_reap_outside_lock as fn()),
    ]
}

/// Looks a scenario up by its registry name.
pub fn by_name(name: &str) -> Option<fn()> {
    all()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, body)| body)
}

/// Runs `f` with panic messages suppressed, restoring the previous
/// hook after. Scenarios that *expect* a worker panic (the injected
/// shard poison) would otherwise print a backtrace per explored
/// schedule — thousands of them per test run.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

/// A byte-wide 3-input majority gate on `waveguide_id`. Same design per
/// call, so reference evaluation is interchangeable across instances.
fn maj_gate(waveguide_id: u64) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().expect("paper waveguide"))
        .channels(8)
        .inputs(3)
        .on_waveguide(WaveguideId(waveguide_id))
        .build()
        .expect("byte majority gate")
}

/// Small-config serving: adaptive policies off (the adaptive scenarios
/// turn on exactly what they test), short linger, shallow queues.
fn small_config(workers: usize) -> ServeConfig {
    ServeConfig {
        keep_readouts: false,
        workers,
        max_batch: 4,
        linger: Duration::from_micros(50),
        queue_depth: 4,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(),
    }
}

fn operand_set(seed: u64) -> OperandSet {
    let bytes = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    OperandSet::new(
        (0..3)
            .map(|j| Word::from_u8((bytes >> (8 * j)) as u8))
            .collect(),
    )
}

/// Bitwise 3-way majority — the paper gate's logic function, computed
/// independently so the invariant does not trust the serving path.
fn maj3_reference(set: &OperandSet) -> u8 {
    let w = set.words();
    let (a, b, c) = (w[0].to_u8(), w[1].to_u8(), w[2].to_u8());
    (a & b) | (b & c) | (a & c)
}

/// The CI smoke scenario: 2 shards × 2 waveguides, two concurrent
/// submitters, a handful of requests.
///
/// Invariants: every ticket redeems exactly once with the bitwise-
/// majority word; the raw queue gauge never reads negative at any
/// sampled point; it drains to zero once all completions are redeemed;
/// submitted == completed at shutdown; shutdown returns cleanly (a
/// hang is a deadlock the controller reports).
pub fn serve_exactly_once() {
    let mut builder = SchedulerBuilder::new(small_config(2));
    let gate_a = builder
        .register("maj_wg0", maj_gate(0), BackendChoice::Analytic)
        .expect("register wg0");
    let gate_b = builder
        .register("maj_wg1", maj_gate(1), BackendChoice::Analytic)
        .expect("register wg1");
    let scheduler = Arc::new(builder.build().expect("build scheduler"));

    let mut submitters = Vec::new();
    for (lane, gate) in [(0u64, gate_a), (1, gate_b)] {
        let scheduler = Arc::clone(&scheduler);
        submitters.push(thread::spawn(move || {
            for i in 0..2u64 {
                let set = operand_set(lane * 16 + i + 1);
                let expected = maj3_reference(&set);
                let ticket = scheduler.submit(gate, set).expect("submit");
                let out = ticket.wait().expect("ticket must redeem");
                assert_eq!(
                    out.word().to_u8(),
                    expected,
                    "completion carried the wrong word"
                );
            }
        }));
    }
    // Sample the gauge while traffic is in flight: the raw (unclamped)
    // value must never be negative, under any interleaving.
    for _ in 0..4 {
        for shard in 0..2 {
            let queued = scheduler.queued_raw(shard);
            assert!(queued >= 0, "queue gauge went negative: {queued}");
        }
        thread::yield_now();
    }
    for handle in submitters {
        handle.join().expect("submitter must not panic");
    }
    let stats = scheduler.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4, "every ticket completes exactly once");
    assert_eq!(stats.failed, 0);
    // All completions redeemed ⇒ every drain's decrement has landed ⇒
    // the gauge is exactly zero before shutdown.
    for shard in 0..2 {
        assert_eq!(
            scheduler.queued_raw(shard),
            0,
            "gauge must drain to zero at quiescence"
        );
    }
    let scheduler = Arc::into_inner(scheduler).expect("submitters dropped their handles");
    scheduler.shutdown().expect("clean shutdown");
}

/// An injected shard panic mid-drain: `shutdown` must still join every
/// worker (returning at all proves it — a stuck join is a deadlock the
/// controller reports), report the poisoned shard, and the surviving
/// shard must keep serving until the end.
pub fn shutdown_joins_despite_worker_panic() {
    let mut builder = SchedulerBuilder::new(small_config(2));
    let gate_a = builder
        .register("maj_wg0", maj_gate(0), BackendChoice::Analytic)
        .expect("register wg0");
    let gate_b = builder
        .register("maj_wg1", maj_gate(1), BackendChoice::Analytic)
        .expect("register wg1");
    let scheduler = builder.build().expect("build scheduler");
    let poisoned = scheduler.shard_of(gate_a).expect("wg0 placed");
    let survivor_shard = scheduler.shard_of(gate_b).expect("wg1 placed");
    assert_ne!(
        poisoned, survivor_shard,
        "waveguides 0/1 split over 2 shards"
    );
    assert!(scheduler.inject_poison(poisoned), "poison must land");
    // The surviving shard still answers while its sibling is dying.
    let set = operand_set(7);
    let expected = maj3_reference(&set);
    let ticket = scheduler.submit(gate_b, set).expect("survivor submit");
    assert_eq!(
        ticket.wait().expect("survivor completion").word().to_u8(),
        expected
    );
    match scheduler.shutdown() {
        Err(ServeError::WorkerPanicked { shards, .. }) => {
            assert_eq!(shards, vec![poisoned], "exactly the poisoned shard panics");
        }
        other => panic!("poisoned worker must surface as WorkerPanicked, got {other:?}"),
    }
}

/// A timed wait that expires must not consume the completion: the same
/// ticket redeems on the next wait, with the right word.
pub fn timed_out_ticket_redeems() {
    let mut builder = SchedulerBuilder::new(small_config(1));
    let gate = builder
        .register("maj_wg0", maj_gate(0), BackendChoice::Analytic)
        .expect("register");
    let scheduler = builder.build().expect("build scheduler");
    let set = operand_set(3);
    let expected = maj3_reference(&set);
    let ticket = scheduler.submit(gate, set).expect("submit");
    // A deadline this short usually fires before the drain answers —
    // but the schedule policy decides, so both orders get explored.
    match ticket.wait_timeout(Duration::from_nanos(200)) {
        Ok(out) => assert_eq!(out.word().to_u8(), expected),
        Err(ServeError::Timeout) => {
            let out = ticket
                .wait()
                .expect("timed-out ticket must stay redeemable");
            assert_eq!(out.word().to_u8(), expected);
        }
        Err(e) => panic!("unexpected ticket error: {e}"),
    }
    scheduler.shutdown().expect("clean shutdown");
}

/// Skewed traffic with the rebalancer on a hair trigger: placement
/// moves must neither lose nor duplicate a request, and every
/// completion must carry the right word.
pub fn rebalance_no_loss_no_dup() {
    let mut builder = SchedulerBuilder::new(ServeConfig {
        adaptive: AdaptiveConfig {
            rebalance: true,
            rebalance_interval: 2,
            rebalance_ratio: 1.5,
            adaptive_linger: false,
            fusion: false,
            ..AdaptiveConfig::default()
        },
        ..small_config(2)
    });
    // Waveguides 0 and 4 start co-tenant on one shard of two (the
    // static mix places them together), so a hot/cold skew gives the
    // rebalancer a move to make mid-traffic.
    let hot = builder
        .register("maj_hot", maj_gate(0), BackendChoice::Analytic)
        .expect("register hot");
    let cold = builder
        .register("maj_cold", maj_gate(4), BackendChoice::Analytic)
        .expect("register cold");
    let scheduler = Arc::new(builder.build().expect("build scheduler"));
    assert_eq!(
        scheduler.shard_of(hot),
        scheduler.shard_of(cold),
        "precondition: co-tenant start"
    );
    let hot_submitter = {
        let scheduler = Arc::clone(&scheduler);
        thread::spawn(move || {
            for i in 0..6u64 {
                let set = operand_set(100 + i);
                let expected = maj3_reference(&set);
                let ticket = scheduler.submit(hot, set).expect("hot submit");
                assert_eq!(
                    ticket.wait().expect("hot completion").word().to_u8(),
                    expected
                );
            }
        })
    };
    for i in 0..2u64 {
        let set = operand_set(200 + i);
        let expected = maj3_reference(&set);
        let ticket = scheduler.submit(cold, set).expect("cold submit");
        assert_eq!(
            ticket.wait().expect("cold completion").word().to_u8(),
            expected
        );
    }
    hot_submitter.join().expect("hot submitter must not panic");
    let stats = scheduler.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(
        stats.completed, 8,
        "a placement move lost or duplicated a request"
    );
    assert_eq!(stats.failed, 0);
    let scheduler = Arc::into_inner(scheduler).expect("submitter dropped its handle");
    scheduler.shutdown().expect("clean shutdown");
}

/// The pipelined executor against a full adder, with queues shallow
/// enough to force `try_submit` deferrals: the park/harvest loop must
/// redeem out-of-order completions (a slow head ticket must not hide a
/// finished one behind it — the defect this checker caught in the
/// prefix-only harvest) and finish the plan with reference-identical
/// outputs.
pub fn executor_pipeline_completes() {
    use magnon_circuits::netlist::Circuit;
    use magnon_compiler::{compile, CompilerConfig};

    let mut circuit = Circuit::new(8).expect("circuit width");
    let a = circuit.input();
    let b = circuit.input();
    let cin = circuit.input();
    let axb = circuit.xor2(a, b).expect("xor");
    let sum = circuit.xor2(axb, cin).expect("xor");
    let carry = circuit.maj3(a, b, cin).expect("maj");
    circuit.mark_output(sum).expect("output");
    circuit.mark_output(carry).expect("output");

    let guide = Waveguide::paper_default().expect("paper waveguide");
    let compiled = compile(&circuit, &guide, &CompilerConfig::default()).expect("compile");
    let mut builder = SchedulerBuilder::new(ServeConfig {
        queue_depth: 1,
        max_batch: 2,
        ..small_config(2)
    });
    let gates = register_compiled(
        &mut builder,
        &compiled,
        guide,
        WaveguideId(0),
        BackendChoice::Analytic,
    )
    .expect("register compiled");
    let scheduler = builder.build().expect("build scheduler");
    let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gates).expect("bind executor");
    let sets: Vec<Vec<Word>> = (0..2u64)
        .map(|i| operand_set(40 + i).words().to_vec())
        .collect();
    let reference = circuit.evaluate_batch(&sets).expect("reference");
    let served = executor.run_batch(&sets).expect("pipelined run");
    assert_eq!(
        served, reference,
        "pipelined outputs diverged from the circuit"
    );
    scheduler.shutdown().expect("clean shutdown");
}

/// Regression scenario for the connection-reap discipline the lock
/// pass surfaced in `magnon_net`'s accept loop: finished handles used
/// to be `join()`ed *while holding* the connection-registry lock, so a
/// connection mid-teardown could stall every new accept (and
/// shutdown's final take) behind it. The fixed shape —
/// [`magnon_net::server::reap_finished`] collects under the guard, the
/// caller joins after dropping it — must neither lose nor double-join
/// a handle under any interleaving, and the registry must drain to
/// empty at shutdown.
pub fn net_reap_outside_lock() {
    use magnon_core::sync::mpsc;
    use magnon_core::sync::Mutex;
    use magnon_net::server::reap_finished;

    let registry: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let (release_tx, release_rx) = mpsc::channel::<()>();

    // Three connection stand-ins, spawned before the registry guard is
    // taken (the accept loop's shape): two finish on their own, one is
    // mid-teardown and only exits once released — exactly the thread
    // the old shape would have joined under the lock.
    let fast_a = thread::spawn(|| {});
    let fast_b = thread::spawn(|| {});
    let slow = thread::spawn(move || {
        release_rx.recv().expect("release message");
    });
    {
        let mut registry = registry.lock().unwrap_or_else(|e| e.into_inner());
        registry.push(fast_a);
        registry.push(fast_b);
        registry.push(slow);
    }

    // Accept-churn loop: reap under the guard, join outside it.
    let mut joined = 0usize;
    for _ in 0..8 {
        let finished = {
            let mut registry = registry.lock().unwrap_or_else(|e| e.into_inner());
            reap_finished(&mut registry)
        };
        for handle in finished {
            handle.join().expect("connection stand-in");
            joined += 1;
        }
        if joined == 2 {
            break;
        }
        thread::yield_now();
    }
    {
        let registry = registry.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(
            registry.len() + joined,
            3,
            "a reaped handle left the registry exactly once ({} still registered, {joined} joined)",
            registry.len()
        );
    }

    // Shutdown: release the slow connection, take the registry under
    // the guard, join after dropping it — stop_and_join's shape.
    release_tx.send(()).expect("release the slow connection");
    let rest = {
        let mut registry = registry.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *registry)
    };
    for handle in rest {
        handle.join().expect("connection stand-in");
        joined += 1;
    }
    assert_eq!(joined, 3, "every connection joins exactly once");
    let registry = registry.lock().unwrap_or_else(|e| e.into_inner());
    assert!(registry.is_empty(), "registry drains to empty at shutdown");
}

/// The deliberately broken self-test body: two threads doing a
/// load-then-store increment through the instrumented atomics. The
/// run-to-block default schedule passes; a preemption between the load
/// and the store loses an update. The checker MUST find this — it is
/// how the test suite proves the instrumentation actually explores.
pub fn racy_counter() {
    use magnon_core::sync::atomic::{AtomicU64, Ordering};
    let counter = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                // Deliberate bug: non-atomic read-modify-write.
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for handle in workers {
        handle.join().expect("incrementer must not panic");
    }
    assert_eq!(
        counter.load(magnon_core::sync::atomic::Ordering::SeqCst),
        2,
        "lost update"
    );
}
