//! Linear interpolation over tabulated data.
//!
//! Used for dispersion look-up tables and post-processing sweeps.

use crate::error::MathError;

/// A piecewise-linear interpolant over strictly increasing abscissae.
///
/// # Examples
///
/// ```
/// use magnon_math::interp::Interp1d;
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let table = Interp1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(table.eval(0.5), 5.0);
/// assert_eq!(table.eval(1.5), 25.0);
/// // Out-of-range queries clamp to the boundary values.
/// assert_eq!(table.eval(-1.0), 0.0);
/// assert_eq!(table.eval(5.0), 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interp1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Interp1d {
    /// Builds an interpolant from matching abscissa/ordinate vectors.
    ///
    /// # Errors
    ///
    /// * [`MathError::EmptyInput`] when the table is empty.
    /// * [`MathError::LengthMismatch`] when the vectors differ in length.
    /// * [`MathError::NotMonotonic`] when `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, MathError> {
        if xs.is_empty() {
            return Err(MathError::EmptyInput);
        }
        if xs.len() != ys.len() {
            return Err(MathError::LengthMismatch {
                expected: xs.len(),
                actual: ys.len(),
            });
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(MathError::NotMonotonic);
        }
        Ok(Interp1d { xs, ys })
    }

    /// Evaluates the interpolant at `x`, clamping outside the table.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the segment.
        let idx = match self.xs.binary_search_by(|probe| probe.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(i) => i,
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Abscissae of the table.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Ordinates of the table.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when the table has no knots (never for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// Returns `count` evenly spaced values covering `[start, stop]`
/// inclusive.
///
/// # Examples
///
/// ```
/// use magnon_math::interp::linspace;
///
/// let v = linspace(0.0, 1.0, 5);
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// assert_eq!(linspace(2.0, 2.0, 1), vec![2.0]);
/// ```
pub fn linspace(start: f64, stop: f64, count: usize) -> Vec<f64> {
    match count {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (stop - start) / (count - 1) as f64;
            (0..count).map(|i| start + step * i as f64).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        assert_eq!(Interp1d::new(vec![], vec![]), Err(MathError::EmptyInput));
        assert!(matches!(
            Interp1d::new(vec![0.0, 1.0], vec![0.0]),
            Err(MathError::LengthMismatch { .. })
        ));
        assert_eq!(
            Interp1d::new(vec![0.0, 0.0], vec![1.0, 2.0]),
            Err(MathError::NotMonotonic)
        );
        assert_eq!(
            Interp1d::new(vec![1.0, 0.0], vec![1.0, 2.0]),
            Err(MathError::NotMonotonic)
        );
    }

    #[test]
    fn exact_knot_values() {
        let t = Interp1d::new(vec![0.0, 1.0, 4.0], vec![2.0, 3.0, -1.0]).unwrap();
        assert_eq!(t.eval(0.0), 2.0);
        assert_eq!(t.eval(1.0), 3.0);
        assert_eq!(t.eval(4.0), -1.0);
    }

    #[test]
    fn midpoint_interpolation() {
        let t = Interp1d::new(vec![0.0, 2.0], vec![0.0, 8.0]).unwrap();
        assert_eq!(t.eval(1.0), 4.0);
        assert_eq!(t.eval(0.25), 1.0);
    }

    #[test]
    fn clamping_beyond_range() {
        let t = Interp1d::new(vec![1.0, 2.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(t.eval(0.0), 5.0);
        assert_eq!(t.eval(100.0), 7.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let t = Interp1d::new(vec![3.0], vec![9.0]).unwrap();
        assert_eq!(t.eval(-10.0), 9.0);
        assert_eq!(t.eval(3.0), 9.0);
        assert_eq!(t.eval(10.0), 9.0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn linspace_properties() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(5.0, 9.0, 1), vec![5.0]);
        let v = linspace(-1.0, 1.0, 11);
        assert_eq!(v.len(), 11);
        assert!((v[5]).abs() < 1e-12);
        assert_eq!(v[0], -1.0);
        assert_eq!(v[10], 1.0);
    }

    #[test]
    fn linspace_descending() {
        let v = linspace(1.0, 0.0, 3);
        assert_eq!(v, vec![1.0, 0.5, 0.0]);
    }
}
