//! Blocking client with pipelined submits and tag-matched waits.
//!
//! [`NetClient::submit`] only queues bytes on a buffered writer — many
//! submits can be issued back-to-back and the flush happens when the
//! first [`NetClient::wait`] needs the socket. Completions arrive in
//! whatever order the scheduler finished them; `wait` stashes frames
//! for other tags until their own waits come asking, so tickets can be
//! redeemed in any order.
//!
//! Backpressure is transparent by default: a retry-after frame makes
//! the client park for the server's hint and re-submit the stored
//! payload under the same tag, up to
//! [`NetClientConfig::max_retries`] attempts.

use crate::error::NetError;
use crate::protocol::{write_frame, Frame, FrameReader, GateInfo, NET_VERSION};
use magnon_core::word::Word;
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A gate in the connected server's directory (index into
/// [`NetClient::gates`]). The index is public — it is just a position
/// in the advertised directory, and [`NetClient::submit`] validates it
/// against the directory before any bytes move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteGateId(pub u32);

impl RemoteGateId {
    /// The wire index this id carries on submit frames.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Overall deadline for one [`NetClient::wait`] (and the
    /// handshake).
    pub wait_timeout: Duration,
    /// Backpressure retries per request before giving up.
    pub max_retries: u32,
    /// Socket read timeout granularity while waiting (how often the
    /// deadline is checked).
    pub read_poll: Duration,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            wait_timeout: Duration::from_secs(30),
            max_retries: 4096,
            read_poll: Duration::from_millis(5),
        }
    }
}

/// Traffic counters a client keeps about its own connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetClientStats {
    /// Submit frames written (first attempts, not retries).
    pub submitted: u64,
    /// Successful responses received.
    pub responses: u64,
    /// Re-submissions forced by retry-after backpressure.
    pub retries: u64,
    /// Requests answered with an error frame.
    pub remote_errors: u64,
}

/// One request the client has sent and not yet resolved: enough to
/// re-submit it verbatim when the server answers retry-after.
#[derive(Debug)]
struct InflightRequest {
    gate: u32,
    operands: Vec<Word>,
    retries: u32,
}

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    reader: TcpStream,
    /// Resumable decoder: a read timeout mid-frame keeps its buffered
    /// bytes, so slow links cannot desync the stream.
    frames: FrameReader,
    writer: std::io::BufWriter<TcpStream>,
    gates: Vec<GateInfo>,
    next_tag: u64,
    inflight: HashMap<u64, InflightRequest>,
    completed: HashMap<u64, Result<Word, NetError>>,
    stats: NetClientStats,
    config: NetClientConfig,
}

impl NetClient {
    /// Connects with default tuning. See [`NetClient::connect_with`].
    ///
    /// # Errors
    ///
    /// The conditions of [`NetClient::connect_with`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, NetClientConfig::default())
    }

    /// Connects, performs the versioned hello handshake and loads the
    /// server's gate directory.
    ///
    /// # Errors
    ///
    /// * [`NetError::Io`] for socket failures.
    /// * [`NetError::VersionMismatch`] when the server speaks another
    ///   protocol version.
    /// * [`NetError::Remote`] when the server rejects the hello.
    /// * [`NetError::Timeout`] when the handshake misses the configured
    ///   deadline.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: NetClientConfig,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::io("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("configure socket", e))?;
        stream
            .set_read_timeout(Some(config.read_poll))
            .map_err(|e| NetError::io("configure socket", e))?;
        let write_half = stream
            .try_clone()
            .map_err(|e| NetError::io("clone socket", e))?;
        let mut client = NetClient {
            reader: stream,
            frames: FrameReader::new(),
            writer: std::io::BufWriter::new(write_half),
            gates: Vec::new(),
            next_tag: 1,
            inflight: HashMap::new(),
            completed: HashMap::new(),
            stats: NetClientStats::default(),
            config,
        };
        write_frame(
            &mut client.writer,
            &Frame::Hello {
                version: NET_VERSION,
            },
        )?;
        client.flush()?;
        let deadline = Instant::now() + client.config.wait_timeout;
        match client.read_until(deadline)? {
            Frame::HelloAck { version, gates } => {
                if version != NET_VERSION {
                    return Err(NetError::VersionMismatch {
                        ours: NET_VERSION,
                        theirs: version,
                    });
                }
                client.gates = gates;
                Ok(client)
            }
            Frame::Error { code, message, .. } => Err(NetError::Remote { code, message }),
            other => Err(NetError::protocol(format!(
                "expected a hello-ack, got {other:?}"
            ))),
        }
    }

    /// The server's gate directory, indexed by [`RemoteGateId`].
    pub fn gates(&self) -> &[GateInfo] {
        &self.gates
    }

    /// Looks a gate up by its registration name.
    pub fn gate(&self, name: &str) -> Option<RemoteGateId> {
        self.gates
            .iter()
            .position(|g| g.name == name)
            .map(|i| RemoteGateId(i as u32))
    }

    /// This connection's traffic counters.
    pub fn stats(&self) -> NetClientStats {
        self.stats
    }

    /// Queues one evaluation and returns its tag (redeem with
    /// [`NetClient::wait`], in any order). The submit frame sits in the
    /// write buffer until a wait flushes it, so back-to-back submits
    /// pipeline into few segments.
    ///
    /// # Errors
    ///
    /// * [`NetError::BadRequest`] when `gate` is foreign or `operands`
    ///   do not match its advertised shape (caught before any bytes
    ///   move).
    /// * [`NetError::Io`] when the write fails.
    pub fn submit(&mut self, gate: RemoteGateId, operands: &[Word]) -> Result<u64, NetError> {
        let info = self
            .gates
            .get(gate.0 as usize)
            .ok_or_else(|| NetError::BadRequest {
                reason: format!("gate index {} is not in the directory", gate.0),
            })?;
        if operands.len() != info.input_count as usize {
            return Err(NetError::BadRequest {
                reason: format!(
                    "gate `{}` takes {} operands, got {}",
                    info.name,
                    info.input_count,
                    operands.len()
                ),
            });
        }
        if let Some(word) = operands
            .iter()
            .find(|w| w.width() != info.word_width as usize)
        {
            return Err(NetError::BadRequest {
                reason: format!(
                    "gate `{}` serves {}-bit words, got a {}-bit operand",
                    info.name,
                    info.word_width,
                    word.width()
                ),
            });
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        // One payload copy: encode the frame, then move its operand
        // vector into the inflight store for potential retries.
        let frame = Frame::Submit {
            tag,
            gate: gate.0,
            operands: operands.to_vec(),
        };
        write_frame(&mut self.writer, &frame)?;
        let Frame::Submit { operands, .. } = frame else {
            unreachable!("constructed as Submit above")
        };
        self.inflight.insert(
            tag,
            InflightRequest {
                gate: gate.0,
                operands,
                retries: 0,
            },
        );
        self.stats.submitted += 1;
        Ok(tag)
    }

    /// Blocks until `tag`'s completion arrives (frames for other tags
    /// encountered on the way are stashed for their own waits).
    ///
    /// # Errors
    ///
    /// * [`NetError::Remote`] when the server answered an error frame.
    /// * [`NetError::Timeout`] when [`NetClientConfig::wait_timeout`]
    ///   elapses first.
    /// * [`NetError::RetriesExhausted`] when backpressure outlasted
    ///   [`NetClientConfig::max_retries`].
    /// * [`NetError::BadRequest`] for a tag this client never issued
    ///   (or already redeemed).
    pub fn wait(&mut self, tag: u64) -> Result<Word, NetError> {
        self.flush()?;
        let deadline = Instant::now() + self.config.wait_timeout;
        loop {
            if let Some(result) = self.completed.remove(&tag) {
                return result;
            }
            if !self.inflight.contains_key(&tag) {
                return Err(NetError::BadRequest {
                    reason: format!("tag {tag} was never submitted (or already redeemed)"),
                });
            }
            let frame = self.read_until(deadline)?;
            self.absorb(frame)?;
        }
    }

    /// Submit + wait in one call.
    ///
    /// # Errors
    ///
    /// The conditions of [`NetClient::submit`] and [`NetClient::wait`].
    pub fn eval(&mut self, gate: RemoteGateId, operands: &[Word]) -> Result<Word, NetError> {
        let tag = self.submit(gate, operands)?;
        self.wait(tag)
    }

    /// Pipelines a whole request list (all submits flushed together),
    /// then waits every completion; results come back in request order
    /// however the server reordered them.
    ///
    /// # Errors
    ///
    /// The first failing request aborts with its error.
    pub fn eval_many(
        &mut self,
        requests: &[(RemoteGateId, Vec<Word>)],
    ) -> Result<Vec<Word>, NetError> {
        let tags: Vec<u64> = requests
            .iter()
            .map(|(gate, operands)| self.submit(*gate, operands))
            .collect::<Result<_, _>>()?;
        tags.into_iter().map(|tag| self.wait(tag)).collect()
    }

    fn flush(&mut self) -> Result<(), NetError> {
        self.writer
            .flush()
            .map_err(|e| NetError::io("flush submits", e))
    }

    /// Reads the next frame, tolerating read-timeout polls until
    /// `deadline` (partial frames stay buffered in the resumable
    /// reader across polls).
    fn read_until(&mut self, deadline: Instant) -> Result<Frame, NetError> {
        loop {
            match self.frames.read_frame(&mut self.reader) {
                Ok(frame) => return Ok(frame),
                Err(NetError::Io { source, .. })
                    if matches!(
                        source.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Files one inbound frame: resolves its tag, or re-submits on
    /// backpressure.
    fn absorb(&mut self, frame: Frame) -> Result<(), NetError> {
        match frame {
            Frame::Response { tag, word } => {
                if self.inflight.remove(&tag).is_some() {
                    self.stats.responses += 1;
                    self.completed.insert(tag, Ok(word));
                }
                Ok(())
            }
            Frame::Error {
                tag: 0,
                code,
                message,
            } => {
                // Connection-scoped error (handshake/framing): fatal.
                Err(NetError::Remote { code, message })
            }
            Frame::Error { tag, code, message } => {
                if self.inflight.remove(&tag).is_some() {
                    self.stats.remote_errors += 1;
                    self.completed
                        .insert(tag, Err(NetError::Remote { code, message }));
                }
                Ok(())
            }
            Frame::RetryAfter { tag, hint, .. } => {
                let Some(entry) = self.inflight.get_mut(&tag) else {
                    return Ok(());
                };
                entry.retries += 1;
                if entry.retries > self.config.max_retries {
                    let attempts = entry.retries;
                    self.inflight.remove(&tag);
                    self.completed
                        .insert(tag, Err(NetError::RetriesExhausted { attempts }));
                    return Ok(());
                }
                self.stats.retries += 1;
                let resubmit = Frame::Submit {
                    tag,
                    gate: entry.gate,
                    operands: entry.operands.clone(),
                };
                // Honor the server's backoff hint before queueing the
                // retry, then flush so it actually leaves.
                std::thread::sleep(hint.min(Duration::from_millis(10)));
                write_frame(&mut self.writer, &resubmit)?;
                self.flush()
            }
            other => Err(NetError::protocol(format!(
                "unexpected frame after handshake: {other:?}"
            ))),
        }
    }
}
