//! Circuit-level cost roll-up.
//!
//! Extends the paper's single-gate comparison to whole circuits: a
//! data-parallel circuit instantiates each gate **once** regardless of
//! the word width, while the conventional realisation replicates every
//! gate per data set.

use crate::netlist::Circuit;
use magnon_core::gate::{ParallelGate, ParallelGateBuilder};
use magnon_core::truth::LogicFunction;
use magnon_core::GateError;
use magnon_cost::{CostModel, Transducer};
use magnon_physics::waveguide::Waveguide;

/// Area/energy totals of one circuit implementation style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitCost {
    /// Total area in m².
    pub area: f64,
    /// Total energy per (parallel) evaluation in J.
    pub energy: f64,
    /// Total transducer count.
    pub transducers: usize,
}

/// Circuit-level comparison: parallel vs replicated-scalar realisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitComparison {
    /// Word width (data sets processed per evaluation).
    pub word_width: usize,
    /// Data-parallel realisation.
    pub parallel: CircuitCost,
    /// Scalar realisation replicated per data set.
    pub scalar: CircuitCost,
}

impl CircuitComparison {
    /// Area advantage `scalar / parallel`.
    pub fn area_ratio(&self) -> f64 {
        self.scalar.area / self.parallel.area
    }
}

/// Estimates circuit costs for `circuit` realised on `waveguide` with
/// `transducer` technology.
///
/// Representative gates (one n-channel MAJ-3, one n-channel XOR-2 and
/// their scalar counterparts) are synthesised once and their areas
/// multiplied by the gate counts. Inversions are free (readout
/// placement).
///
/// # Errors
///
/// Propagates gate construction errors.
///
/// # Examples
///
/// ```
/// use magnon_circuits::adder::RippleCarryAdder;
/// use magnon_circuits::cost::estimate_circuit;
/// use magnon_cost::Transducer;
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let adder = RippleCarryAdder::new(8, 8)?;
/// let cmp = estimate_circuit(
///     adder.circuit(),
///     &Waveguide::paper_default()?,
///     Transducer::paper_default(),
/// )?;
/// assert!(cmp.area_ratio() > 2.0);
/// # Ok(())
/// # }
/// ```
pub fn estimate_circuit(
    circuit: &Circuit,
    waveguide: &Waveguide,
    transducer: Transducer,
) -> Result<CircuitComparison, GateError> {
    let n = circuit.width();
    let counts = circuit.gate_counts();
    let model = CostModel::new(transducer);

    let build = |function: LogicFunction, inputs: usize| -> Result<ParallelGate, GateError> {
        ParallelGateBuilder::new(*waveguide)
            .channels(n)
            .inputs(inputs)
            .function(function)
            .build()
    };

    let mut parallel = CircuitCost {
        area: 0.0,
        energy: 0.0,
        transducers: 0,
    };
    let mut scalar = CircuitCost {
        area: 0.0,
        energy: 0.0,
        transducers: 0,
    };

    if counts.maj3 > 0 {
        let gate = build(LogicFunction::Majority, 3)?;
        let cmp = model.compare(&gate)?;
        parallel.area += counts.maj3 as f64 * cmp.parallel.area;
        parallel.energy += counts.maj3 as f64 * cmp.parallel.energy;
        parallel.transducers += counts.maj3 * cmp.parallel.transducers;
        scalar.area += counts.maj3 as f64 * cmp.scalar.area;
        scalar.energy += counts.maj3 as f64 * cmp.scalar.energy;
        scalar.transducers += counts.maj3 * cmp.scalar.transducers;
    }
    if counts.xor2 > 0 {
        let gate = build(LogicFunction::Xor, 2)?;
        let cmp = model.compare(&gate)?;
        parallel.area += counts.xor2 as f64 * cmp.parallel.area;
        parallel.energy += counts.xor2 as f64 * cmp.parallel.energy;
        parallel.transducers += counts.xor2 * cmp.parallel.transducers;
        scalar.area += counts.xor2 as f64 * cmp.scalar.area;
        scalar.energy += counts.xor2 as f64 * cmp.scalar.energy;
        scalar.transducers += counts.xor2 * cmp.scalar.transducers;
    }

    Ok(CircuitComparison {
        word_width: n,
        parallel,
        scalar,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::RippleCarryAdder;
    use crate::parity::ParityTree;

    #[test]
    fn adder_parallel_beats_scalar_in_area() {
        let adder = RippleCarryAdder::new(8, 8).unwrap();
        let cmp = estimate_circuit(
            adder.circuit(),
            &Waveguide::paper_default().unwrap(),
            Transducer::paper_default(),
        )
        .unwrap();
        assert!(cmp.area_ratio() > 2.0, "ratio = {}", cmp.area_ratio());
        // Energy parity: same transducer events in both styles.
        assert!((cmp.parallel.energy - cmp.scalar.energy).abs() / cmp.scalar.energy < 1e-9);
    }

    #[test]
    fn empty_circuit_costs_nothing() {
        let c = Circuit::new(8).unwrap();
        let cmp = estimate_circuit(
            &c,
            &Waveguide::paper_default().unwrap(),
            Transducer::paper_default(),
        )
        .unwrap();
        assert_eq!(cmp.parallel.area, 0.0);
        assert_eq!(cmp.parallel.transducers, 0);
    }

    #[test]
    fn parity_uses_only_xor_gates() {
        let p = ParityTree::new(8, 8).unwrap();
        let cmp = estimate_circuit(
            p.circuit(),
            &Waveguide::paper_default().unwrap(),
            Transducer::paper_default(),
        )
        .unwrap();
        // 7 XOR gates × 3 transducers each, parallel realisation keeps
        // n channels per gate: transducers = 7 × n(m+1) = 7 × 8 × 3.
        assert_eq!(cmp.parallel.transducers, 7 * 8 * 3);
        assert!(cmp.area_ratio() > 2.0);
    }

    #[test]
    fn wider_words_bigger_advantage() {
        let a4 = RippleCarryAdder::new(4, 4).unwrap();
        let a8 = RippleCarryAdder::new(4, 8).unwrap();
        let g = Waveguide::paper_default().unwrap();
        let t = Transducer::paper_default();
        let c4 = estimate_circuit(a4.circuit(), &g, t).unwrap();
        let c8 = estimate_circuit(a8.circuit(), &g, t).unwrap();
        assert!(c8.area_ratio() > c4.area_ratio());
    }
}
