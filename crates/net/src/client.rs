//! Blocking client with pipelined submits and tag-matched waits.
//!
//! [`NetClient::submit`] only queues bytes on a buffered writer — many
//! submits can be issued back-to-back and the flush happens when the
//! first [`NetClient::wait`] needs the socket. Completions arrive in
//! whatever order the scheduler finished them; `wait` stashes frames
//! for other tags until their own waits come asking, so tickets can be
//! redeemed in any order.
//!
//! Backpressure is transparent by default: a retry-after frame
//! schedules a re-submit of the stored payload under the same tag on a
//! due-time queue, up to [`NetClientConfig::max_retries`] attempts.
//! The backoff is honored by the *queue*, never by sleeping on the
//! shared read path — while one tag waits out its hint, completions
//! and errors for every other tag keep draining, and `wait` deadlines
//! stay accurate. Due retries flush from whichever `wait` call is
//! active when they mature (or at the start of the next one).
//!
//! A `wait` that returns [`NetError::Timeout`] does **not** lose the
//! request: the tag stays in flight (queued retries included) and a
//! later `wait` on the same tag redeems the completion whenever it
//! arrives — the same re-waitable semantics as
//! `magnon_serve::Ticket::wait_timeout`.

use crate::error::NetError;
use crate::protocol::{write_frame, Frame, FrameReader, GateInfo, NET_VERSION};
use magnon_core::sync::time::{Duration, Instant};
use magnon_core::word::Word;
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// A gate in the connected server's directory (index into
/// [`NetClient::gates`]). The index is public — it is just a position
/// in the advertised directory, and [`NetClient::submit`] validates it
/// against the directory before any bytes move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteGateId(pub u32);

impl RemoteGateId {
    /// The wire index this id carries on submit frames.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Overall deadline for one [`NetClient::wait`] (and the
    /// handshake).
    pub wait_timeout: Duration,
    /// Backpressure retries per request before giving up.
    pub max_retries: u32,
    /// Socket read timeout granularity while waiting (how often the
    /// deadline is checked).
    pub read_poll: Duration,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            wait_timeout: Duration::from_secs(30),
            max_retries: 4096,
            read_poll: Duration::from_millis(5),
        }
    }
}

/// Traffic counters a client keeps about its own connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetClientStats {
    /// Submit frames written (first attempts, not retries).
    pub submitted: u64,
    /// Successful responses received.
    pub responses: u64,
    /// Re-submissions forced by retry-after backpressure.
    pub retries: u64,
    /// Requests answered with an error frame.
    pub remote_errors: u64,
}

/// One request the client has sent and not yet resolved: enough to
/// re-submit it verbatim when the server answers retry-after.
#[derive(Debug)]
struct InflightRequest {
    gate: u32,
    lane: Option<u16>,
    operands: Vec<Word>,
    retries: u32,
}

/// One scheduled backpressure retry: `tag` re-submits once `due`
/// passes (flushed from the wait loop, never slept on).
#[derive(Debug)]
struct PendingRetry {
    tag: u64,
    due: Instant,
}

/// Cap on how long a single retry-after hint may defer a re-submit —
/// matches the old sleep cap, so a hostile or misconfigured server
/// cannot push a tag's retry arbitrarily far out.
const MAX_RETRY_PAUSE: Duration = Duration::from_millis(10);

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    reader: TcpStream,
    /// Resumable decoder: a read timeout mid-frame keeps its buffered
    /// bytes, so slow links cannot desync the stream.
    frames: FrameReader,
    writer: std::io::BufWriter<TcpStream>,
    gates: Vec<GateInfo>,
    next_tag: u64,
    inflight: HashMap<u64, InflightRequest>,
    completed: HashMap<u64, Result<Word, NetError>>,
    retry_queue: Vec<PendingRetry>,
    stats: NetClientStats,
    config: NetClientConfig,
}

impl NetClient {
    /// Connects with default tuning. See [`NetClient::connect_with`].
    ///
    /// # Errors
    ///
    /// The conditions of [`NetClient::connect_with`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, NetClientConfig::default())
    }

    /// Connects, performs the versioned hello handshake and loads the
    /// server's gate directory.
    ///
    /// # Errors
    ///
    /// * [`NetError::Io`] for socket failures.
    /// * [`NetError::VersionMismatch`] when the server speaks another
    ///   protocol version.
    /// * [`NetError::Remote`] when the server rejects the hello.
    /// * [`NetError::Timeout`] when the handshake misses the configured
    ///   deadline.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: NetClientConfig,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::io("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("configure socket", e))?;
        stream
            .set_read_timeout(Some(config.read_poll))
            .map_err(|e| NetError::io("configure socket", e))?;
        let write_half = stream
            .try_clone()
            .map_err(|e| NetError::io("clone socket", e))?;
        let mut client = NetClient {
            reader: stream,
            frames: FrameReader::new(),
            writer: std::io::BufWriter::new(write_half),
            gates: Vec::new(),
            next_tag: 1,
            inflight: HashMap::new(),
            completed: HashMap::new(),
            retry_queue: Vec::new(),
            stats: NetClientStats::default(),
            config,
        };
        write_frame(
            &mut client.writer,
            &Frame::Hello {
                version: NET_VERSION,
            },
        )?;
        client.flush()?;
        let deadline = Instant::now() + client.config.wait_timeout;
        match client.read_until(deadline)? {
            Frame::HelloAck { version, gates } => {
                if version != NET_VERSION {
                    return Err(NetError::VersionMismatch {
                        ours: NET_VERSION,
                        theirs: version,
                    });
                }
                client.gates = gates;
                Ok(client)
            }
            Frame::Error { code, message, .. } => Err(NetError::Remote { code, message }),
            other => Err(NetError::protocol(format!(
                "expected a hello-ack, got {other:?}"
            ))),
        }
    }

    /// The server's gate directory, indexed by [`RemoteGateId`].
    pub fn gates(&self) -> &[GateInfo] {
        &self.gates
    }

    /// Looks a gate up by its registration name.
    pub fn gate(&self, name: &str) -> Option<RemoteGateId> {
        self.gates
            .iter()
            .position(|g| g.name == name)
            .map(|i| RemoteGateId(i as u32))
    }

    /// The directory entries riding `waveguide`, as `(id, lane, info)`
    /// — the lanes-per-waveguide view of the hello-ack. Entries on
    /// distinct lanes serve concurrently via FDM server-side.
    pub fn gates_on_waveguide(
        &self,
        waveguide: u64,
    ) -> impl Iterator<Item = (RemoteGateId, u16, &GateInfo)> {
        self.gates
            .iter()
            .enumerate()
            .filter(move |(_, g)| g.waveguide == waveguide)
            .map(|(i, g)| (RemoteGateId(i as u32), g.lane, g))
    }

    /// This connection's traffic counters.
    pub fn stats(&self) -> NetClientStats {
        self.stats
    }

    /// Queues one evaluation and returns its tag (redeem with
    /// [`NetClient::wait`], in any order). The submit frame sits in the
    /// write buffer until a wait flushes it, so back-to-back submits
    /// pipeline into few segments.
    ///
    /// # Errors
    ///
    /// * [`NetError::BadRequest`] when `gate` is foreign or `operands`
    ///   do not match its advertised shape (caught before any bytes
    ///   move).
    /// * [`NetError::Io`] when the write fails.
    pub fn submit(&mut self, gate: RemoteGateId, operands: &[Word]) -> Result<u64, NetError> {
        self.submit_inner(gate, None, operands)
    }

    /// Like [`NetClient::submit`], but pins the submit to frequency
    /// lane `lane` (protocol v2): the server verifies the gate still
    /// occupies that lane and answers a
    /// [`crate::error::WireErrorCode::LaneMismatch`] error otherwise.
    /// The pin is validated against the advertised directory before any
    /// bytes move.
    ///
    /// # Errors
    ///
    /// * [`NetError::BadRequest`] when the directory advertises a
    ///   different lane for `gate`, plus the conditions of
    ///   [`NetClient::submit`].
    pub fn submit_on_lane(
        &mut self,
        gate: RemoteGateId,
        lane: u16,
        operands: &[Word],
    ) -> Result<u64, NetError> {
        self.submit_inner(gate, Some(lane), operands)
    }

    fn submit_inner(
        &mut self,
        gate: RemoteGateId,
        lane: Option<u16>,
        operands: &[Word],
    ) -> Result<u64, NetError> {
        let info = self
            .gates
            .get(gate.0 as usize)
            .ok_or_else(|| NetError::BadRequest {
                reason: format!("gate index {} is not in the directory", gate.0),
            })?;
        if let Some(lane) = lane {
            if info.lane != lane {
                return Err(NetError::BadRequest {
                    reason: format!(
                        "gate `{}` rides lane {}, not the pinned lane {lane}",
                        info.name, info.lane
                    ),
                });
            }
        }
        if operands.len() != info.input_count as usize {
            return Err(NetError::BadRequest {
                reason: format!(
                    "gate `{}` takes {} operands, got {}",
                    info.name,
                    info.input_count,
                    operands.len()
                ),
            });
        }
        if let Some(word) = operands
            .iter()
            .find(|w| w.width() != info.word_width as usize)
        {
            return Err(NetError::BadRequest {
                reason: format!(
                    "gate `{}` serves {}-bit words, got a {}-bit operand",
                    info.name,
                    info.word_width,
                    word.width()
                ),
            });
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        // One payload copy: encode the frame, then move its operand
        // vector into the inflight store for potential retries.
        let frame = Frame::Submit {
            tag,
            gate: gate.0,
            lane,
            operands: operands.to_vec(),
        };
        write_frame(&mut self.writer, &frame)?;
        let Frame::Submit { operands, .. } = frame else {
            unreachable!("constructed as Submit above")
        };
        self.inflight.insert(
            tag,
            InflightRequest {
                gate: gate.0,
                lane,
                operands,
                retries: 0,
            },
        );
        self.stats.submitted += 1;
        Ok(tag)
    }

    /// Blocks until `tag`'s completion arrives (frames for other tags
    /// encountered on the way are stashed for their own waits), with
    /// the configured [`NetClientConfig::wait_timeout`] deadline.
    ///
    /// # Errors
    ///
    /// The conditions of [`NetClient::wait_deadline`].
    pub fn wait(&mut self, tag: u64) -> Result<Word, NetError> {
        self.wait_deadline(tag, self.config.wait_timeout)
    }

    /// Like [`NetClient::wait`], with an explicit deadline.
    ///
    /// A timeout does **not** consume the request: the tag stays in
    /// flight (any queued backpressure retry included), and a later
    /// wait on the same tag redeems the completion whenever it arrives
    /// — mirroring `magnon_serve::Ticket::wait_timeout`, whose tickets
    /// are also re-waitable after a deadline miss. Queued retries for
    /// *other* tags that come due while this wait polls are flushed
    /// along the way, so one tag's backoff never stalls another's.
    ///
    /// # Errors
    ///
    /// * [`NetError::Remote`] when the server answered an error frame.
    /// * [`NetError::Timeout`] when `timeout` elapses first (the tag
    ///   stays redeemable).
    /// * [`NetError::RetriesExhausted`] when backpressure outlasted
    ///   [`NetClientConfig::max_retries`].
    /// * [`NetError::BadRequest`] for a tag this client never issued
    ///   (or already redeemed).
    pub fn wait_deadline(&mut self, tag: u64, timeout: Duration) -> Result<Word, NetError> {
        self.flush()?;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(result) = self.completed.remove(&tag) {
                return result;
            }
            if !self.inflight.contains_key(&tag) {
                return Err(NetError::BadRequest {
                    reason: format!("tag {tag} was never submitted (or already redeemed)"),
                });
            }
            self.flush_due_retries()?;
            // Wake early when a queued retry matures before the
            // deadline, so its re-submit is not delayed by a blocked
            // read.
            let wake = self
                .retry_queue
                .iter()
                .map(|retry| retry.due)
                .min()
                .map_or(deadline, |due| due.min(deadline));
            if let Some(frame) = self.poll_frame(wake, deadline)? {
                self.absorb(frame)?;
            }
        }
    }

    /// Submit + wait in one call.
    ///
    /// # Errors
    ///
    /// The conditions of [`NetClient::submit`] and [`NetClient::wait`].
    pub fn eval(&mut self, gate: RemoteGateId, operands: &[Word]) -> Result<Word, NetError> {
        let tag = self.submit(gate, operands)?;
        self.wait(tag)
    }

    /// Pipelines a whole request list (all submits flushed together),
    /// then waits every completion; results come back in request order
    /// however the server reordered them.
    ///
    /// # Errors
    ///
    /// The first failing request aborts with its error.
    pub fn eval_many(
        &mut self,
        requests: &[(RemoteGateId, Vec<Word>)],
    ) -> Result<Vec<Word>, NetError> {
        let tags: Vec<u64> = requests
            .iter()
            .map(|(gate, operands)| self.submit(*gate, operands))
            .collect::<Result<_, _>>()?;
        tags.into_iter().map(|tag| self.wait(tag)).collect()
    }

    fn flush(&mut self) -> Result<(), NetError> {
        self.writer
            .flush()
            .map_err(|e| NetError::io("flush submits", e))
    }

    /// Reads the next frame, tolerating read-timeout polls until
    /// `deadline` (partial frames stay buffered in the resumable
    /// reader across polls).
    fn read_until(&mut self, deadline: Instant) -> Result<Frame, NetError> {
        match self.poll_frame(deadline, deadline)? {
            Some(frame) => Ok(frame),
            // With wake == deadline the deadline check wins; this arm
            // is defensive.
            None => Err(NetError::Timeout),
        }
    }

    /// Reads the next frame, tolerating read-timeout polls. Returns
    /// `Ok(None)` once `wake` passes without a frame (so the wait loop
    /// can flush a matured retry) and [`NetError::Timeout`] once
    /// `deadline` does. Partial frames stay buffered in the resumable
    /// reader across polls.
    fn poll_frame(&mut self, wake: Instant, deadline: Instant) -> Result<Option<Frame>, NetError> {
        loop {
            match self.frames.read_frame(&mut self.reader) {
                Ok(frame) => return Ok(Some(frame)),
                Err(NetError::Io { source, .. })
                    if matches!(
                        source.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::Timeout);
                    }
                    if now >= wake {
                        return Ok(None);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Re-submits every queued backpressure retry whose due time has
    /// passed. Runs inside the wait loop, so backoffs overlap with
    /// useful reads instead of serializing in front of them.
    fn flush_due_retries(&mut self) -> Result<(), NetError> {
        let now = Instant::now();
        let mut wrote = false;
        let mut i = 0;
        while i < self.retry_queue.len() {
            if self.retry_queue[i].due > now {
                i += 1;
                continue;
            }
            let retry = self.retry_queue.swap_remove(i);
            // The tag may have resolved meanwhile (an error frame, or
            // retries exhausted); only live requests re-submit.
            if let Some(entry) = self.inflight.get(&retry.tag) {
                write_frame(
                    &mut self.writer,
                    &Frame::Submit {
                        tag: retry.tag,
                        gate: entry.gate,
                        lane: entry.lane,
                        operands: entry.operands.clone(),
                    },
                )?;
                wrote = true;
            }
        }
        if wrote {
            self.flush()?;
        }
        Ok(())
    }

    /// Files one inbound frame: resolves its tag, or schedules a
    /// re-submit on backpressure.
    fn absorb(&mut self, frame: Frame) -> Result<(), NetError> {
        match frame {
            Frame::Response { tag, word } => {
                if self.inflight.remove(&tag).is_some() {
                    self.stats.responses += 1;
                    self.completed.insert(tag, Ok(word));
                }
                Ok(())
            }
            Frame::Error {
                tag: 0,
                code,
                message,
            } => {
                // Connection-scoped error (handshake/framing): fatal.
                Err(NetError::Remote { code, message })
            }
            Frame::Error { tag, code, message } => {
                if self.inflight.remove(&tag).is_some() {
                    self.stats.remote_errors += 1;
                    self.completed
                        .insert(tag, Err(NetError::Remote { code, message }));
                }
                Ok(())
            }
            Frame::RetryAfter { tag, hint, .. } => {
                let Some(entry) = self.inflight.get_mut(&tag) else {
                    return Ok(());
                };
                entry.retries += 1;
                if entry.retries > self.config.max_retries {
                    let attempts = entry.retries;
                    self.inflight.remove(&tag);
                    self.completed
                        .insert(tag, Err(NetError::RetriesExhausted { attempts }));
                    return Ok(());
                }
                self.stats.retries += 1;
                // Honor the backoff by SCHEDULING the re-submit on the
                // due-time queue. Sleeping here — on the shared read
                // path — would stall the drain of every other tag's
                // completions for the duration of this tag's backoff
                // and silently eat the active wait()'s deadline. One
                // queue entry per tag: a flood of retry-after frames
                // for one tag re-times the pending re-submit instead
                // of scheduling duplicate submits.
                let due = Instant::now() + hint.min(MAX_RETRY_PAUSE);
                match self.retry_queue.iter_mut().find(|retry| retry.tag == tag) {
                    Some(pending) => pending.due = due,
                    None => self.retry_queue.push(PendingRetry { tag, due }),
                }
                Ok(())
            }
            other => Err(NetError::protocol(format!(
                "unexpected frame after handshake: {other:?}"
            ))),
        }
    }
}
