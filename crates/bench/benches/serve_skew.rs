//! SKEW bench: static vs adaptive scheduling under hot-waveguide
//! traffic.
//!
//! The load is deliberately pathological: 80 % of 256 requests hammer
//! one hot waveguide, the rest round-robin over three background
//! waveguides — and all four waveguide ids are chosen so the *static*
//! hash placement puts them on the SAME shard of 2, pinning one worker
//! while the other idles (the skew failure mode the adaptive runtime
//! exists to fix; with raw-modulo routing any all-even id set on 2
//! workers behaved this way systematically).
//!
//! Two modes per width:
//!
//! * `static_hash` — [`AdaptiveConfig::off`]: fixed linger, fixed
//!   placement, per-gate batches (the PR 2 runtime);
//! * `adaptive` — rebalancing (review every 32 submissions), adaptive
//!   linger and cross-waveguide fusion all on: co-tenant waveguides
//!   migrate off the hot shard, the hot shard's window stretches under
//!   the burst, and background requests fuse across waveguides.
//!
//! The acceptance comparison is fewer drain cycles (bigger batches)
//! for `adaptive`, and a finite per-shard drain split where the static
//! placement leaves one shard at zero. Wall-clock on the 1-core
//! container mostly shows scheduling overhead — re-baseline on a
//! multi-core host before citing worker-scaling wins (see ROADMAP).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_bench::random_operand_sets;
use magnon_core::backend::{BackendChoice, OperandSet};
use magnon_core::gate::{ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_math::constants::GHZ;
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{AdaptiveConfig, GateId, Scheduler, SchedulerBuilder, ServeConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH: usize = 256;
const WORKERS: usize = 2;
/// Ids that all statically hash onto one shard of [`WORKERS`]; the
/// first is the hot waveguide.
const WAVEGUIDES: [u64; 4] = [1, 2, 3, 6];

fn gate_with_width(n: usize, waveguide: WaveguideId) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().expect("waveguide"))
        .channels(n)
        .inputs(3)
        .base_frequency(10.0 * GHZ)
        .frequency_step(4.0 * GHZ)
        .on_waveguide(waveguide)
        .build()
        .expect("gate")
}

fn scheduler_for(n: usize, adaptive: AdaptiveConfig) -> (Scheduler, Vec<GateId>) {
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: WORKERS,
        max_batch: BATCH,
        linger: Duration::from_micros(100),
        queue_depth: BATCH,
        lut_dir: None,
        adaptive,
    });
    let ids = WAVEGUIDES
        .iter()
        .map(|&wg| {
            builder
                .register(
                    format!("maj3_wg{wg}"),
                    gate_with_width(n, WaveguideId(wg)),
                    BackendChoice::Cached,
                )
                .expect("register")
        })
        .collect();
    (builder.build().expect("scheduler"), ids)
}

/// 80 % of the load on the hot waveguide, the rest round-robined over
/// the background ones.
fn skewed_requests(ids: &[GateId], sets: &[OperandSet]) -> Vec<(GateId, OperandSet)> {
    sets.iter()
        .enumerate()
        .map(|(i, set)| {
            let id = if i % 5 != 4 {
                ids[0]
            } else {
                ids[1 + (i / 5) % (ids.len() - 1)]
            };
            (id, set.clone())
        })
        .collect()
}

/// The latency probe: flood the hot waveguide with 192 queued
/// requests, then time one cold-waveguide request submitted behind the
/// burst. Under static placement the cold request shares the hot
/// shard's queue and waits out the whole drain ahead of it; with the
/// adaptive table converged, its waveguide lives on the other shard
/// and answers in its own (tiny) drain. Returns the median of `reps`.
fn cold_latency_behind_hot_burst(
    scheduler: &Scheduler,
    ids: &[GateId],
    sets: &[OperandSet],
    reps: usize,
) -> Duration {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let hot_tickets: Vec<_> = sets[..192]
            .iter()
            .map(|set| scheduler.submit(ids[0], set.clone()).expect("hot submit"))
            .collect();
        let start = Instant::now();
        scheduler
            .submit(ids[1], sets[0].clone())
            .expect("cold submit")
            .wait()
            .expect("cold wait");
        samples.push(start.elapsed());
        for ticket in hot_tickets {
            ticket.wait().expect("hot wait");
        }
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_skew(c: &mut Criterion) {
    for n in [8usize, 16] {
        let gate = gate_with_width(n, WaveguideId(WAVEGUIDES[0]));
        let sets = random_operand_sets(&gate, BATCH).expect("operand sets");
        let mut group = c.benchmark_group(format!("serve_skew_w{n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((BATCH * n) as u64));

        let modes: [(&str, AdaptiveConfig); 2] = [
            ("static_hash", AdaptiveConfig::off()),
            (
                "adaptive",
                AdaptiveConfig {
                    rebalance_interval: 32,
                    rebalance_ratio: 1.5,
                    ..AdaptiveConfig::default()
                },
            ),
        ];
        for (label, adaptive) in modes {
            let (scheduler, ids) = scheduler_for(n, adaptive);
            let routed = skewed_requests(&ids, &sets);
            // Warm every LUT (and let the placement table converge)
            // before timing.
            scheduler.evaluate_many(&routed).expect("warmup");
            scheduler.evaluate_many(&routed).expect("warmup");

            group.bench_function(format!("{label}_256"), |b| {
                b.iter(|| black_box(scheduler.evaluate_many(black_box(&routed)).expect("serve")))
            });

            let cold_latency = cold_latency_behind_hot_burst(&scheduler, &ids, &sets, 9);
            let stats = scheduler.stats();
            let telemetry = scheduler.telemetry();
            let per_shard: Vec<u64> = telemetry.shards.iter().map(|s| s.drained).collect();
            println!(
                "  [{label}/w{n}] drains={} mean_drain={:.1} max_drain={} fused={} \
                 rebalances={} per-shard drained={per_shard:?} \
                 cold-request latency behind 192-deep hot burst: {cold_latency:?} (median of 9)",
                stats.drain_passes,
                stats.mean_drain(),
                stats.max_drain,
                stats.fused_requests,
                telemetry.rebalances,
            );
            scheduler.shutdown().expect("shutdown");
        }
        group.finish();
    }
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
