//! Lock-order & blocking-discipline pass over the workspace call
//! graph.
//!
//! Every `.lock()` acquisition site is classified into a named class
//! from the policy's `[[lock]]` section — matched by the receiver
//! identifier left of the call, optionally scoped to one crate, or by
//! calling a declared guard-returning helper (`acquire_fns`). The
//! may-hold-while-acquiring relation is then computed to an
//! interprocedural fixpoint and checked four ways:
//!
//! 1. **deadlock-cycle** — a cycle in the computed lock-order graph;
//! 2. **lock-block** — a blocking operation (`recv`/`recv_timeout`/
//!    `wait`/`join`/`park`/`sleep`, or a `.send()` on a channel not
//!    declared unbounded) reachable while a guard is held;
//! 3. **double-acquire** — a non-reentrant class re-acquired along any
//!    path while already held;
//! 4. **order-inversion / order-undeclared** — a computed edge that
//!    contradicts, or is not covered by, the declared `before` partial
//!    order. Coverage is strict: every real nesting must be declared.
//!
//! Guard extents come from the parser's syntactic inference
//! (statement-bound guards live to the end of their block, expression
//! temporaries die on their own line); a policy `acquire_fns` helper
//! conservatively holds its class for the remainder of every calling
//! function. `// analyze: allow(lock-order) — reason` waives order
//! edges sourced at a line, `allow(lock-block)` waives blocking sites
//! and blocking propagation through a call line; both demand a reason
//! like every other analyzer waiver.

use crate::policy::LockSpec;
use crate::{Analysis, Fact, Policy};
use std::collections::{HashMap, HashSet, VecDeque};

/// Waiver rules owned by this pass.
pub const WAIVER_RULES: [&str; 2] = ["lock-order", "lock-block"];

/// One classified acquisition within a function.
#[derive(Clone)]
struct Acq {
    class: usize,
    line: usize,
    /// Last line of the guard extent (`usize::MAX` — rest of the fn,
    /// used for `acquire_fns` helpers).
    until: usize,
}

/// A computed may-hold-while-acquiring edge with its shortest witness.
#[derive(Clone)]
pub struct LockEdge {
    pub from: usize,
    pub to: usize,
    /// Function that holds `from` when `to` is acquired.
    pub holder: usize,
    pub hold_line: usize,
    /// Call hops from the holder to the acquiring fn: `(callee, call
    /// line in the previous hop)`. Empty when the holder acquires
    /// directly.
    pub hops: Vec<(usize, usize)>,
    pub acquire_line: usize,
}

/// One reported defect.
pub struct LockViolation {
    /// `deadlock-cycle` / `lock-block` / `double-acquire` /
    /// `order-inversion` / `order-undeclared`.
    pub kind: &'static str,
    pub classes: Vec<String>,
    /// Rendered hop-by-hop evidence, one indented line per hop.
    pub detail: String,
}

/// The pass verdict, embedded in [`crate::PolicyResults`].
#[derive(Default)]
pub struct LockResults {
    pub class_names: Vec<String>,
    pub classified_sites: usize,
    /// Sites whose receiver matched no class, in non-strict crates.
    pub unclassified: Vec<String>,
    pub edges: Vec<LockEdge>,
    /// Declared `before` pairs, for the report.
    pub declared: Vec<(String, String)>,
    pub violations: Vec<LockViolation>,
    /// Hard errors (merged into the policy errors by the caller).
    pub errors: Vec<String>,
    /// Per-fn transitive acquisition masks — `--explain` reads these.
    pub acq_trans: Vec<u64>,
    /// Per-fn direct acquisitions `(class, line)` — `--explain` input.
    pub fn_acqs: Vec<Vec<(usize, usize)>>,
}

impl LockResults {
    /// True when the computed lock-order graph has no cycle.
    pub fn acyclic(&self) -> bool {
        !self.violations.iter().any(|v| v.kind == "deadlock-cycle")
    }
}

/// Runs the whole pass. Pure function of the analysis and policy (only
/// the graph's edges and per-fn sites are read, not the fact vectors).
pub fn check_locks(analysis: &Analysis, policy: &Policy) -> LockResults {
    let specs = &policy.locks;
    let cfg = &policy.lock_config;
    let n = analysis.fns.len();
    let mut res = LockResults {
        class_names: specs.iter().map(|s| s.class.clone()).collect(),
        acq_trans: vec![0; n],
        fn_acqs: vec![Vec::new(); n],
        ..Default::default()
    };
    for s in specs {
        for b in &s.before {
            res.declared.push((s.class.clone(), b.clone()));
        }
    }
    if specs.len() > 64 {
        res.errors.push(format!(
            "{} lock classes exceed the 64-class bitmask",
            specs.len()
        ));
        return res;
    }
    let order_waived = |fi: usize, line: usize| analysis.fns[fi].lock_order_waived.contains(&line);
    let block_waived = |fi: usize, line: usize| analysis.fns[fi].lock_block_waived.contains(&line);

    // Guard-returning helpers declared in the policy.
    let mut helper_class: HashMap<usize, usize> = HashMap::new();
    for (ci, s) in specs.iter().enumerate() {
        for f in &s.acquire_fns {
            match analysis.index_of(f) {
                Some(i) => {
                    helper_class.insert(i, ci);
                }
                None => res.errors.push(format!(
                    "policy lock class `{}` names unknown acquire fn `{}`",
                    s.class, f
                )),
            }
        }
    }

    // Classify every direct site; add helper-call acquisitions.
    let mut acqs: Vec<Vec<Acq>> = vec![Vec::new(); n];
    for (fi, f) in analysis.fns.iter().enumerate() {
        for site in &f.locks {
            let class = specs.iter().position(|s| {
                s.receivers.iter().any(|r| r == &site.receiver)
                    && (s.crate_scope.is_empty() || s.crate_scope == f.crate_name)
            });
            match class {
                Some(ci) => {
                    res.classified_sites += 1;
                    acqs[fi].push(Acq {
                        class: ci,
                        line: site.line,
                        until: site.release_line.max(site.line),
                    });
                }
                None => {
                    let tag = format!(
                        "{}:{} `{}.lock()` in {}",
                        f.file, site.line, site.receiver, f.id
                    );
                    if cfg.strict.contains(&f.crate_name) {
                        res.errors.push(format!(
                            "{tag}: receiver matches no [[lock]] class and crate `{}` is strict",
                            f.crate_name
                        ));
                    } else {
                        res.unclassified.push(tag);
                    }
                }
            }
        }
    }
    for e in &analysis.edges {
        if let Some(&ci) = helper_class.get(&e.callee) {
            acqs[e.caller].push(Acq {
                class: ci,
                line: e.line,
                until: usize::MAX,
            });
        }
    }
    for (fi, fn_acqs) in acqs.iter().enumerate() {
        for a in fn_acqs {
            res.fn_acqs[fi].push((a.class, a.line));
            // May-acquire fixpoint seed: classes acquired directly.
            res.acq_trans[fi] |= 1u64 << a.class;
        }
    }
    loop {
        let mut changed = false;
        for e in &analysis.edges {
            if order_waived(e.caller, e.line) {
                continue;
            }
            let add = res.acq_trans[e.callee] & !res.acq_trans[e.caller];
            if add != 0 {
                res.acq_trans[e.caller] |= add;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // May-block fixpoint. `.lock(` itself is excluded — nested
    // acquisition is modeled by order edges, not treated as blocking.
    let mut block_site: Vec<Option<(String, usize)>> = vec![None; n];
    for (fi, f) in analysis.fns.iter().enumerate() {
        for s in &f.sites {
            if s.fact == Fact::Block && s.token != ".lock(" && !block_waived(fi, s.line) {
                block_site[fi] = Some((s.token.clone(), s.line));
                break;
            }
        }
        if block_site[fi].is_none() {
            for s in &f.sends {
                if !cfg.unbounded_sends.contains(&s.receiver) && !block_waived(fi, s.line) {
                    block_site[fi] = Some((format!("{}.send(", s.receiver), s.line));
                    break;
                }
            }
        }
    }
    let mut blocks: Vec<bool> = block_site.iter().map(|s| s.is_some()).collect();
    loop {
        let mut changed = false;
        for e in &analysis.edges {
            if blocks[e.callee] && !blocks[e.caller] && !block_waived(e.caller, e.line) {
                blocks[e.caller] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Per-acquisition scans: blocking under the guard, later
    // acquisitions (order edges), double-acquire.
    let mut edge_at: HashMap<(usize, usize), usize> = HashMap::new();
    let mut seen_double: HashSet<(usize, usize, usize)> = HashSet::new();
    for fi in 0..n {
        for ai in 0..acqs[fi].len() {
            let a = acqs[fi][ai].clone();
            let in_extent = |line: usize| line >= a.line && line <= a.until;
            let holder_id = analysis.fns[fi].id.clone();
            let holder_file = analysis.fns[fi].file.clone();
            if !block_waived(fi, a.line) {
                for s in &analysis.fns[fi].sites {
                    if s.fact == Fact::Block
                        && s.token != ".lock("
                        && in_extent(s.line)
                        && !block_waived(fi, s.line)
                    {
                        res.violations.push(LockViolation {
                            kind: "lock-block",
                            classes: vec![specs[a.class].class.clone()],
                            detail: format!(
                                "    {} holds `{}` (acquired at {}:{})\n     → blocking `{}` at {}:{}\n",
                                holder_id, specs[a.class].class, holder_file, a.line,
                                s.token, holder_file, s.line
                            ),
                        });
                    }
                }
                for s in &analysis.fns[fi].sends {
                    if !cfg.unbounded_sends.contains(&s.receiver)
                        && in_extent(s.line)
                        && !block_waived(fi, s.line)
                    {
                        res.violations.push(LockViolation {
                            kind: "lock-block",
                            classes: vec![specs[a.class].class.clone()],
                            detail: format!(
                                "    {} holds `{}` (acquired at {}:{})\n     → bounded `{}.send(` at {}:{}\n",
                                holder_id, specs[a.class].class, holder_file, a.line,
                                s.receiver, holder_file, s.line
                            ),
                        });
                    }
                }
                for &ei in &analysis.fadj[fi] {
                    let e = &analysis.edges[ei];
                    if !in_extent(e.line) || block_waived(fi, e.line) || !blocks[e.callee] {
                        continue;
                    }
                    let (hops, token, line) = chain_to_block(
                        analysis,
                        e.callee,
                        e.line,
                        &block_site,
                        &blocks,
                        &block_waived,
                    );
                    let mut detail = format!(
                        "    {} holds `{}` (acquired at {}:{})\n",
                        holder_id, specs[a.class].class, holder_file, a.line
                    );
                    render_hops(analysis, fi, &hops, &mut detail);
                    let last = hops.last().map(|&(f, _)| f).unwrap_or(fi);
                    detail.push_str(&format!(
                        "     → blocking `{}` at {}:{}\n",
                        token, analysis.fns[last].file, line
                    ));
                    res.violations.push(LockViolation {
                        kind: "lock-block",
                        classes: vec![specs[a.class].class.clone()],
                        detail,
                    });
                }
            }
            if order_waived(fi, a.line) {
                continue;
            }
            // Direct later acquisitions inside the extent.
            for (bi, b) in acqs[fi].clone().iter().enumerate() {
                if bi == ai
                    || b.line < a.line
                    || !in_extent(b.line)
                    || (b.line == a.line && bi < ai)
                    || (b.line != a.line && order_waived(fi, b.line))
                {
                    continue;
                }
                let edge = LockEdge {
                    from: a.class,
                    to: b.class,
                    holder: fi,
                    hold_line: a.line,
                    hops: Vec::new(),
                    acquire_line: b.line,
                };
                record(
                    analysis,
                    specs,
                    edge,
                    &mut res,
                    &mut edge_at,
                    &mut seen_double,
                );
            }
            // Acquisitions reached through calls inside the extent.
            for &ei in &analysis.fadj[fi] {
                let e = &analysis.edges[ei];
                if !in_extent(e.line) || order_waived(fi, e.line) {
                    continue;
                }
                // Skip the call that *is* this acquisition (its helper).
                if helper_class.get(&e.callee) == Some(&a.class) && e.line == a.line {
                    continue;
                }
                let mut mask = res.acq_trans[e.callee];
                while mask != 0 {
                    let c = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let (hops, line) = chain_to_acq(
                        analysis,
                        e.callee,
                        e.line,
                        c,
                        &acqs,
                        &res.acq_trans,
                        &order_waived,
                    );
                    let edge = LockEdge {
                        from: a.class,
                        to: c,
                        holder: fi,
                        hold_line: a.line,
                        hops,
                        acquire_line: line,
                    };
                    record(
                        analysis,
                        specs,
                        edge,
                        &mut res,
                        &mut edge_at,
                        &mut seen_double,
                    );
                }
            }
        }
    }

    // Cycles in the computed class graph.
    if let Some(cycle) = graph_cycle(specs.len(), &res.edges) {
        let names: Vec<String> = cycle.iter().map(|&c| specs[c].class.clone()).collect();
        let mut detail = String::new();
        for w in cycle.windows(2) {
            if let Some(&ei) = edge_at.get(&(w[0], w[1])) {
                let e = res.edges[ei].clone();
                detail.push_str(&render_edge(analysis, &res, &e));
            }
        }
        res.violations.push(LockViolation {
            kind: "deadlock-cycle",
            classes: names,
            detail,
        });
    }

    // Strict declared-order coverage: every computed edge must sit in
    // the transitive closure of the `before` lists.
    let mut after = vec![0u64; specs.len()];
    for (ci, s) in specs.iter().enumerate() {
        for b in &s.before {
            if let Some(bj) = specs.iter().position(|x| &x.class == b) {
                after[ci] |= 1u64 << bj;
            }
        }
    }
    loop {
        let mut changed = false;
        for ci in 0..specs.len() {
            let mut mask = after[ci];
            while mask != 0 {
                let cj = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let add = after[cj] & !after[ci];
                if add != 0 {
                    after[ci] |= add;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for ei in 0..res.edges.len() {
        let (from, to) = (res.edges[ei].from, res.edges[ei].to);
        if from == to || after[from] & (1u64 << to) != 0 {
            continue;
        }
        let e = res.edges[ei].clone();
        let (kind, note) = if after[to] & (1u64 << from) != 0 {
            (
                "order-inversion",
                format!(
                    "    the declared order is `{}` before `{}` — this path nests them the other way\n",
                    specs[to].class, specs[from].class
                ),
            )
        } else {
            (
                "order-undeclared",
                format!(
                    "    no declared order covers `{}` → `{}` — add a `before` entry or a lock-order waiver\n",
                    specs[from].class, specs[to].class
                ),
            )
        };
        let mut detail = render_edge(analysis, &res, &e);
        detail.push_str(&note);
        res.violations.push(LockViolation {
            kind,
            classes: vec![specs[from].class.clone(), specs[to].class.clone()],
            detail,
        });
    }
    res
}

/// Records a computed edge: same-class pairs become double-acquire
/// violations (unless the class is reentrant), distinct pairs are
/// kept with their first (shortest) witness.
fn record(
    analysis: &Analysis,
    specs: &[LockSpec],
    edge: LockEdge,
    res: &mut LockResults,
    edge_at: &mut HashMap<(usize, usize), usize>,
    seen_double: &mut HashSet<(usize, usize, usize)>,
) {
    let (from, to) = (edge.from, edge.to);
    if from == to {
        if !specs[from].reentrant && seen_double.insert((edge.holder, edge.hold_line, from)) {
            let mut detail = render_edge(analysis, res, &edge);
            detail.push_str(&format!(
                "    `{}` is not reentrant — this path self-deadlocks\n",
                specs[from].class
            ));
            res.violations.push(LockViolation {
                kind: "double-acquire",
                classes: vec![specs[from].class.clone()],
                detail,
            });
        }
        return;
    }
    if let std::collections::hash_map::Entry::Vacant(v) = edge_at.entry((from, to)) {
        v.insert(res.edges.len());
        res.edges.push(edge);
    }
}

/// Public rendering entry for the CLI's `--explain` output.
pub fn render_lock_edge(analysis: &Analysis, res: &LockResults, e: &LockEdge) -> String {
    render_edge(analysis, res, e)
}

/// Renders one edge's witness hop-by-hop.
fn render_edge(analysis: &Analysis, res: &LockResults, e: &LockEdge) -> String {
    let holder = &analysis.fns[e.holder];
    let mut out = format!(
        "    {} locks `{}` at {}:{}\n",
        holder.id, res.class_names[e.from], holder.file, e.hold_line
    );
    render_hops(analysis, e.holder, &e.hops, &mut out);
    let last = e.hops.last().map(|&(f, _)| f).unwrap_or(e.holder);
    out.push_str(&format!(
        "     → acquires `{}` at {}:{}\n",
        res.class_names[e.to], analysis.fns[last].file, e.acquire_line
    ));
    out
}

fn render_hops(analysis: &Analysis, start: usize, hops: &[(usize, usize)], out: &mut String) {
    let mut prev = start;
    for &(f, line) in hops {
        out.push_str(&format!(
            "     → calls {}  (at {}:{})\n",
            analysis.fns[f].id, analysis.fns[prev].file, line
        ));
        prev = f;
    }
}

/// Shortest call chain from `start` (entered via `via_line`) to a
/// function that acquires `class` on its own lines, staying inside the
/// may-acquire set so the walk cannot dead-end.
fn chain_to_acq(
    analysis: &Analysis,
    start: usize,
    via_line: usize,
    class: usize,
    acqs: &[Vec<Acq>],
    acq_trans: &[u64],
    order_waived: &dyn Fn(usize, usize) -> bool,
) -> (Vec<(usize, usize)>, usize) {
    let direct = |f: usize| acqs[f].iter().find(|a| a.class == class).map(|a| a.line);
    let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
    let mut queue = VecDeque::new();
    let mut seen = HashSet::new();
    queue.push_back(start);
    seen.insert(start);
    while let Some(f) = queue.pop_front() {
        if let Some(line) = direct(f) {
            return (unwind(start, f, via_line, &parent), line);
        }
        for &ei in &analysis.fadj[f] {
            let e = &analysis.edges[ei];
            if order_waived(e.caller, e.line) || acq_trans[e.callee] & (1u64 << class) == 0 {
                continue;
            }
            if seen.insert(e.callee) {
                parent.insert(e.callee, (f, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    (vec![(start, via_line)], 0)
}

/// Shortest call chain from `start` to a direct blocking site.
fn chain_to_block(
    analysis: &Analysis,
    start: usize,
    via_line: usize,
    block_site: &[Option<(String, usize)>],
    blocks: &[bool],
    block_waived: &dyn Fn(usize, usize) -> bool,
) -> (Vec<(usize, usize)>, String, usize) {
    let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
    let mut queue = VecDeque::new();
    let mut seen = HashSet::new();
    queue.push_back(start);
    seen.insert(start);
    while let Some(f) = queue.pop_front() {
        if let Some((token, line)) = &block_site[f] {
            return (unwind(start, f, via_line, &parent), token.clone(), *line);
        }
        for &ei in &analysis.fadj[f] {
            let e = &analysis.edges[ei];
            if block_waived(e.caller, e.line) || !blocks[e.callee] {
                continue;
            }
            if seen.insert(e.callee) {
                parent.insert(e.callee, (f, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    (vec![(start, via_line)], "?".into(), 0)
}

/// Rebuilds the BFS path `start → … → target` as `(fn, call line)`
/// hops, prefixed with the entry hop.
fn unwind(
    start: usize,
    target: usize,
    via_line: usize,
    parent: &HashMap<usize, (usize, usize)>,
) -> Vec<(usize, usize)> {
    let mut rev = Vec::new();
    let mut cur = target;
    while cur != start {
        let Some(&(p, line)) = parent.get(&cur) else {
            break;
        };
        rev.push((cur, line));
        cur = p;
    }
    rev.push((start, via_line));
    rev.reverse();
    rev
}

/// Finds one cycle in the computed class graph, returned as a closed
/// walk (`first == last`).
fn graph_cycle(nclasses: usize, edges: &[LockEdge]) -> Option<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nclasses];
    for e in edges {
        if e.from != e.to && !adj[e.from].contains(&e.to) {
            adj[e.from].push(e.to);
        }
    }
    fn dfs(i: usize, adj: &[Vec<usize>], state: &mut [u8], path: &mut Vec<usize>) -> Option<usize> {
        state[i] = 1;
        path.push(i);
        for &j in &adj[i] {
            match state[j] {
                1 => return Some(j),
                0 => {
                    if let Some(c) = dfs(j, adj, state, path) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        state[i] = 2;
        path.pop();
        None
    }
    let mut state = vec![0u8; nclasses];
    for i in 0..nclasses {
        if state[i] == 0 {
            let mut path = Vec::new();
            if let Some(entry) = dfs(i, &adj, &mut state, &mut path) {
                let pos = path.iter().position(|&p| p == entry).unwrap_or(0);
                let mut cycle = path[pos..].to_vec();
                cycle.push(entry);
                return Some(cycle);
            }
        }
    }
    None
}
