//! TAB-AREA — reproduces the paper's §V.B comparison: the byte-wide
//! 3-input majority gate vs eight scalar gates vs one serialized gate.
//!
//! The paper reports 0.116 µm² (scalar ×8) vs 0.0279 µm² (parallel):
//! a 4.16x area reduction at equal delay and energy. Absolute areas
//! depend on the dispersion model (see DESIGN.md §2); the ratio and the
//! delay/energy parity are the reproduction targets.
//!
//! Usage: `cargo run --release -p magnon-bench --bin repro_table_comparison`

use magnon_bench::{byte_majority_gate, fmt_sci, results_dir, write_csv};
use magnon_cost::{CostModel, Transducer};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let gate = byte_majority_gate()?;
    let model = CostModel::new(Transducer::paper_default());
    let cmp = model.compare(&gate)?;

    println!("TAB-AREA: 8-bit 3-input majority — implementation comparison");
    println!(
        "(paper: scalar 0.116 um^2, parallel 0.0279 um^2, ratio 4.16x, delay/energy parity)\n"
    );
    println!("{cmp}");

    let d = gate.layout().spacings();
    println!("\nsame-frequency source spacings d_1..d_8 (nm), cf. paper's 166/100/117/165/174/130/168/176:");
    let spacings: Vec<String> = d.iter().map(|x| format!("{:.0}", x * 1e9)).collect();
    println!("  [{}]", spacings.join(", "));

    let rows = vec![
        vec![
            "parallel".to_string(),
            fmt_sci(cmp.parallel.area_um2()),
            fmt_sci(cmp.parallel.delay_ns()),
            fmt_sci(cmp.parallel.energy_aj()),
            cmp.parallel.transducers.to_string(),
        ],
        vec![
            "scalar_x8".to_string(),
            fmt_sci(cmp.scalar.area_um2()),
            fmt_sci(cmp.scalar.delay_ns()),
            fmt_sci(cmp.scalar.energy_aj()),
            cmp.scalar.transducers.to_string(),
        ],
        vec![
            "serialized".to_string(),
            fmt_sci(cmp.serialized.area_um2()),
            fmt_sci(cmp.serialized.delay_ns()),
            fmt_sci(cmp.serialized.energy_aj()),
            cmp.serialized.transducers.to_string(),
        ],
        vec![
            "ratio_scalar_over_parallel".to_string(),
            fmt_sci(cmp.area_ratio()),
            fmt_sci(cmp.delay_ratio()),
            fmt_sci(cmp.energy_ratio()),
            String::new(),
        ],
    ];
    let dir = results_dir();
    write_csv(
        &dir.join("table_comparison.csv"),
        &[
            "implementation",
            "area_um2",
            "delay_ns",
            "energy_aj",
            "transducers",
        ],
        &rows,
    )?;
    println!("\nwrote {}/table_comparison.csv", dir.display());

    let ok = cmp.area_ratio() > 2.0
        && (cmp.energy_ratio() - 1.0).abs() < 1e-9
        && (cmp.delay_ratio() - 1.0).abs() < 0.3;
    println!(
        "TAB-AREA {}",
        if ok {
            "PASS: multi-x area reduction at delay/energy parity (paper shape preserved)"
        } else {
            "FAIL"
        }
    );
    if !ok {
        std::process::exit(1);
    }
    Ok(())
}
