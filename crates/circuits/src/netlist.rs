//! Word-level netlists of data-parallel gates.

use magnon_core::word::Word;
use magnon_core::GateError;

/// Handle to a node in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A circuit node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    /// External input with its operand index.
    Input(usize),
    /// A constant word.
    Constant(Word),
    /// 3-input majority (one data-parallel MAJ gate).
    Maj3(NodeId, NodeId, NodeId),
    /// 2-input XOR (one data-parallel XOR gate).
    Xor2(NodeId, NodeId),
    /// Complement — free in hardware via inverted readout (paper §III),
    /// so it is not counted as a gate.
    Not(NodeId),
}

/// Gate-type counts of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Number of 3-input majority gates.
    pub maj3: usize,
    /// Number of 2-input XOR gates.
    pub xor2: usize,
    /// Number of inversions (free: realised by detector placement).
    pub not: usize,
}

impl GateCounts {
    /// Total transducer count: `4` per MAJ-3 (3 sources + 1 detector),
    /// `3` per XOR-2; inversions reuse their gate's detector.
    pub fn transducers(&self) -> usize {
        4 * self.maj3 + 3 * self.xor2
    }
}

/// A feed-forward circuit over `n`-bit words.
///
/// Nodes may only reference earlier nodes, so evaluation is a single
/// forward pass.
///
/// # Examples
///
/// ```
/// use magnon_circuits::netlist::Circuit;
/// use magnon_core::word::Word;
///
/// # fn main() -> Result<(), magnon_core::GateError> {
/// let mut c = Circuit::new(8)?;
/// let a = c.input();
/// let b = c.input();
/// let x = c.xor2(a, b)?;
/// c.mark_output(x)?;
/// let out = c.evaluate(&[Word::from_u8(0xF0), Word::from_u8(0xAA)])?;
/// assert_eq!(out[0].to_u8(), 0x5A);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    width: usize,
    nodes: Vec<Node>,
    input_count: usize,
    outputs: Vec<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit over words of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for widths outside
    /// `1..=64`.
    pub fn new(width: usize) -> Result<Self, GateError> {
        Word::zeros(width)?; // reuse word-width validation
        Ok(Circuit { width, nodes: Vec::new(), input_count: 0, outputs: Vec::new() })
    }

    /// Word width carried by every wire.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of external inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// The output nodes in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Adds an external input and returns its node.
    pub fn input(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Input(self.input_count));
        self.input_count += 1;
        id
    }

    /// Adds a constant word.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::WordWidthMismatch`] when the constant's
    /// width differs from the circuit's.
    pub fn constant(&mut self, word: Word) -> Result<NodeId, GateError> {
        if word.width() != self.width {
            return Err(GateError::WordWidthMismatch {
                expected: self.width,
                actual: word.width(),
            });
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Constant(word));
        Ok(id)
    }

    fn check(&self, id: NodeId) -> Result<(), GateError> {
        if id.0 >= self.nodes.len() {
            return Err(GateError::InvalidParameter { parameter: "node_id", value: id.0 as f64 });
        }
        Ok(())
    }

    /// Adds a 3-input majority gate.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for dangling operands.
    pub fn maj3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> Result<NodeId, GateError> {
        self.check(a)?;
        self.check(b)?;
        self.check(c)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Maj3(a, b, c));
        Ok(id)
    }

    /// Adds a 2-input XOR gate.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for dangling operands.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GateError> {
        self.check(a)?;
        self.check(b)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Xor2(a, b));
        Ok(id)
    }

    /// Adds an inversion (free: inverted readout).
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a dangling operand.
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, GateError> {
        self.check(a)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Not(a));
        Ok(id)
    }

    /// AND via majority with a constant-0 input: `AND(a,b) = MAJ(a,b,0)`
    /// — the standard majority-logic construction (paper §I cites
    /// (N)AND/(N)OR gates built this way).
    ///
    /// # Errors
    ///
    /// Propagates operand validation.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GateError> {
        let zero = self.constant(Word::zeros(self.width)?)?;
        self.maj3(a, b, zero)
    }

    /// OR via majority with a constant-1 input: `OR(a,b) = MAJ(a,b,1)`.
    ///
    /// # Errors
    ///
    /// Propagates operand validation.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GateError> {
        let one = self.constant(Word::ones(self.width)?)?;
        self.maj3(a, b, one)
    }

    /// Marks a node as a circuit output.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a dangling node.
    pub fn mark_output(&mut self, id: NodeId) -> Result<(), GateError> {
        self.check(id)?;
        self.outputs.push(id);
        Ok(())
    }

    /// Counts gates by type.
    pub fn gate_counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for node in &self.nodes {
            match node {
                Node::Maj3(..) => counts.maj3 += 1,
                Node::Xor2(..) => counts.xor2 += 1,
                Node::Not(..) => counts.not += 1,
                _ => {}
            }
        }
        counts
    }

    /// Evaluates the circuit on `input_count` words, returning one word
    /// per marked output.
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] for the wrong operand count.
    /// * [`GateError::WordWidthMismatch`] for mis-sized operands.
    pub fn evaluate(&self, inputs: &[Word]) -> Result<Vec<Word>, GateError> {
        if inputs.len() != self.input_count {
            return Err(GateError::InputCountMismatch {
                expected: self.input_count,
                actual: inputs.len(),
            });
        }
        for w in inputs {
            if w.width() != self.width {
                return Err(GateError::WordWidthMismatch {
                    expected: self.width,
                    actual: w.width(),
                });
            }
        }
        let mut values: Vec<Word> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match *node {
                Node::Input(k) => inputs[k],
                Node::Constant(w) => w,
                Node::Maj3(a, b, c) => {
                    let (a, b, c) = (values[a.0], values[b.0], values[c.0]);
                    Word::from_bits(
                        (a.bits() & b.bits()) | (a.bits() & c.bits()) | (b.bits() & c.bits()),
                        self.width,
                    )?
                }
                Node::Xor2(a, b) => {
                    Word::from_bits(values[a.0].bits() ^ values[b.0].bits(), self.width)?
                }
                Node::Not(a) => values[a.0].not(),
            };
            values.push(v);
        }
        Ok(self.outputs.iter().map(|id| values[id.0]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_evaluates_to_nothing() {
        let c = Circuit::new(8).unwrap();
        assert!(c.evaluate(&[]).unwrap().is_empty());
        assert!(Circuit::new(0).is_err());
    }

    #[test]
    fn maj_gate_identity() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m = c.maj3(a, b, d).unwrap();
        c.mark_output(m).unwrap();
        let out = c
            .evaluate(&[Word::from_u8(0x0F), Word::from_u8(0x33), Word::from_u8(0x55)])
            .unwrap();
        assert_eq!(out[0].to_u8(), 0x17);
    }

    #[test]
    fn and_or_via_majority() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let and = c.and2(a, b).unwrap();
        let or = c.or2(a, b).unwrap();
        c.mark_output(and).unwrap();
        c.mark_output(or).unwrap();
        let out = c
            .evaluate(&[Word::from_u8(0b1100), Word::from_u8(0b1010)])
            .unwrap();
        assert_eq!(out[0].to_u8(), 0b1000);
        assert_eq!(out[1].to_u8(), 0b1110);
    }

    #[test]
    fn not_is_free_and_correct() {
        let mut c = Circuit::new(4).unwrap();
        let a = c.input();
        let n = c.not(a).unwrap();
        c.mark_output(n).unwrap();
        let out = c.evaluate(&[Word::from_bits(0b0110, 4).unwrap()]).unwrap();
        assert_eq!(out[0].bits(), 0b1001);
        assert_eq!(c.gate_counts().not, 1);
        assert_eq!(c.gate_counts().transducers(), 0);
    }

    #[test]
    fn gate_counts_and_transducers() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let x = c.xor2(a, b).unwrap();
        let m = c.maj3(a, b, x).unwrap();
        let _ = c.not(m).unwrap();
        let counts = c.gate_counts();
        assert_eq!(counts.maj3, 1);
        assert_eq!(counts.xor2, 1);
        assert_eq!(counts.not, 1);
        assert_eq!(counts.transducers(), 7);
    }

    #[test]
    fn dangling_references_rejected() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let bogus = NodeId(99);
        assert!(c.maj3(a, a, bogus).is_err());
        assert!(c.xor2(bogus, a).is_err());
        assert!(c.not(bogus).is_err());
        assert!(c.mark_output(bogus).is_err());
    }

    #[test]
    fn operand_validation() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        c.mark_output(a).unwrap();
        assert!(matches!(
            c.evaluate(&[]),
            Err(GateError::InputCountMismatch { .. })
        ));
        let narrow = Word::zeros(4).unwrap();
        assert!(matches!(
            c.evaluate(&[narrow]),
            Err(GateError::WordWidthMismatch { .. })
        ));
        assert!(c.constant(narrow).is_err());
    }

    #[test]
    fn parallelism_is_bitwise_independent() {
        // Each channel (bit position) computes independently: evaluating
        // all 8 MAJ combos at once matches per-bit evaluation.
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m = c.maj3(a, b, d).unwrap();
        c.mark_output(m).unwrap();
        // Channel i carries combination i.
        let a_w = Word::from_u8(0b10101010);
        let b_w = Word::from_u8(0b11001100);
        let d_w = Word::from_u8(0b11110000);
        let out = c.evaluate(&[a_w, b_w, d_w]).unwrap()[0];
        for i in 0..8 {
            let expected = [false, false, false, true, false, true, true, true][i];
            assert_eq!(out.bit(i).unwrap(), expected, "combo {i}");
        }
    }
}
