//! Magnetics domain layer for the `spinwave-parallel` workspace.
//!
//! Everything the gate designer and the micromagnetic simulator need to
//! agree on lives here:
//!
//! * [`material`] — material parameter sets ([`material::Material`]),
//!   including the Fe₆₀Co₂₀B₂₀ preset with the exact constants of the
//!   reproduced paper,
//! * [`demag`] — demagnetizing factors of rectangular prisms (Aharoni's
//!   exact expression) used for finite-width waveguide corrections,
//! * [`waveguide`] — waveguide geometry + material, internal field and
//!   ferromagnetic resonance (FMR),
//! * [`dispersion`] — spin-wave dispersion relations `f(k)`: the
//!   exchange (local-demag) branch realised by the finite-difference
//!   simulator, and the Kalinikos–Slavin forward-volume branch with the
//!   non-local thickness correction,
//! * [`damping`] — Gilbert-damping lifetimes and attenuation lengths,
//! * [`macrospin`] — the Landau–Lifshitz–Gilbert right-hand side for a
//!   single spin, shared with the micromagnetic solver.
//!
//! # Examples
//!
//! Reproduce the paper's operating point: FMR of the 50 nm × 1 nm FeCoB
//! waveguide is a few GHz, so all eight 10–80 GHz channels propagate:
//!
//! ```
//! use magnon_physics::waveguide::Waveguide;
//! use magnon_physics::dispersion::DispersionRelation;
//!
//! # fn main() -> Result<(), magnon_physics::PhysicsError> {
//! let guide = Waveguide::paper_default()?;
//! let disp = guide.exchange_dispersion()?;
//! let fmr = disp.fmr_frequency();
//! assert!(fmr < 10.0e9, "all paper channels must lie above FMR");
//! let lambda10 = disp.wavelength(10.0e9)?;
//! let lambda80 = disp.wavelength(80.0e9)?;
//! assert!(lambda10 > lambda80, "wavelength decreases with frequency");
//! # Ok(())
//! # }
//! ```

pub mod damping;
pub mod demag;
pub mod dispersion;
pub mod error;
pub mod macrospin;
pub mod magnetostatic;
pub mod material;
pub mod waveguide;

pub use error::PhysicsError;
