//! Error type for the physics layer.

use magnon_math::MathError;
use std::fmt;

/// Errors produced by material validation, geometry and dispersion
/// calculations.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicsError {
    /// A material parameter was out of its physical range.
    InvalidMaterial {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A geometric dimension was not strictly positive and finite.
    InvalidGeometry {
        /// Name of the offending dimension.
        parameter: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The out-of-plane internal field `H_ani − N_z·M_s` is not positive,
    /// so the film is not perpendicularly magnetized and forward-volume
    /// waves cannot be hosted.
    NotPerpendicular {
        /// Computed internal field in A/m (≤ 0).
        internal_field: f64,
    },
    /// A requested frequency lies at or below the ferromagnetic
    /// resonance, where no propagating spin wave exists.
    FrequencyBelowFmr {
        /// Requested frequency in Hz.
        frequency: f64,
        /// FMR frequency in Hz.
        fmr: f64,
    },
    /// An underlying numerical routine failed.
    Math(MathError),
}

impl fmt::Display for PhysicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicsError::InvalidMaterial { parameter, value } => {
                write!(
                    f,
                    "material parameter `{parameter}` is out of range: {value}"
                )
            }
            PhysicsError::InvalidGeometry { parameter, value } => {
                write!(
                    f,
                    "geometry parameter `{parameter}` must be positive and finite, got {value}"
                )
            }
            PhysicsError::NotPerpendicular { internal_field } => {
                write!(
                    f,
                    "internal field {internal_field:.3e} A/m is not positive; film is not perpendicularly magnetized"
                )
            }
            PhysicsError::FrequencyBelowFmr { frequency, fmr } => {
                write!(
                    f,
                    "frequency {frequency:.3e} Hz is at or below the ferromagnetic resonance {fmr:.3e} Hz"
                )
            }
            PhysicsError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for PhysicsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhysicsError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for PhysicsError {
    fn from(e: MathError) -> Self {
        PhysicsError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PhysicsError::FrequencyBelowFmr {
            frequency: 1e9,
            fmr: 3e9,
        };
        assert!(e.to_string().contains("ferromagnetic resonance"));
        let e = PhysicsError::Math(MathError::EmptyInput);
        assert!(e.to_string().contains("numerical error"));
    }

    #[test]
    fn source_chains_math_errors() {
        use std::error::Error;
        let e = PhysicsError::Math(MathError::EmptyInput);
        assert!(e.source().is_some());
        let e = PhysicsError::NotPerpendicular {
            internal_field: -1.0,
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn from_math_error() {
        let e: PhysicsError = MathError::EmptyInput.into();
        assert_eq!(e, PhysicsError::Math(MathError::EmptyInput));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysicsError>();
    }
}
