//! `magnon-check` — run the concurrency model checker from the shell.
//!
//! ```text
//! RUSTFLAGS="--cfg mcheck" cargo run -p magnon-check --release -- --seeds 2000
//! RUSTFLAGS="--cfg mcheck" cargo run -p magnon-check --release -- \
//!     --scenario serve-exactly-once --replay-seed 1234
//! ```
//!
//! Without the `mcheck` cfg the binary only explains how to enable the
//! instrumentation (the façade is plain `std`, so there is nothing to
//! schedule).

#[cfg(not(mcheck))]
fn main() {
    eprintln!(
        "magnon-check: this build has no model-check instrumentation.\n\
         Rebuild with the mcheck cfg to turn the sync façade into shims:\n\n    \
         RUSTFLAGS=\"--cfg mcheck\" cargo run -p magnon-check --release -- --seeds 2000\n"
    );
    std::process::exit(2);
}

#[cfg(mcheck)]
fn main() {
    std::process::exit(mcheck_main::run());
}

#[cfg(mcheck)]
mod mcheck_main {
    use magnon_check::{explore, explore_bounded, replay, scenarios, ExploreConfig, ReplayToken};

    struct Args {
        seeds: u64,
        seed_start: u64,
        preempt: u8,
        step_limit: u64,
        scenario: Option<String>,
        replay_seed: Option<u64>,
        bounded: Option<usize>,
        max_runs: u64,
        self_test: bool,
    }

    fn usage() -> ! {
        eprintln!(
            "usage: magnon-check [--scenario NAME] [--seeds N] [--seed-start N] [--preempt PCT]\n\
             \x20                   [--step-limit N] [--replay-seed SEED] [--bounded PREEMPTIONS]\n\
             \x20                   [--max-runs N] [--self-test] [--list]\n\n\
             Default: explore every registered scenario over N random seeds.\n\
             --replay-seed reruns one schedule (requires --scenario).\n\
             --bounded runs the bounded-preemption exhaustive mode instead of seeds.\n\
             --self-test verifies the checker finds a planted racy-counter bug."
        );
        std::process::exit(2);
    }

    fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
        match value.and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => {
                eprintln!("magnon-check: {flag} needs a valid value");
                usage()
            }
        }
    }

    fn parse_args() -> Args {
        let mut args = Args {
            seeds: 1000,
            seed_start: 0,
            preempt: 25,
            step_limit: 200_000,
            scenario: None,
            replay_seed: None,
            bounded: None,
            max_runs: 20_000,
            self_test: false,
        };
        let mut argv = std::env::args().skip(1);
        while let Some(flag) = argv.next() {
            match flag.as_str() {
                "--seeds" => args.seeds = parse(&flag, argv.next()),
                "--seed-start" => args.seed_start = parse(&flag, argv.next()),
                "--preempt" => args.preempt = parse(&flag, argv.next()),
                "--step-limit" => args.step_limit = parse(&flag, argv.next()),
                "--scenario" => args.scenario = Some(argv.next().unwrap_or_else(|| usage())),
                "--replay-seed" => args.replay_seed = Some(parse(&flag, argv.next())),
                "--bounded" => args.bounded = Some(parse(&flag, argv.next())),
                "--max-runs" => args.max_runs = parse(&flag, argv.next()),
                "--self-test" => args.self_test = true,
                "--list" => {
                    for (name, _) in scenarios::all() {
                        println!("{name}");
                    }
                    std::process::exit(0);
                }
                _ => usage(),
            }
        }
        args
    }

    fn selected(args: &Args) -> Vec<(&'static str, fn())> {
        match &args.scenario {
            None => scenarios::all().to_vec(),
            Some(name) => match scenarios::by_name(name) {
                Some(body) => {
                    let entry = scenarios::all()
                        .iter()
                        .find(|(n, _)| n == name)
                        .expect("by_name hit implies registry entry");
                    vec![(entry.0, body)]
                }
                None => {
                    eprintln!(
                        "magnon-check: unknown scenario `{name}` (--list shows the registry)"
                    );
                    std::process::exit(2);
                }
            },
        }
    }

    pub fn run() -> i32 {
        let args = parse_args();

        if args.self_test {
            return self_test(&args);
        }

        if let Some(seed) = args.replay_seed {
            let Some(name) = args.scenario.as_deref() else {
                eprintln!("magnon-check: --replay-seed needs --scenario");
                usage()
            };
            let Some(body) = scenarios::by_name(name) else {
                eprintln!("magnon-check: unknown scenario `{name}`");
                std::process::exit(2);
            };
            let token = ReplayToken::Seed {
                seed,
                preempt_percent: args.preempt,
            };
            let outcome = scenarios::with_quiet_panics(|| replay(body, &token, args.step_limit));
            println!("replay: scenario `{name}`, {token}");
            println!("schedule hash: {:#018x}", outcome.trace.schedule_hash());
            println!("steps: {}", outcome.steps);
            print!("{}", outcome.trace.render());
            return match (&outcome.failure, &outcome.root_panic) {
                (None, None) => {
                    println!("outcome: clean");
                    0
                }
                (failure, panic) => {
                    if let Some(f) = failure {
                        println!("outcome: {f}");
                    }
                    if let Some(p) = panic {
                        println!("root panic: {p}");
                    }
                    1
                }
            };
        }

        let mut exit = 0;
        for (name, body) in selected(&args) {
            let report = scenarios::with_quiet_panics(|| {
                if let Some(preemptions) = args.bounded {
                    explore_bounded(body, preemptions, args.step_limit, args.max_runs)
                } else {
                    explore(
                        body,
                        &ExploreConfig {
                            seeds: args.seed_start..args.seed_start + args.seeds,
                            preempt_percent: args.preempt,
                            step_limit: args.step_limit,
                        },
                    )
                }
            });
            println!(
                "scenario `{name}`: {} runs, {} distinct interleavings",
                report.runs, report.distinct_schedules
            );
            if let Some(failure) = &report.failure {
                exit = 1;
                println!("  FAILED — replay with {}", failure.token);
                println!("  {}", failure.message);
                println!("  schedule hash {:#018x}", failure.schedule_hash);
                if let ReplayToken::Seed { seed, .. } = failure.token {
                    println!(
                        "  rerun: RUSTFLAGS=\"--cfg mcheck\" cargo run -p magnon-check --release \
                         -- --scenario {name} --replay-seed {seed} --preempt {}",
                        args.preempt
                    );
                }
            }
        }
        exit
    }

    /// Proves the checker actually explores: the planted racy-counter
    /// bug must be found within the seed budget, and the failing seed
    /// must replay to the identical schedule.
    fn self_test(args: &Args) -> i32 {
        let report = scenarios::with_quiet_panics(|| {
            explore(
                scenarios::racy_counter,
                &ExploreConfig {
                    seeds: args.seed_start..args.seed_start + args.seeds,
                    preempt_percent: args.preempt,
                    step_limit: args.step_limit,
                },
            )
        });
        match report.failure {
            Some(failure) => {
                let outcome = scenarios::with_quiet_panics(|| {
                    replay(scenarios::racy_counter, &failure.token, args.step_limit)
                });
                let replay_hash = outcome.trace.schedule_hash();
                if outcome.trace.render() == failure.trace && replay_hash == failure.schedule_hash {
                    println!(
                        "self-test: planted bug found after {} runs ({}), replay byte-identical",
                        report.runs, failure.token
                    );
                    0
                } else {
                    println!(
                        "self-test: FAILED — replay diverged from the recorded trace \
                         ({:#018x} vs {:#018x})",
                        replay_hash, failure.schedule_hash
                    );
                    1
                }
            }
            None => {
                println!(
                    "self-test: FAILED — the planted racy-counter bug survived {} runs",
                    report.runs
                );
                1
            }
        }
    }
}
