//! Pipelined execution of compiled circuit plans.
//!
//! A [`magnon_compiler::CompiledCircuit`] carries ASAP wavefronts and a
//! `(waveguide, lane)` slot table; this module runs such plans
//! *through* the [`Scheduler`] two ways:
//!
//! * [`CircuitExecutor::run_batch`] — **pipelined**, dependency-aware
//!   submission: each gate node's request goes out the moment its
//!   operand values complete (polled via [`Ticket::try_wait`], parked
//!   briefly on [`Ticket::wait_timeout`] when nothing moves). No level
//!   barriers: independent subgraphs, and different operand sets of
//!   the *same* subgraph, interleave freely across shards and lanes,
//!   so worker drains stay deep and multi-lane FDM passes form by
//!   construction.
//! * [`CircuitExecutor::run_batch_levelized`] — the caller-serialized
//!   baseline: submit one whole wavefront, wait for all of it, then
//!   submit the next. This is what a careful caller could write by
//!   hand against [`crate::ScheduledBank`]; the bench compares the two.
//!
//! [`register_compiled`] maps a plan's slot table onto scheduler
//! registrations (one MAJ-3/XOR-2 pair per slot, on the slot's
//! frequency lane), rebased onto a caller-chosen first waveguide id so
//! several plans can share one scheduler.

use crate::error::ServeError;
use crate::request::{GateId, Ticket};
use crate::scheduler::{Scheduler, SchedulerBuilder};
use magnon_circuits::netlist::{DispatchStats, GateShape, NodeKind};
use magnon_compiler::CompiledCircuit;
use magnon_core::backend::{BackendChoice, OperandSet};
use magnon_core::gate::WaveguideId;
use magnon_core::sync::time::Duration;
use magnon_core::word::Word;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;
use std::collections::VecDeque;

/// How long the pipelined loop parks on its oldest in-flight ticket
/// per harvest round — long enough that the client thread sleeps
/// through a typical drain cycle instead of busy-polling (which would
/// starve workers on small machines), short enough that an
/// out-of-order completion burst behind a slow oldest ticket is picked
/// up promptly.
const PARK: Duration = Duration::from_micros(100);

/// Scheduler registrations backing one compiled plan: a MAJ-3/XOR-2
/// gate pair per plan slot. Built by [`register_compiled`].
#[derive(Debug, Clone)]
pub struct CompiledGates {
    slots: Vec<(GateId, GateId)>,
    width: usize,
    first_waveguide: WaveguideId,
}

impl CompiledGates {
    /// The `(maj3, xor2)` registration per plan slot, in slot order.
    pub fn slots(&self) -> &[(GateId, GateId)] {
        &self.slots
    }

    /// Word width of every registered gate.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The scheduler waveguide id plan-relative waveguide 0 was rebased
    /// onto.
    pub fn first_waveguide(&self) -> WaveguideId {
        self.first_waveguide
    }
}

/// Registers `compiled`'s slot table with `builder`: one 3-input
/// majority and one 2-input XOR gate per slot, on the slot's frequency
/// lane of waveguide `first_waveguide + slot.waveguide` (plans number
/// their waveguides from zero; rebasing lets several compiled circuits
/// share a scheduler without id or LUT-name collisions — give each
/// plan a disjoint waveguide-id block).
///
/// # Errors
///
/// Gate construction failures and duplicate registrations
/// (overlapping waveguide-id blocks).
pub fn register_compiled(
    builder: &mut SchedulerBuilder,
    compiled: &CompiledCircuit,
    waveguide: Waveguide,
    first_waveguide: WaveguideId,
    choice: BackendChoice,
) -> Result<CompiledGates, ServeError> {
    let width = compiled.circuit().width();
    let mut slots = Vec::with_capacity(compiled.slots().len());
    for spec in compiled.slots() {
        let pair = builder.register_circuit_gates_on_lane(
            waveguide,
            WaveguideId(first_waveguide.0 + spec.waveguide.0),
            spec.lane,
            width,
            choice,
        )?;
        slots.push(pair);
    }
    Ok(CompiledGates {
        slots,
        width,
        first_waveguide,
    })
}

/// Per-run value/dependency state: `values[set][node]`, unresolved
/// operand-slot counts, and the gate nodes whose operands are complete.
struct RunState {
    values: Vec<Vec<Option<Word>>>,
    missing: Vec<Vec<usize>>,
    ready: VecDeque<(usize, usize)>,
}

/// Executes one compiled plan against a running [`Scheduler`].
///
/// Cheap to keep around: holds the node table (kinds, dependents) and
/// the slot registrations, plus traffic counters surfaced through
/// [`CircuitExecutor::dispatch_stats`].
#[derive(Debug)]
pub struct CircuitExecutor<'a> {
    scheduler: &'a Scheduler,
    compiled: &'a CompiledCircuit,
    slots: Vec<(GateId, GateId)>,
    kinds: Vec<NodeKind>,
    /// node → consumer node indices, one entry per operand occurrence
    /// (so `MAJ(a, a, b)` lists the consumer twice under `a`).
    dependents: Vec<Vec<usize>>,
    width: usize,
    dispatch_calls: u64,
    sets_dispatched: u64,
    peak_in_flight: u64,
}

impl<'a> CircuitExecutor<'a> {
    /// Binds `compiled` to its registrations on `scheduler`.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownGate`] for ids foreign to `scheduler`.
    /// * [`ServeError::Gate`] when a slot's gates carry the wrong
    ///   shape or width for the plan, or the registration count does
    ///   not match the slot table.
    pub fn new(
        scheduler: &'a Scheduler,
        compiled: &'a CompiledCircuit,
        gates: &CompiledGates,
    ) -> Result<Self, ServeError> {
        let width = compiled.circuit().width();
        if gates.width != width || gates.slots.len() != compiled.slots().len() {
            return Err(ServeError::Gate(GateError::WordWidthMismatch {
                expected: width,
                actual: gates.width,
            }));
        }
        for &(maj, xor) in &gates.slots {
            for (id, shape) in [(maj, GateShape::Maj3), (xor, GateShape::Xor2)] {
                let gate = scheduler
                    .gate(id)
                    .ok_or(ServeError::UnknownGate { index: id.index() })?;
                if gate.function() != shape.function() || gate.input_count() != shape.input_count()
                {
                    return Err(ServeError::Gate(GateError::UnsupportedFunction {
                        reason: "compiled slots need a 3-input majority and a 2-input XOR gate",
                    }));
                }
                if gate.word_width() != width {
                    return Err(ServeError::Gate(GateError::WordWidthMismatch {
                        expected: width,
                        actual: gate.word_width(),
                    }));
                }
            }
        }
        let kinds = compiled.circuit().node_kinds();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); kinds.len()];
        for (i, kind) in kinds.iter().enumerate() {
            for op in kind.operands() {
                dependents[op.index()].push(i);
            }
        }
        Ok(CircuitExecutor {
            scheduler,
            compiled,
            slots: gates.slots.clone(),
            kinds,
            dependents,
            width,
            dispatch_calls: 0,
            sets_dispatched: 0,
            peak_in_flight: 0,
        })
    }

    /// The plan this executor runs.
    pub fn compiled(&self) -> &CompiledCircuit {
        self.compiled
    }

    /// Traffic counters: one dispatch call per gate node per run, one
    /// dispatched set per `(gate node, operand set)` submission — the
    /// same accounting a [`crate::ScheduledBank`] reports, so compiled
    /// and interpreter runs compare directly.
    pub fn dispatch_stats(&self) -> DispatchStats {
        DispatchStats {
            dispatch_calls: self.dispatch_calls,
            sets_dispatched: self.sets_dispatched,
        }
    }

    /// Most requests the pipelined loop had in flight at once across
    /// every run so far — the depth dependency-aware submission keeps
    /// the scheduler's queues at.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Runs one operand set through the plan, pipelined.
    ///
    /// # Errors
    ///
    /// The conditions of [`CircuitExecutor::run_batch`].
    pub fn run(&mut self, inputs: &[Word]) -> Result<Vec<Word>, ServeError> {
        let sets = [inputs.to_vec()];
        let mut outputs = self.run_batch(&sets)?;
        Ok(outputs.pop().expect("one set in, one set out"))
    }

    /// Runs many operand sets through the plan with dependency-aware
    /// pipelined submission: every gate node of every set is submitted
    /// the moment its operands complete, and completions are polled
    /// with [`Ticket::try_wait`] while further work queues behind them.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Gate`] for operand shape mismatches or gate
    ///   evaluation failures.
    /// * [`ServeError::Shutdown`] when the scheduler goes away
    ///   mid-run.
    pub fn run_batch(&mut self, sets: &[Vec<Word>]) -> Result<Vec<Vec<Word>>, ServeError> {
        let mut state = self.init(sets)?;
        self.note_traffic(sets.len());
        let mut in_flight: VecDeque<(usize, usize, Ticket)> = VecDeque::new();
        while !state.ready.is_empty() || !in_flight.is_empty() {
            // Submit everything ready. Non-blocking while completions
            // are pending (a full queue just defers to the harvest
            // phase); blocking when nothing is in flight, as
            // backpressure then cannot deadlock us.
            while let Some(&(set, node)) = state.ready.front() {
                let operands = self.operands_of(&state, set, node);
                let id = self.gate_for(node);
                let ticket = if in_flight.is_empty() {
                    Some(self.scheduler.submit(id, operands)?)
                } else {
                    match self.scheduler.try_submit(id, operands) {
                        Ok(t) => Some(t),
                        Err(ServeError::QueueFull { .. }) => None,
                        Err(e) => return Err(e),
                    }
                };
                let Some(ticket) = ticket else { break };
                state.ready.pop_front();
                in_flight.push_back((set, node, ticket));
            }
            self.peak_in_flight = self.peak_in_flight.max(in_flight.len() as u64);

            // Harvest: park on the oldest ticket (keeping this thread
            // off the workers' cores — completions flow out of drain
            // cycles in near-submission order, so the oldest usually
            // lands first), then sweep EVERY in-flight ticket without
            // blocking. The sweep must not stop at the first pending
            // ticket: fused and FDM drains complete requests out of
            // submission order, so a slow head can hide finished
            // tickets behind it — and the dependents those completions
            // would unlock sit unsubmitted for a full park per round.
            // (The model checker's executor-pipeline scenario caught
            // the prefix-only variant of this loop doing exactly that.)
            // A timed-out head stays redeemable on a later round.
            if let Some(head) = in_flight.front() {
                match head.2.wait_timeout(PARK) {
                    Ok(out) => {
                        let (set, node, _t) = in_flight.pop_front().expect("head exists");
                        self.complete(&mut state, set, node, out.word());
                    }
                    Err(ServeError::Timeout) => {}
                    Err(e) => return Err(e),
                }
                let mut i = 0;
                while i < in_flight.len() {
                    match in_flight[i].2.try_wait()? {
                        Some(out) => {
                            let (set, node, _t) =
                                in_flight.remove(i).expect("index checked against len");
                            self.complete(&mut state, set, node, out.word());
                        }
                        None => i += 1,
                    }
                }
            }
        }
        self.gather(state, sets.len())
    }

    /// Runs many operand sets level by level: each ASAP wavefront is
    /// submitted whole, then fully awaited before the next goes out —
    /// the caller-serialized baseline the pipelined mode is measured
    /// against.
    ///
    /// # Errors
    ///
    /// The conditions of [`CircuitExecutor::run_batch`].
    pub fn run_batch_levelized(
        &mut self,
        sets: &[Vec<Word>],
    ) -> Result<Vec<Vec<Word>>, ServeError> {
        let mut state = self.init(sets)?;
        self.note_traffic(sets.len());
        for level in self.compiled.levels() {
            let mut tickets = Vec::with_capacity(level.len() * sets.len());
            for node in level {
                let id = self.gate_for(node.index());
                for set in 0..sets.len() {
                    let operands = self.operands_of(&state, set, node.index());
                    tickets.push((set, node.index(), self.scheduler.submit(id, operands)?));
                }
            }
            // The barrier: the whole wavefront completes before any
            // gate of the next level is submitted.
            for (set, node, ticket) in tickets {
                let out = ticket.wait()?;
                self.complete(&mut state, set, node, out.word());
            }
        }
        self.gather(state, sets.len())
    }

    /// Validates `sets` and resolves every node reachable without gate
    /// work (inputs, constants, inversions of resolved nodes), seeding
    /// the ready queue with gates whose operands are all free.
    fn init(&self, sets: &[Vec<Word>]) -> Result<RunState, ServeError> {
        let circuit = self.compiled.circuit();
        for set in sets {
            if set.len() != circuit.input_count() {
                return Err(ServeError::Gate(GateError::InputCountMismatch {
                    expected: circuit.input_count(),
                    actual: set.len(),
                }));
            }
            for w in set {
                if w.width() != self.width {
                    return Err(ServeError::Gate(GateError::WordWidthMismatch {
                        expected: self.width,
                        actual: w.width(),
                    }));
                }
            }
        }
        let n = self.kinds.len();
        let mut state = RunState {
            values: vec![vec![None; n]; sets.len()],
            missing: vec![vec![0; n]; sets.len()],
            ready: VecDeque::new(),
        };
        for (set_idx, set) in sets.iter().enumerate() {
            for (i, kind) in self.kinds.iter().enumerate() {
                match kind {
                    NodeKind::Input { index } => state.values[set_idx][i] = Some(set[*index]),
                    NodeKind::Constant(w) => state.values[set_idx][i] = Some(*w),
                    NodeKind::Not(a) => {
                        // Operands precede consumers: a resolved
                        // operand is already in `values`.
                        match state.values[set_idx][a.index()] {
                            Some(v) => state.values[set_idx][i] = Some(v.not()),
                            None => state.missing[set_idx][i] = 1,
                        }
                    }
                    _ => {
                        let unresolved = kind
                            .operands()
                            .iter()
                            .filter(|op| state.values[set_idx][op.index()].is_none())
                            .count();
                        state.missing[set_idx][i] = unresolved;
                        if unresolved == 0 {
                            state.ready.push_back((set_idx, i));
                        }
                    }
                }
            }
        }
        Ok(state)
    }

    /// Records `word` as `(set, node)`'s value and cascades: free
    /// inversions resolve in place, gates whose last operand arrived
    /// join the ready queue.
    fn complete(&self, state: &mut RunState, set: usize, node: usize, word: Word) {
        let mut stack = vec![(node, word)];
        while let Some((node, word)) = stack.pop() {
            state.values[set][node] = Some(word);
            for &consumer in &self.dependents[node] {
                state.missing[set][consumer] -= 1;
                if state.missing[set][consumer] == 0 {
                    match self.kinds[consumer] {
                        NodeKind::Not(_) => stack.push((consumer, word.not())),
                        _ => state.ready.push_back((set, consumer)),
                    }
                }
            }
        }
    }

    /// Collects the per-set output words once every node resolved.
    fn gather(&self, state: RunState, sets: usize) -> Result<Vec<Vec<Word>>, ServeError> {
        let circuit = self.compiled.circuit();
        Ok((0..sets)
            .map(|set| {
                circuit
                    .outputs()
                    .iter()
                    .map(|id| {
                        state.values[set][id.index()].expect("all nodes resolved at gather time")
                    })
                    .collect()
            })
            .collect())
    }

    fn operands_of(&self, state: &RunState, set: usize, node: usize) -> OperandSet {
        let words = self.kinds[node]
            .operands()
            .iter()
            .map(|op| state.values[set][op.index()].expect("operands resolved before submission"))
            .collect();
        OperandSet::new(words)
    }

    fn gate_for(&self, node: usize) -> GateId {
        let circuit = self.compiled.circuit();
        let id = circuit
            .node_ids()
            .nth(node)
            .expect("node index within the circuit");
        let slot = self
            .compiled
            .slot_of(id)
            .expect("gate nodes always carry a slot");
        let (maj, xor) = self.slots[slot];
        match self.kinds[node].gate_shape().expect("only gates submit") {
            GateShape::Maj3 => maj,
            GateShape::Xor2 => xor,
        }
    }

    fn note_traffic(&mut self, sets: usize) {
        let gates = self
            .kinds
            .iter()
            .filter(|k| k.gate_shape().is_some())
            .count() as u64;
        self.dispatch_calls += gates;
        self.sets_dispatched += gates * sets as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use crate::AdaptiveConfig;
    use magnon_circuits::netlist::Circuit;
    use magnon_compiler::{compile, CompilerConfig};

    fn quick_config(workers: usize) -> ServeConfig {
        ServeConfig {
            keep_readouts: false,
            workers,
            max_batch: 64,
            linger: Duration::from_micros(50),
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig::default(),
        }
    }

    /// A full adder plus an independent parity pair — two subgraphs.
    fn two_subgraph_circuit() -> Circuit {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let cin = c.input();
        let axb = c.xor2(a, b).unwrap();
        let sum = c.xor2(axb, cin).unwrap();
        let carry = c.maj3(a, b, cin).unwrap();
        let x = c.input();
        let y = c.input();
        let par = c.xor2(x, y).unwrap();
        let npar = c.not(par).unwrap();
        c.mark_output(sum).unwrap();
        c.mark_output(carry).unwrap();
        c.mark_output(par).unwrap();
        c.mark_output(npar).unwrap();
        c
    }

    fn sample_sets(inputs: usize, count: usize) -> Vec<Vec<Word>> {
        (0..count as u64)
            .map(|i| {
                (0..inputs as u64)
                    .map(|j| {
                        Word::from_u8(
                            (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .rotate_left(j as u32 * 7)
                                >> 13) as u8,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pipelined_and_levelized_match_the_reference() {
        let guide = Waveguide::paper_default().unwrap();
        let circuit = two_subgraph_circuit();
        let compiled = compile(&circuit, &guide, &CompilerConfig::default()).unwrap();
        let mut builder = SchedulerBuilder::new(quick_config(2));
        let gates = register_compiled(
            &mut builder,
            &compiled,
            guide,
            WaveguideId(0),
            BackendChoice::Cached,
        )
        .unwrap();
        let scheduler = builder.build().unwrap();
        let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gates).unwrap();
        let sets = sample_sets(circuit.input_count(), 12);
        let reference = circuit.evaluate_batch(&sets).unwrap();
        assert_eq!(executor.run_batch(&sets).unwrap(), reference);
        assert_eq!(executor.run_batch_levelized(&sets).unwrap(), reference);
        let single = executor.run(&sets[0]).unwrap();
        assert_eq!(single, reference[0]);
        // 4 gate nodes, 12+12+1 sets.
        let stats = executor.dispatch_stats();
        assert_eq!(stats.dispatch_calls, 12);
        assert_eq!(stats.sets_dispatched, 4 * 25);
        assert!(
            executor.peak_in_flight() >= 2,
            "independent subgraphs must overlap"
        );
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn gateless_plans_run_without_submissions() {
        let guide = Waveguide::paper_default().unwrap();
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let n = c.not(a).unwrap();
        c.mark_output(n).unwrap();
        let compiled = compile(&c, &guide, &CompilerConfig::default()).unwrap();
        let mut builder = SchedulerBuilder::new(quick_config(1));
        let gates = register_compiled(
            &mut builder,
            &compiled,
            guide,
            WaveguideId(0),
            BackendChoice::Analytic,
        )
        .unwrap();
        let scheduler = builder.build().unwrap();
        let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gates).unwrap();
        let out = executor.run(&[Word::from_u8(0x0F)]).unwrap();
        assert_eq!(out[0].to_u8(), 0xF0);
        assert_eq!(scheduler.stats().submitted, 0);
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn executor_rejects_mismatched_registrations() {
        let guide = Waveguide::paper_default().unwrap();
        let circuit = two_subgraph_circuit();
        let compiled = compile(&circuit, &guide, &CompilerConfig::default()).unwrap();
        let mut narrow = Circuit::new(4).unwrap();
        let a = narrow.input();
        let b = narrow.input();
        let x = narrow.xor2(a, b).unwrap();
        narrow.mark_output(x).unwrap();
        let narrow_compiled = compile(&narrow, &guide, &CompilerConfig::default()).unwrap();
        let mut builder = SchedulerBuilder::new(quick_config(1));
        let gates = register_compiled(
            &mut builder,
            &narrow_compiled,
            guide,
            WaveguideId(0),
            BackendChoice::Analytic,
        )
        .unwrap();
        let scheduler = builder.build().unwrap();
        // A 4-bit registration cannot back an 8-bit plan.
        assert!(matches!(
            CircuitExecutor::new(&scheduler, &compiled, &gates),
            Err(ServeError::Gate(GateError::WordWidthMismatch { .. }))
        ));
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn executor_validates_operand_sets() {
        let guide = Waveguide::paper_default().unwrap();
        let circuit = two_subgraph_circuit();
        let compiled = compile(&circuit, &guide, &CompilerConfig::default()).unwrap();
        let mut builder = SchedulerBuilder::new(quick_config(1));
        let gates = register_compiled(
            &mut builder,
            &compiled,
            guide,
            WaveguideId(0),
            BackendChoice::Analytic,
        )
        .unwrap();
        let scheduler = builder.build().unwrap();
        let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gates).unwrap();
        assert!(matches!(
            executor.run(&[]),
            Err(ServeError::Gate(GateError::InputCountMismatch { .. }))
        ));
        let narrow = vec![Word::zeros(4).unwrap(); circuit.input_count()];
        assert!(matches!(
            executor.run(&narrow),
            Err(ServeError::Gate(GateError::WordWidthMismatch { .. }))
        ));
        scheduler.shutdown().unwrap();
    }
}
