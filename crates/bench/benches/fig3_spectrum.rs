//! FIG3 bench: the spectral-analysis kernel of Figure 3 — windowed FFT
//! of a detector record plus crosstalk scoring — and the analytic gate
//! evaluation that predicts each combination's response.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use magnon_bench::{batched_combo_words, byte_majority_gate};
use magnon_core::crosstalk::CrosstalkReport;
use magnon_math::spectrum::TimeSeries;
use magnon_math::window::Window;
use std::f64::consts::PI;
use std::hint::black_box;

fn detector_record(samples: usize) -> TimeSeries {
    let dt = 1.0e-12;
    let freqs: Vec<f64> = (1..=8).map(|i| i as f64 * 10.0e9).collect();
    let data: Vec<f64> = (0..samples)
        .map(|i| {
            let t = i as f64 * dt;
            freqs
                .iter()
                .enumerate()
                .map(|(k, &f)| (1.0 / (k + 1) as f64) * (2.0 * PI * f * t).sin())
                .sum()
        })
        .collect();
    TimeSeries::new(dt, data).expect("valid series")
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);

    let record = detector_record(16384);
    let freqs: Vec<f64> = (1..=8).map(|i| i as f64 * 10.0e9).collect();

    group.bench_function("spectrum_16k", |b| {
        b.iter(|| black_box(&record).spectrum(Window::Hann).expect("spectrum"))
    });

    let spectrum = record.spectrum(Window::Hann).expect("spectrum");
    group.bench_function("crosstalk_report", |b| {
        b.iter(|| CrosstalkReport::analyze(black_box(&spectrum), &freqs, 2.0e9).expect("report"))
    });

    group.bench_function("goertzel_8_channels", |b| {
        b.iter(|| {
            for &f in &freqs {
                black_box(record.goertzel(f).expect("tone"));
            }
        })
    });

    let gate = byte_majority_gate().expect("gate");
    let words = batched_combo_words(3, 8).expect("words");
    group.bench_function("analytic_byte_evaluate", |b| {
        b.iter_batched(
            || words.clone(),
            |w| gate.evaluate(black_box(&w)).expect("evaluate"),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
