//! The machine-readable JSON report: graph size, per-root verdicts
//! with call chains, the full waiver inventory, and every ambiguity.
//! Hand-rolled emitter — the toolchain takes no external deps.

use crate::{Analysis, Fact, Policy, PolicyResults};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: impl Iterator<Item = String>) -> String {
    let inner: Vec<String> = items.map(|s| format!("\"{}\"", esc(&s))).collect();
    format!("[{}]", inner.join(", "))
}

/// Renders the full report as a JSON object.
pub fn render_json(analysis: &Analysis, policy: &Policy, results: &PolicyResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files\": {},\n", analysis.files));
    out.push_str(&format!("  \"functions\": {},\n", analysis.fns.len()));
    out.push_str(&format!("  \"edges\": {},\n", analysis.edges.len()));
    out.push_str(&format!(
        "  \"calls\": {{\"resolved\": {}, \"external\": {}, \"ambiguous\": {}}},\n",
        analysis.resolved_calls,
        analysis.external_calls,
        analysis.ambiguities.len()
    ));
    // Per-fact totals: how much of the graph carries each fact.
    out.push_str("  \"fact_totals\": {");
    let totals: Vec<String> = Fact::ALL
        .iter()
        .map(|f| {
            format!(
                "\"{}\": {}",
                f.id(),
                analysis.can[f.index()].iter().filter(|&&b| b).count()
            )
        })
        .collect();
    out.push_str(&totals.join(", "));
    out.push_str("},\n");
    // Roots.
    out.push_str("  \"roots\": [\n");
    let roots: Vec<String> = results
        .roots
        .iter()
        .map(|r| {
            let status = if r.fn_idx.is_none() {
                "unresolved"
            } else if r.violations.is_empty() {
                "clean"
            } else {
                "violated"
            };
            let violations: Vec<String> = r
                .violations
                .iter()
                .map(|chain| {
                    let hops: Vec<String> = chain
                        .hops
                        .iter()
                        .map(|h| {
                            let f = &analysis.fns[h.fn_idx];
                            format!(
                                "{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                                esc(&f.id),
                                esc(&f.file),
                                h.via_line.unwrap_or(f.line)
                            )
                        })
                        .collect();
                    let last = &analysis.fns[chain.hops.last().map(|h| h.fn_idx).unwrap_or(0)];
                    format!(
                        "{{\"rule\": \"{}\", \"chain\": [{}], \"site\": {{\"token\": \"{}\", \"file\": \"{}\", \"line\": {}}}}}",
                        chain.fact.id(),
                        hops.join(", "),
                        esc(&chain.site_token),
                        esc(&last.file),
                        chain.site_line
                    )
                })
                .collect();
            format!(
                "    {{\"fn\": \"{}\", \"deny\": {}, \"status\": \"{}\", \"reachable\": {}, \"violations\": [{}]}}",
                esc(&r.spec.func),
                str_array(r.spec.deny.iter().map(|f| f.id().to_string())),
                status,
                r.reachable,
                violations.join(", ")
            )
        })
        .collect();
    out.push_str(&roots.join(",\n"));
    out.push_str("\n  ],\n");
    // Waiver inventory: every site waiver plus the policy trust list.
    out.push_str("  \"waivers\": [\n");
    let waivers: Vec<String> = analysis
        .waiver_decls
        .iter()
        .map(|w| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
                esc(&w.file),
                w.line,
                esc(&w.rule),
                esc(&w.reason)
            )
        })
        .collect();
    out.push_str(&waivers.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"trust\": [\n");
    let trust: Vec<String> = policy
        .trust
        .iter()
        .map(|t| {
            format!(
                "    {{\"fn\": \"{}\", \"rules\": {}, \"reason\": \"{}\"}}",
                esc(&t.func),
                str_array(t.rules.iter().map(|f| f.id().to_string())),
                esc(&t.reason)
            )
        })
        .collect();
    out.push_str(&trust.join(",\n"));
    out.push_str("\n  ],\n");
    // Ambiguities: reported, never dropped.
    out.push_str("  \"ambiguities\": [\n");
    let ambs: Vec<String> = analysis
        .ambiguities
        .iter()
        .map(|a| {
            format!(
                "    {{\"caller\": \"{}\", \"file\": \"{}\", \"line\": {}, \"call\": \"{}\", \"candidates\": {}}}",
                esc(&a.caller),
                esc(&a.file),
                a.line,
                esc(&a.call),
                str_array(a.candidates.iter().cloned())
            )
        })
        .collect();
    out.push_str(&ambs.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"errors\": {}\n",
        str_array(results.errors.iter().cloned())
    ));
    out.push_str("}\n");
    out
}
