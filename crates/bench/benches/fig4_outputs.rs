//! FIG4 bench: band-pass reconstruction of the per-channel output
//! traces (the paper's Matlab post-processing of Fig. 4) across all
//! eight channels.

use criterion::{criterion_group, criterion_main, Criterion};
use magnon_math::spectrum::TimeSeries;
use std::f64::consts::PI;
use std::hint::black_box;

fn detector_record(samples: usize) -> TimeSeries {
    let dt = 1.0e-12;
    let data: Vec<f64> = (0..samples)
        .map(|i| {
            let t = i as f64 * dt;
            (1..=8)
                .map(|k| (2.0 * PI * k as f64 * 10.0e9 * t + 0.3 * k as f64).sin())
                .sum()
        })
        .collect();
    TimeSeries::new(dt, data).expect("valid series")
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(20);

    for samples in [4096usize, 16384] {
        let record = detector_record(samples);
        group.bench_function(format!("band_pass_8_channels_{samples}"), |b| {
            b.iter(|| {
                for k in 1..=8 {
                    let f = k as f64 * 10.0e9;
                    black_box(black_box(&record).band_pass(f, 4.0e9).expect("band pass"));
                }
            })
        });
    }

    let record = detector_record(16384);
    group.bench_function("phase_decode_8_channels", |b| {
        b.iter(|| {
            for k in 1..=8 {
                let f = k as f64 * 10.0e9;
                black_box(record.phase_at(f).expect("phase"));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
