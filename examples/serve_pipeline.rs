//! End-to-end serving pipeline: persisted LUTs, two shards, and a mixed
//! adder/ALU/parity request stream through one scheduler.
//!
//! Run twice to see the warm restart:
//!
//! ```text
//! cargo run --release --example serve_pipeline
//! cargo run --release --example serve_pipeline   # starts warm from disk
//! ```

use spinwave_parallel::circuits::adder::RippleCarryAdder;
use spinwave_parallel::circuits::alu::{Alu, AluOp};
use spinwave_parallel::circuits::parity::ParityTree;
use spinwave_parallel::core::backend::{BackendChoice, OperandSet};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{AdaptiveConfig, ScheduledBank, SchedulerBuilder, ServeConfig};
use std::time::{Duration, Instant};

const WIDTH: usize = 8;
const ROUNDS: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lut_dir = std::path::PathBuf::from("results/luts");
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: 256,
        linger: Duration::from_micros(100),
        queue_depth: 1024,
        lut_dir: Some(lut_dir.clone()),
        adaptive: AdaptiveConfig::default(),
    });
    // Two waveguides, each carrying a MAJ-3 + XOR-2 pair. With two
    // workers, each waveguide gets its own shard; the gates *within* a
    // waveguide share one and cross-gate coalesce.
    let (maj3, xor2) = builder.register_circuit_gates(
        Waveguide::paper_default()?,
        WaveguideId(0),
        WIDTH,
        BackendChoice::Cached,
    )?;
    let (maj3_b, xor2_b) = builder.register_circuit_gates(
        Waveguide::paper_default()?,
        WaveguideId(1),
        WIDTH,
        BackendChoice::Cached,
    )?;
    let scheduler = builder.build()?;
    println!(
        "scheduler up: {} gates on {} shards, {} LUT entries loaded from {}",
        scheduler.gate_count(),
        scheduler.worker_count(),
        scheduler.lut_entries_loaded(),
        lut_dir.display(),
    );
    for id in [maj3, xor2, maj3_b, xor2_b] {
        println!(
            "  {} ({}) -> shard {}",
            scheduler.gate_name(id).unwrap_or("?"),
            scheduler
                .gate(id)
                .map(|g| g.waveguide_id())
                .unwrap_or_default(),
            scheduler.shard_of(id).unwrap_or(usize::MAX),
        );
    }
    if scheduler.lut_entries_loaded() > 0 {
        println!("warm restart: serving begins without recomputing any channel readout");
    } else {
        println!("cold start: LUTs fill on demand and persist at shutdown");
    }

    // The circuits of the mixed workload.
    let adder = RippleCarryAdder::new(WIDTH, WIDTH)?;
    let alu = Alu::new(WIDTH, WIDTH)?;
    let parity = ParityTree::new(4, WIDTH)?;

    let start = Instant::now();
    let mut evaluations = 0u64;
    for round in 0..ROUNDS as u64 {
        let a: Vec<u64> = (0..WIDTH as u64)
            .map(|i| (round * 37 + i * 11) % 256)
            .collect();
        let b: Vec<u64> = (0..WIDTH as u64)
            .map(|i| (round * 59 + i * 23) % 256)
            .collect();

        // Whole circuits ride the scheduler through a ScheduledBank…
        let mut bank = ScheduledBank::new(&scheduler, maj3, xor2)?;
        let sums = adder.add_many_on(&mut bank, &a, &b)?;
        let mut bank = ScheduledBank::new(&scheduler, maj3, xor2)?;
        let diffs = alu.execute_on(&mut bank, AluOp::Sub, &a, &b)?;
        let words: Vec<Word> = (0..4u64)
            .map(|j| Word::from_u8((round * 97 + j * 13) as u8))
            .collect();
        let mut bank = ScheduledBank::new(&scheduler, maj3, xor2)?;
        let par = parity.evaluate_on(&mut bank, &words)?;

        // …interleaved with raw single-gate traffic on the same shards.
        let raw = scheduler.submit(
            maj3,
            OperandSet::new(vec![
                Word::from_u8(round as u8),
                Word::from_u8((round * 3) as u8),
                Word::from_u8((round * 7) as u8),
            ]),
        )?;
        let raw_out = raw.wait()?;

        // Spot-check against the boolean reference.
        assert_eq!(sums, adder.add_many(&a, &b)?);
        assert_eq!(diffs, alu.execute(AluOp::Sub, &a, &b)?);
        assert_eq!(par, parity.evaluate(&words)?);
        evaluations += raw_out.word().width() as u64;
    }
    let elapsed = start.elapsed();
    let circuit_stats = scheduler.stats();
    println!(
        "circuit phase: served {} requests in {elapsed:?} ({:.0} req/s; ripple-carry \
         dependencies keep these drains small)",
        circuit_stats.completed,
        circuit_stats.completed as f64 / elapsed.as_secs_f64(),
    );
    let _ = evaluations;

    // Batchable load: a burst of independent requests across all four
    // gates — both gates of each waveguide, both waveguides (= both
    // shards) — submitted up front. This is where coalescing pays.
    let burst: Vec<_> = (0..512u64)
        .map(|i| {
            if i % 2 == 0 {
                (
                    if i % 4 == 0 { maj3 } else { maj3_b },
                    OperandSet::new(vec![
                        Word::from_u8((i * 37) as u8),
                        Word::from_u8((i * 59) as u8),
                        Word::from_u8((i * 83) as u8),
                    ]),
                )
            } else {
                (
                    if i % 4 == 1 { xor2 } else { xor2_b },
                    OperandSet::new(vec![
                        Word::from_u8((i * 41) as u8),
                        Word::from_u8((i * 67) as u8),
                    ]),
                )
            }
        })
        .collect();
    let start = Instant::now();
    let outputs = scheduler.evaluate_many(&burst)?;
    let elapsed = start.elapsed();
    let stats = scheduler.stats();
    println!(
        "burst phase: {} mixed maj3/xor2 requests in {elapsed:?} ({:.0} req/s)",
        outputs.len(),
        outputs.len() as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "coalescing since start: {} drain cycles, mean {:.1} requests/drain, max {}, \
         {} cross-gate passes",
        stats.drain_passes,
        stats.mean_drain(),
        stats.max_drain,
        stats.cross_gate_passes,
    );
    let telemetry = scheduler.telemetry();
    println!(
        "telemetry: per-shard drained {:?}, linger windows {:?}, {} rebalance move(s)",
        telemetry
            .shards
            .iter()
            .map(|s| s.drained)
            .collect::<Vec<_>>(),
        telemetry
            .shards
            .iter()
            .map(|s| s.linger)
            .collect::<Vec<_>>(),
        telemetry.rebalances,
    );

    let report = scheduler.shutdown()?;
    println!(
        "shutdown: persisted {} LUT entries into {} file(s)",
        report.lut_entries_saved,
        report.lut_files.len(),
    );
    for path in &report.lut_files {
        println!("  {}", path.display());
    }
    Ok(())
}
