//! Waveguide geometry and its derived magnetic operating point.

use crate::demag;
use crate::dispersion::{DispersionRelation, ExchangeDispersion, KalinikosSlavinFvmsw};
use crate::error::PhysicsError;
use crate::material::Material;
use magnon_math::constants::NM;
use serde::{Deserialize, Serialize};

/// A straight spin-wave waveguide: a long ferromagnetic bar of
/// rectangular cross-section, magnetized out of plane by its
/// perpendicular magnetic anisotropy.
///
/// The paper's device (§IV.B) is a Fe₆₀Co₂₀B₂₀ bar 50 nm wide and 1 nm
/// thick; [`Waveguide::paper_default`] reproduces it.
///
/// # Examples
///
/// ```
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// let guide = Waveguide::paper_default()?;
/// assert!((guide.width() - 50.0e-9).abs() < 1e-15);
/// assert!(guide.fmr_frequency()? < 10.0e9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waveguide {
    material: Material,
    width: f64,
    thickness: f64,
}

impl Waveguide {
    /// Creates a waveguide from a material and cross-section dimensions
    /// (metres).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for non-positive or
    /// non-finite dimensions.
    pub fn new(material: Material, width: f64, thickness: f64) -> Result<Self, PhysicsError> {
        for (name, v) in [("width", width), ("thickness", thickness)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(PhysicsError::InvalidGeometry {
                    parameter: name,
                    value: v,
                });
            }
        }
        Ok(Waveguide {
            material,
            width,
            thickness,
        })
    }

    /// The paper's waveguide: FeCoB, 50 nm wide, 1 nm thick.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature keeps construction uniform.
    pub fn paper_default() -> Result<Self, PhysicsError> {
        Waveguide::new(Material::fe_co_b(), 50.0 * NM, 1.0 * NM)
    }

    /// The material of the waveguide.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Width of the cross-section in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Thickness of the cross-section in metres.
    pub fn thickness(&self) -> f64 {
        self.thickness
    }

    /// Returns a copy with a different width (the paper's §V width
    /// scaling study).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for an invalid width.
    pub fn with_width(&self, width: f64) -> Result<Self, PhysicsError> {
        Waveguide::new(self.material, width, self.thickness)
    }

    /// Returns a copy with a different material.
    pub fn with_material(&self, material: Material) -> Self {
        Waveguide { material, ..*self }
    }

    /// Out-of-plane demagnetizing factor of the bar cross-section.
    ///
    /// # Errors
    ///
    /// Propagates [`PhysicsError::InvalidGeometry`] (cannot occur for a
    /// constructed waveguide).
    pub fn demag_factor(&self) -> Result<f64, PhysicsError> {
        demag::waveguide_demag_factor(self.width, self.thickness)
    }

    /// Static internal field `H_i = H_ani − N_z·Ms` in A/m.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::NotPerpendicular`] when the anisotropy
    /// does not overcome shape anisotropy.
    pub fn internal_field(&self) -> Result<f64, PhysicsError> {
        let nz = self.demag_factor()?;
        let h = self.material.anisotropy_field() - nz * self.material.saturation_magnetization();
        if h <= 0.0 {
            return Err(PhysicsError::NotPerpendicular { internal_field: h });
        }
        Ok(h)
    }

    /// Ferromagnetic resonance frequency of the waveguide in Hz.
    ///
    /// Wider guides have larger `N_z`, smaller internal field and hence
    /// lower FMR — the paper's width-scaling observation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Waveguide::internal_field`].
    pub fn fmr_frequency(&self) -> Result<f64, PhysicsError> {
        Ok(self.exchange_dispersion()?.fmr_frequency())
    }

    /// The exchange (local-demag) dispersion of this waveguide — the
    /// branch realised by the `magnon-micromag` simulator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Waveguide::internal_field`].
    pub fn exchange_dispersion(&self) -> Result<ExchangeDispersion, PhysicsError> {
        ExchangeDispersion::new(&self.material, self.demag_factor()?)
    }

    /// The Kalinikos–Slavin forward-volume dispersion of this waveguide
    /// ("paper mode": closest to the OOMMF dispersion).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Waveguide::internal_field`].
    pub fn kalinikos_slavin_dispersion(&self) -> Result<KalinikosSlavinFvmsw, PhysicsError> {
        KalinikosSlavinFvmsw::new(&self.material, self.demag_factor()?, self.thickness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::GHZ;

    #[test]
    fn paper_default_dimensions() {
        let g = Waveguide::paper_default().unwrap();
        assert_eq!(g.width(), 50.0 * NM);
        assert_eq!(g.thickness(), 1.0 * NM);
        assert_eq!(*g.material(), Material::fe_co_b());
    }

    #[test]
    fn geometry_validation() {
        let m = Material::fe_co_b();
        assert!(Waveguide::new(m, 0.0, 1e-9).is_err());
        assert!(Waveguide::new(m, 50e-9, -1e-9).is_err());
        assert!(Waveguide::new(m, f64::INFINITY, 1e-9).is_err());
    }

    #[test]
    fn internal_field_positive_for_paper_guide() {
        let g = Waveguide::paper_default().unwrap();
        let h = g.internal_field().unwrap();
        // Between the Nz=1 film value (1.03e5) and the narrow-bar value.
        assert!(h > 1.0e5 && h < 3.0e5, "H_i = {h}");
    }

    #[test]
    fn fmr_decreases_with_width() {
        // The paper's §V observation.
        let g = Waveguide::paper_default().unwrap();
        let mut last = f64::INFINITY;
        for w in [50.0, 100.0, 200.0, 350.0, 500.0] {
            let f = g.with_width(w * NM).unwrap().fmr_frequency().unwrap();
            assert!(f < last, "FMR not decreasing at width {w} nm");
            last = f;
        }
    }

    #[test]
    fn fmr_below_first_channel_for_all_paper_widths() {
        // All studied widths keep FMR below the 10 GHz first channel.
        let g = Waveguide::paper_default().unwrap();
        for w in [50.0, 100.0, 250.0, 500.0] {
            let f = g.with_width(w * NM).unwrap().fmr_frequency().unwrap();
            assert!(f < 10.0 * GHZ);
            assert!(f > 1.0 * GHZ);
        }
    }

    #[test]
    fn dispersions_share_fmr() {
        let g = Waveguide::paper_default().unwrap();
        let fe = g.exchange_dispersion().unwrap().fmr_frequency();
        let fk = g.kalinikos_slavin_dispersion().unwrap().fmr_frequency();
        assert!((fe - fk).abs() < 1e3);
    }

    #[test]
    fn in_plane_material_rejected() {
        let g = Waveguide::paper_default()
            .unwrap()
            .with_material(Material::permalloy());
        assert!(matches!(
            g.internal_field(),
            Err(PhysicsError::NotPerpendicular { .. })
        ));
    }

    #[test]
    fn with_width_preserves_material() {
        let g = Waveguide::paper_default()
            .unwrap()
            .with_width(100.0 * NM)
            .unwrap();
        assert_eq!(*g.material(), Material::fe_co_b());
        assert_eq!(g.thickness(), 1.0 * NM);
    }
}
