//! Fixed-width data words.
//!
//! A [`Word`] is one operand of a data-parallel gate: bit `i` of the
//! word rides on frequency channel `i`. The paper's byte-wide gate
//! processes [`Word`]s of width 8.

use crate::error::GateError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An `n`-bit data word (`1 ≤ n ≤ 64`).
///
/// # Examples
///
/// ```
/// use magnon_core::word::Word;
///
/// # fn main() -> Result<(), magnon_core::GateError> {
/// let w = Word::from_u8(0b1010_0001);
/// assert_eq!(w.width(), 8);
/// assert!(w.bit(0)?);
/// assert!(!w.bit(1)?);
/// assert!(w.bit(7)?);
/// assert_eq!(w.count_ones(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Word {
    bits: u64,
    width: usize,
}

impl Word {
    /// Creates an all-zeros word of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for widths outside
    /// `1..=64`.
    pub fn zeros(width: usize) -> Result<Self, GateError> {
        if width == 0 || width > 64 {
            return Err(GateError::InvalidParameter {
                parameter: "word_width",
                value: width as f64,
            });
        }
        Ok(Word { bits: 0, width })
    }

    /// Creates an all-ones word of `width` bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Word::zeros`].
    pub fn ones(width: usize) -> Result<Self, GateError> {
        let w = Word::zeros(width)?;
        Ok(Word {
            bits: mask(width),
            ..w
        })
    }

    /// Creates a word from raw bits, truncating to `width`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Word::zeros`].
    pub fn from_bits(bits: u64, width: usize) -> Result<Self, GateError> {
        let w = Word::zeros(width)?;
        Ok(Word {
            bits: bits & mask(width),
            ..w
        })
    }

    /// An 8-bit word from a byte — the paper's byte-wide operand.
    pub fn from_u8(byte: u8) -> Self {
        Word {
            bits: byte as u64,
            width: 8,
        }
    }

    /// The word as a byte (low 8 bits).
    pub fn to_u8(self) -> u8 {
        (self.bits & 0xFF) as u8
    }

    /// The raw bits.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Width in bits.
    pub fn width(self) -> usize {
        self.width
    }

    /// Reads bit `index` (0 = least significant = first channel).
    ///
    /// # Errors
    ///
    /// Returns [`GateError::BitIndexOutOfRange`] for `index >= width`.
    pub fn bit(self, index: usize) -> Result<bool, GateError> {
        if index >= self.width {
            return Err(GateError::BitIndexOutOfRange {
                index,
                width: self.width,
            });
        }
        Ok((self.bits >> index) & 1 == 1)
    }

    /// Returns a copy with bit `index` set to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::BitIndexOutOfRange`] for `index >= width`.
    pub fn with_bit(self, index: usize, value: bool) -> Result<Self, GateError> {
        if index >= self.width {
            return Err(GateError::BitIndexOutOfRange {
                index,
                width: self.width,
            });
        }
        let bits = if value {
            self.bits | (1 << index)
        } else {
            self.bits & !(1 << index)
        };
        Ok(Word { bits, ..self })
    }

    /// Number of set bits.
    pub fn count_ones(self) -> u32 {
        self.bits.count_ones()
    }

    /// Bitwise NOT within the word width (also available through
    /// [`std::ops::Not`]).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Word {
            bits: !self.bits & mask(self.width),
            ..self
        }
    }

    /// Iterates over the bits from index 0 upward.
    pub fn iter_bits(self) -> impl Iterator<Item = bool> {
        (0..self.width).map(move |i| (self.bits >> i) & 1 == 1)
    }
}

impl std::ops::Not for Word {
    type Output = Word;

    fn not(self) -> Word {
        Word::not(self)
    }
}

impl fmt::Display for Word {
    /// Formats the word as binary, most significant bit first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        Ok(())
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_validation() {
        assert!(Word::zeros(0).is_err());
        assert!(Word::zeros(65).is_err());
        assert!(Word::zeros(1).is_ok());
        assert!(Word::zeros(64).is_ok());
    }

    #[test]
    fn construction_and_truncation() {
        let w = Word::from_bits(0b1_1111, 4).unwrap();
        assert_eq!(w.bits(), 0b1111);
        assert_eq!(Word::ones(3).unwrap().bits(), 0b111);
        assert_eq!(Word::ones(64).unwrap().bits(), u64::MAX);
    }

    #[test]
    fn byte_roundtrip() {
        for b in [0u8, 1, 0x55, 0xAA, 0xFF] {
            assert_eq!(Word::from_u8(b).to_u8(), b);
            assert_eq!(Word::from_u8(b).width(), 8);
        }
    }

    #[test]
    fn bit_access() {
        let w = Word::from_u8(0b0100_0010);
        assert!(!w.bit(0).unwrap());
        assert!(w.bit(1).unwrap());
        assert!(w.bit(6).unwrap());
        assert!(w.bit(8).is_err());
    }

    #[test]
    fn with_bit_sets_and_clears() {
        let w = Word::zeros(8).unwrap();
        let w = w.with_bit(3, true).unwrap();
        assert_eq!(w.bits(), 0b1000);
        let w = w.with_bit(3, false).unwrap();
        assert_eq!(w.bits(), 0);
        assert!(w.with_bit(8, true).is_err());
    }

    #[test]
    fn not_respects_width() {
        let w = Word::from_bits(0b0101, 4).unwrap();
        assert_eq!(w.not().bits(), 0b1010);
        assert_eq!(w.not().not(), w);
        // The operator form goes through the same masked complement.
        assert_eq!(!w, w.not());
    }

    #[test]
    fn count_and_iter() {
        let w = Word::from_u8(0b1011_0001);
        assert_eq!(w.count_ones(), 4);
        let bits: Vec<bool> = w.iter_bits().collect();
        assert_eq!(bits.len(), 8);
        assert!(bits[0] && !bits[1] && bits[4] && bits[7]);
    }

    #[test]
    fn display_msb_first() {
        assert_eq!(Word::from_u8(0b1010_0001).to_string(), "10100001");
        assert_eq!(Word::from_bits(0b101, 3).unwrap().to_string(), "101");
    }

    #[test]
    fn sixty_four_bit_words() {
        let w = Word::from_bits(u64::MAX, 64).unwrap();
        assert_eq!(w.count_ones(), 64);
        assert!(w.bit(63).unwrap());
        assert_eq!(w.not().count_ones(), 0);
    }
}
