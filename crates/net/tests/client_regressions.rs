//! Client-side regression tests against a scripted wire peer (a raw
//! `TcpListener` speaking the frame protocol), pinning the two PR 4
//! net-client bugs:
//!
//! 1. backoff used to be honored by `std::thread::sleep` on the shared
//!    read path, so a retry-after flood against ONE tag stalled the
//!    drain of every other tag's completions (and silently ate `wait`
//!    deadlines);
//! 2. a `wait` that timed out left its tag in `inflight` with no
//!    documented way to redeem it — timed-out tags must stay
//!    re-waitable, mirroring `magnon_serve::Ticket::wait_timeout`.

use magnon_core::word::Word;
use magnon_net::protocol::{write_frame, FrameReader, GateInfo, NET_VERSION};
use magnon_net::{Frame, NetClient, NetClientConfig, NetError};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Accepts one connection and performs the hello handshake, returning
/// the stream (plus its persistent resumable reader — pipelined client
/// frames share TCP segments, so a throwaway `read_frame` would drop
/// buffered bytes) with a one-gate directory (3-input majority, width
/// 8, waveguide 0, lane `lane`) already advertised.
fn scripted_accept(listener: &TcpListener, lane: u16) -> (TcpStream, FrameReader) {
    let (mut stream, _) = listener.accept().expect("accept");
    let mut frames = FrameReader::new();
    match frames.read_frame(&mut stream).expect("hello") {
        Frame::Hello { version } => assert_eq!(version, NET_VERSION),
        other => panic!("expected a hello, got {other:?}"),
    }
    write_frame(
        &mut stream,
        &Frame::HelloAck {
            version: NET_VERSION,
            gates: vec![GateInfo {
                name: "maj3".into(),
                input_count: 3,
                word_width: 8,
                waveguide: 0,
                lane,
            }],
        },
    )
    .expect("hello-ack");
    stream.flush().expect("flush");
    (stream, frames)
}

fn operands() -> Vec<Word> {
    vec![
        Word::from_u8(0x0F),
        Word::from_u8(0x33),
        Word::from_u8(0x55),
    ]
}

#[test]
fn retry_after_flood_on_one_tag_does_not_stall_another_tags_completion() {
    const FLOOD: usize = 30;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, mut frames) = scripted_accept(&listener, 0);
        // Two pipelined submits arrive together at the first flush.
        let tag_a = match frames.read_frame(&mut stream).expect("submit a") {
            Frame::Submit { tag, .. } => tag,
            other => panic!("expected a submit, got {other:?}"),
        };
        let tag_b = match frames.read_frame(&mut stream).expect("submit b") {
            Frame::Submit { tag, .. } => tag,
            other => panic!("expected a submit, got {other:?}"),
        };
        // Flood tag A with backpressure (10 ms hints), THEN answer B.
        // The old client slept out every hint on the read path before
        // it reached B's response — ~300 ms of self-inflicted stall.
        for _ in 0..FLOOD {
            write_frame(
                &mut stream,
                &Frame::RetryAfter {
                    tag: tag_a,
                    shard: 0,
                    hint: Duration::from_millis(10),
                },
            )
            .unwrap();
        }
        write_frame(
            &mut stream,
            &Frame::Response {
                tag: tag_b,
                word: Word::from_u8(0x17),
            },
        )
        .unwrap();
        stream.flush().unwrap();
        // Service the retries: the first re-submit of A gets answered,
        // later duplicates (one per flood frame) drain until EOF.
        match frames.read_frame(&mut stream).expect("resubmit of a") {
            Frame::Submit { tag, .. } => assert_eq!(tag, tag_a),
            other => panic!("expected the re-submit, got {other:?}"),
        }
        write_frame(
            &mut stream,
            &Frame::Response {
                tag: tag_a,
                word: Word::from_u8(0x17),
            },
        )
        .unwrap();
        stream.flush().unwrap();
        while frames.read_frame(&mut stream).is_ok() {}
    });

    let mut client = NetClient::connect_with(
        addr,
        NetClientConfig {
            wait_timeout: Duration::from_secs(10),
            ..NetClientConfig::default()
        },
    )
    .unwrap();
    let gate = client.gate("maj3").unwrap();
    let tag_a = client.submit(gate, &operands()).unwrap();
    let tag_b = client.submit(gate, &operands()).unwrap();

    // B's completion sits right behind the flood: it must arrive
    // without waiting out A's backoffs (the old sleeping client took
    // FLOOD × 10 ms ≈ 300 ms here).
    let start = Instant::now();
    assert_eq!(client.wait(tag_b).unwrap().to_u8(), 0x17);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "another tag's backoff stalled this completion for {elapsed:?}"
    );
    assert_eq!(client.stats().retries, FLOOD as u64);

    // A's queued retries mature (≤ 10 ms each) and redeem normally.
    assert_eq!(client.wait(tag_a).unwrap().to_u8(), 0x17);
    drop(client);
    server.join().unwrap();
}

#[test]
fn timed_out_tags_stay_redeemable() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let server = std::thread::spawn(move || {
        let (mut stream, mut frames) = scripted_accept(&listener, 0);
        let tag = match frames.read_frame(&mut stream).expect("submit") {
            Frame::Submit { tag, .. } => tag,
            other => panic!("expected a submit, got {other:?}"),
        };
        // Hold the completion until the client has timed out once.
        release_rx.recv().expect("release signal");
        write_frame(
            &mut stream,
            &Frame::Response {
                tag,
                word: Word::from_u8(0x17),
            },
        )
        .unwrap();
        stream.flush().unwrap();
        while frames.read_frame(&mut stream).is_ok() {}
    });

    let mut client = NetClient::connect(addr).unwrap();
    let gate = client.gate("maj3").unwrap();
    let tag = client.submit(gate, &operands()).unwrap();
    // First wait misses its (short, explicit) deadline…
    assert!(matches!(
        client.wait_deadline(tag, Duration::from_millis(40)),
        Err(NetError::Timeout)
    ));
    // …but the tag is still in flight, not lost: once the server
    // answers, a second wait on the SAME tag redeems it.
    release_tx.send(()).unwrap();
    assert_eq!(client.wait(tag).unwrap().to_u8(), 0x17);
    // A redeemed tag is spent — further waits are a caller error.
    assert!(matches!(client.wait(tag), Err(NetError::BadRequest { .. })));
    drop(client);
    server.join().unwrap();
}

#[test]
fn backpressure_retries_preserve_the_lane_pin() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, mut frames) = scripted_accept(&listener, 2);
        let (tag, lane) = match frames.read_frame(&mut stream).expect("submit") {
            Frame::Submit { tag, lane, .. } => (tag, lane),
            other => panic!("expected a submit, got {other:?}"),
        };
        assert_eq!(lane, Some(2), "the pin must ride the first submit");
        write_frame(
            &mut stream,
            &Frame::RetryAfter {
                tag,
                shard: 0,
                hint: Duration::from_millis(1),
            },
        )
        .unwrap();
        stream.flush().unwrap();
        // The scheduled re-submit must carry the same pin.
        let (retag, relane) = match frames.read_frame(&mut stream).expect("resubmit") {
            Frame::Submit { tag, lane, .. } => (tag, lane),
            other => panic!("expected the re-submit, got {other:?}"),
        };
        assert_eq!((retag, relane), (tag, Some(2)));
        write_frame(
            &mut stream,
            &Frame::Response {
                tag,
                word: Word::from_u8(0x17),
            },
        )
        .unwrap();
        stream.flush().unwrap();
        while frames.read_frame(&mut stream).is_ok() {}
    });

    let mut client = NetClient::connect(addr).unwrap();
    let gate = client.gate("maj3").unwrap();
    assert_eq!(client.gates_on_waveguide(0).count(), 1);
    let tag = client.submit_on_lane(gate, 2, &operands()).unwrap();
    assert_eq!(client.wait(tag).unwrap().to_u8(), 0x17);
    assert_eq!(client.stats().retries, 1);
    drop(client);
    server.join().unwrap();
}
