//! Circuit evaluation through the scheduler.
//!
//! [`ScheduledBank`] is the serving-runtime counterpart of
//! [`magnon_circuits::netlist::GateBank`]: it implements
//! [`GateDispatcher`], so any circuit walk
//! ([`Circuit::evaluate_batch_on`], the adder's `add_many_on`, the
//! ALU's `execute_on`, the parity tree's `evaluate_on`) submits its
//! per-node batches to the shared [`Scheduler`] instead of evaluating
//! inline. Concurrent circuits — and raw [`Scheduler::submit`] traffic
//! — targeting gates on the same waveguide then coalesce into common
//! drain cycles.
//!
//! [`Circuit::evaluate_batch_on`]:
//!     magnon_circuits::netlist::Circuit::evaluate_batch_on

use crate::error::ServeError;
use crate::request::GateId;
use crate::scheduler::Scheduler;
use magnon_circuits::netlist::{DispatchStats, GateDispatcher, GateShape};
use magnon_core::backend::OperandSet;
use magnon_core::gate::GateOutput;
use magnon_core::GateError;

/// A [`GateDispatcher`] routing a circuit's MAJ/XOR batches to a
/// [`Scheduler`].
///
/// Cheap to construct — make one per circuit evaluation (it only holds
/// the scheduler reference, two gate ids and its traffic counters,
/// surfaced through [`GateDispatcher::dispatch_stats`]).
#[derive(Debug, Clone)]
pub struct ScheduledBank<'a> {
    scheduler: &'a Scheduler,
    maj3: GateId,
    xor2: GateId,
    width: usize,
    dispatch_calls: u64,
    sets_dispatched: u64,
}

impl<'a> ScheduledBank<'a> {
    /// Wraps `scheduler`'s `maj3`/`xor2` registrations (typically from
    /// [`crate::SchedulerBuilder::register_circuit_gates`]).
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownGate`] for foreign ids.
    /// * [`ServeError::Gate`] when a slot's gate computes the wrong
    ///   function/operand count, or the two widths disagree.
    pub fn new(scheduler: &'a Scheduler, maj3: GateId, xor2: GateId) -> Result<Self, ServeError> {
        let maj_gate = scheduler.gate(maj3).ok_or(ServeError::UnknownGate {
            index: maj3.index(),
        })?;
        let xor_gate = scheduler.gate(xor2).ok_or(ServeError::UnknownGate {
            index: xor2.index(),
        })?;
        for (gate, shape) in [(maj_gate, GateShape::Maj3), (xor_gate, GateShape::Xor2)] {
            if gate.function() != shape.function() || gate.input_count() != shape.input_count() {
                return Err(ServeError::Gate(GateError::UnsupportedFunction {
                    reason: "scheduled bank slots need a 3-input majority and a 2-input XOR gate",
                }));
            }
        }
        if maj_gate.word_width() != xor_gate.word_width() {
            return Err(ServeError::Gate(GateError::WordWidthMismatch {
                expected: maj_gate.word_width(),
                actual: xor_gate.word_width(),
            }));
        }
        Ok(ScheduledBank {
            scheduler,
            maj3,
            xor2,
            width: maj_gate.word_width(),
            dispatch_calls: 0,
            sets_dispatched: 0,
        })
    }

    /// The scheduler this bank submits to.
    pub fn scheduler(&self) -> &Scheduler {
        self.scheduler
    }
}

impl GateDispatcher for ScheduledBank<'_> {
    fn width(&self) -> usize {
        self.width
    }

    fn dispatch(
        &mut self,
        shape: GateShape,
        batch: &[OperandSet],
    ) -> Result<Vec<GateOutput>, GateError> {
        self.dispatch_calls += 1;
        self.sets_dispatched += batch.len() as u64;
        let id = match shape {
            GateShape::Maj3 => self.maj3,
            GateShape::Xor2 => self.xor2,
        };
        // Submit the whole node batch before waiting, so it coalesces
        // with itself and with unrelated traffic (one payload copy per
        // request — `batch` is borrowed).
        let tickets: Vec<_> = batch
            .iter()
            .map(|set| self.scheduler.submit(id, set.clone()))
            .collect::<Result<_, _>>()
            .map_err(ServeError::into_gate_error)?;
        tickets
            .into_iter()
            .map(|ticket| ticket.wait().map_err(ServeError::into_gate_error))
            .collect()
    }

    fn dispatch_stats(&self) -> DispatchStats {
        DispatchStats {
            dispatch_calls: self.dispatch_calls,
            sets_dispatched: self.sets_dispatched,
        }
    }
}
