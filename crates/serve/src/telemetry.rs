//! Lock-free serving telemetry and the adaptive placement table.
//!
//! Every hot-path touch point is a relaxed atomic: submitters bump a
//! per-lane request counter and read the placement table, workers
//! publish drain sizes, queue depths and their current linger window.
//! Nothing here takes a lock on the request path; the only
//! coordination is a compare-and-swap guard around the (rare,
//! submission-driven) placement review.
//!
//! Three adaptive policies consume the counters (all tunable through
//! [`AdaptiveConfig`], all individually switchable):
//!
//! * **load-aware linger** — each worker shrinks its linger window
//!   toward [`AdaptiveConfig::min_linger`] while drains come back
//!   nearly empty (latency mode) and stretches it toward
//!   [`AdaptiveConfig::max_linger`] while drains fill to the batch cap
//!   (burst mode);
//! * **hot-waveguide rebalancing** — every
//!   [`AdaptiveConfig::rebalance_interval`] submissions, the placement
//!   of waveguides over shards is reviewed: when the busiest shard
//!   carries more than [`AdaptiveConfig::rebalance_ratio`] times the
//!   load of the idlest one, a co-tenant waveguide is moved off the hot
//!   shard, so a hot waveguide ends up with a shard (mostly) to itself;
//! * **cross-waveguide fusion** — consumed by the worker drain loop
//!   (see `scheduler.rs`): when a drain is deeper than
//!   [`AdaptiveConfig::fusion_threshold`], requests for
//!   design-compatible gates on *different* waveguides merge into one
//!   `evaluate_batch` call.
//!
//! [`Scheduler::telemetry`](crate::Scheduler::telemetry) exposes a
//! consistent-enough point-in-time [`TelemetrySnapshot`] for dashboards
//! and tests. Request counters decay (halve) at every placement review,
//! so placement follows *recent* traffic, not all-time totals.
//!
//! # Lanes
//!
//! Since the FDM extension (arXiv:2008.12220's multi-frequency
//! parallelism), the placement/counter unit is one *frequency lane* —
//! a `(`[`WaveguideId`]`, `[`LaneId`]`)` pair. Lanes of one waveguide
//! start co-resident (so their drains coalesce into multi-lane FDM
//! passes) but are independently movable by the rebalancer when load
//! skews; per-lane request and served counters plus per-shard FDM pass
//! counters surface in the snapshot.

use magnon_core::gate::{LaneId, WaveguideId};
use magnon_core::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use magnon_core::sync::time::Duration;

/// Tuning knobs for the three adaptive serving policies.
///
/// [`Default`] enables everything with conservative thresholds;
/// [`AdaptiveConfig::off`] reproduces the static PR 2 runtime (fixed
/// linger, fixed placement, per-gate batches) for baselines and
/// comparisons.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Adapt the linger window to the observed drain sizes.
    pub adaptive_linger: bool,
    /// Floor the linger window shrinks to under light load.
    pub min_linger: Duration,
    /// Cap the linger window stretches to under bursts.
    pub max_linger: Duration,
    /// Move waveguides between shards when load skews.
    pub rebalance: bool,
    /// Submissions between placement reviews (clamped to ≥ 1).
    pub rebalance_interval: u64,
    /// Review trigger: busiest shard load > `ratio` × idlest shard
    /// load.
    pub rebalance_ratio: f64,
    /// Fuse compatible same-design requests across waveguides into one
    /// batch.
    pub fusion: bool,
    /// Minimum drain depth before fusion kicks in (clamped to ≥ 2).
    pub fusion_threshold: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            adaptive_linger: true,
            min_linger: Duration::from_micros(10),
            max_linger: Duration::from_millis(2),
            rebalance: true,
            rebalance_interval: 64,
            rebalance_ratio: 2.0,
            fusion: true,
            fusion_threshold: 16,
        }
    }
}

impl AdaptiveConfig {
    /// Every adaptive policy disabled: fixed linger, static placement,
    /// per-gate batches — the PR 2 behaviour.
    pub fn off() -> Self {
        AdaptiveConfig {
            adaptive_linger: false,
            rebalance: false,
            fusion: false,
            ..AdaptiveConfig::default()
        }
    }
}

/// Per-shard counters (all relaxed atomics).
#[derive(Debug, Default)]
struct ShardCounters {
    /// Requests enqueued but not yet drained. The increment leads the
    /// `send` (and rolls back on a failed one): were it to land after,
    /// a worker could drain the job and decrement before the increment,
    /// dipping the gauge negative — the model checker's
    /// gauge-never-negative invariant caught exactly that. Kept signed
    /// so `queued_raw` can surface a regression instead of wrapping;
    /// the public snapshot clamps at 0.
    queued: AtomicI64,
    /// Requests the worker has pulled off the queue, ever.
    drained: AtomicU64,
    /// Drain cycles completed.
    drain_cycles: AtomicU64,
    /// Drain cycles that filled to the batch cap (linger utilization:
    /// `full_drains / drain_cycles` ≈ how often the window saturates).
    full_drains: AtomicU64,
    /// Multi-lane FDM passes served: drains where two or more frequency
    /// lanes of one waveguide coalesced into a single stacked
    /// `evaluate_batch`.
    fdm_passes: AtomicU64,
    /// Lanes coalesced across those FDM passes (`fdm_lanes /
    /// fdm_passes` ≈ lanes per pass).
    fdm_lanes: AtomicU64,
    /// The worker's current adaptive linger window, in nanoseconds.
    linger_ns: AtomicU64,
    /// LUT lookups answered from memory, summed over the shard's live
    /// cached sessions (a gauge the worker republishes after each
    /// drain).
    lut_hits: AtomicU64,
    /// LUT entries computed on demand by those sessions.
    lut_misses: AtomicU64,
    /// Channel rows in the dense bit-sliced form across those sessions.
    lut_dense_rows: AtomicU64,
}

/// Per-lane routing state: where traffic for one `(waveguide, lane)`
/// channel goes and how much of it there recently was.
#[derive(Debug)]
struct LaneState {
    id: WaveguideId,
    lane: LaneId,
    /// The shard currently serving this lane (the placement table).
    shard: AtomicUsize,
    /// Decayed request counter (halved at every placement review).
    requests: AtomicU64,
    /// Requests successfully answered on this lane, ever (success
    /// paths only, not decayed).
    served: AtomicU64,
}

/// Lock-free telemetry shared between client handles and workers.
#[derive(Debug)]
pub(crate) struct Telemetry {
    shards: Vec<ShardCounters>,
    /// Indexed by lane *slot* (registration order of first appearance
    /// of each `(waveguide, lane)` pair), not raw id.
    lanes: Vec<LaneState>,
    submits: AtomicU64,
    rebalances: AtomicU64,
    /// CAS guard: one placement review at a time, submitters never
    /// block on it.
    reviewing: AtomicBool,
}

impl Telemetry {
    /// `placements[slot]` gives each lane's waveguide id, lane id and
    /// initial shard. Lanes of one waveguide should start on the same
    /// shard so their drains FDM-coalesce (the builder places by
    /// waveguide id alone).
    pub fn new(workers: usize, placements: Vec<(WaveguideId, LaneId, usize)>) -> Self {
        Telemetry {
            shards: (0..workers).map(|_| ShardCounters::default()).collect(),
            lanes: placements
                .into_iter()
                .map(|(id, lane, shard)| LaneState {
                    id,
                    lane,
                    shard: AtomicUsize::new(shard),
                    requests: AtomicU64::new(0),
                    served: AtomicU64::new(0),
                })
                .collect(),
            submits: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            reviewing: AtomicBool::new(false),
        }
    }

    /// The shard currently serving lane `slot`. An unregistered slot
    /// routes to shard 0 — the submit path must stay panic-free, and
    /// the worker's drain assert owns corruption.
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        // ordering: Acquire — pairs with the Release store in
        // `review_placement` so a submitter that observes a move also
        // observes the counter decay that preceded it.
        self.lanes
            .get(slot)
            .map_or(0, |lane| lane.shard.load(Ordering::Acquire))
    }

    /// Routes one submission: bumps the lane's request counter,
    /// possibly reviews placement, and returns the target shard. The
    /// queue gauge is NOT touched here — routing can be speculative
    /// (`try_submit` may still refuse); call
    /// [`Telemetry::note_enqueued`] immediately *before* the send and
    /// [`Telemetry::note_send_failed`] if the send then fails.
    pub fn route_submit(&self, slot: usize, policy: &AdaptiveConfig) -> usize {
        // An unregistered slot routes to shard 0 instead of panicking
        // on the caller's thread (see `shard_of_slot`).
        let Some(lane) = self.lanes.get(slot) else {
            return 0;
        };
        // ordering: Relaxed — approximate load counters; the rebalancer
        // reads them as a heuristic and tolerates stragglers, nothing
        // synchronizes through them.
        lane.requests.fetch_add(1, Ordering::Relaxed);
        let n = self.submits.fetch_add(1, Ordering::Relaxed) + 1;
        if policy.rebalance && n.is_multiple_of(policy.rebalance_interval.max(1)) {
            self.review_placement(policy);
        }
        // ordering: Acquire — pairs with the Release placement store in
        // `review_placement` (see `shard_of_slot`).
        lane.shard.load(Ordering::Acquire)
    }

    /// Accounts one request bound for `shard`'s queue. Call *before*
    /// the send (and [`Telemetry::note_send_failed`] if the send then
    /// fails): counting after the send races the worker's drain
    /// decrement and can take the gauge negative.
    pub fn note_enqueued(&self, shard: usize) {
        // ordering: Relaxed — advisory depth gauge; the queue send
        // itself is the synchronizing handoff, the gauge only needs the
        // running sum to be exact, not ordered against the payload.
        // (`get`, not an index: the submit path is proven panic-free,
        // and an out-of-range shard has no gauge to bump.)
        if let Some(counters) = self.shards.get(shard) {
            counters.queued.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rolls back [`Telemetry::note_enqueued`] for a send that did not
    /// land (queue full on `try_send`, or the runtime shut down).
    pub fn note_send_failed(&self, shard: usize) {
        // ordering: Relaxed — rollback of the advisory gauge bump; same
        // reasoning as `note_enqueued`.
        if let Some(counters) = self.shards.get(shard) {
            counters.queued.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The raw, unclamped queue gauge — model-check invariants assert
    /// on this (never negative once drains settle, zero at shutdown),
    /// where the public snapshot would clamp the evidence away.
    #[cfg(mcheck)]
    #[doc(hidden)]
    pub fn queued_raw(&self, shard: usize) -> i64 {
        // ordering: Relaxed — model-check probe; the serialized
        // scheduler makes every interleaving sequentially consistent
        // anyway.
        self.shards[shard].queued.load(Ordering::Relaxed)
    }

    /// Accounts one worker drain of `requests` jobs.
    pub fn record_drain(&self, shard: usize, requests: u64, hit_cap: bool) {
        // `get`, not an index: the drain path is proven panic-free, and
        // a worker always reports its own (registered) shard anyway.
        let Some(counters) = self.shards.get(shard) else {
            return;
        };
        // ordering: Relaxed — monotonic stat counters plus the advisory
        // queue gauge; the channel recv that delivered the jobs is the
        // synchronizing edge, the counters only feed dashboards.
        counters
            .queued
            .fetch_sub(requests as i64, Ordering::Relaxed);
        counters.drained.fetch_add(requests, Ordering::Relaxed);
        counters.drain_cycles.fetch_add(1, Ordering::Relaxed);
        if hit_cap {
            // ordering: Relaxed — monotonic stat counter.
            counters.full_drains.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes a worker's current adaptive linger window.
    pub fn publish_linger(&self, shard: usize, linger: Duration) {
        // ordering: Relaxed — single-writer gauge (only the shard's own
        // worker stores it); readers want a recent value, not a fence.
        if let Some(counters) = self.shards.get(shard) {
            counters.linger_ns.store(
                linger.as_nanos().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Publishes a shard's LUT effectiveness gauge: the sums of
    /// hit/miss/dense-row counters over the shard's live cached
    /// sessions. Stored, not accumulated — each session's counters are
    /// already cumulative, and sessions stay resident on their shard
    /// once split, so the summed gauge never goes backwards. (A
    /// rebalanced gate splits a *fresh-countered* session on its new
    /// shard while the old shard keeps its session and its counts; see
    /// `LutStats` in `magnon-core` for the split semantics.)
    pub fn publish_lut(&self, shard: usize, hits: u64, misses: u64, dense_rows: u64) {
        // `get`, not an index: workers republish on the drain path,
        // which is proven panic-free.
        let Some(counters) = self.shards.get(shard) else {
            return;
        };
        // ordering: Relaxed — single-writer gauges republished by the
        // shard's own worker after each drain; no reader synchronizes
        // through them.
        counters.lut_hits.store(hits, Ordering::Relaxed);
        counters.lut_misses.store(misses, Ordering::Relaxed);
        counters.lut_dense_rows.store(dense_rows, Ordering::Relaxed);
    }

    /// Accounts one multi-lane FDM pass on `shard` that coalesced
    /// `lanes` frequency lanes into a single stacked batch.
    pub fn record_fdm_pass(&self, shard: usize, lanes: u64) {
        // ordering: Relaxed — monotonic stat counters; dashboards only.
        if let Some(counters) = self.shards.get(shard) {
            counters.fdm_passes.fetch_add(1, Ordering::Relaxed);
            counters.fdm_lanes.fetch_add(lanes, Ordering::Relaxed);
        }
    }

    /// Accounts `requests` successfully answered on lane `slot`
    /// (workers call this on success paths only, so the per-lane
    /// `served` counters sum to the scheduler's `completed` total).
    pub fn record_lane_served(&self, slot: usize, requests: u64) {
        // ordering: Relaxed — monotonic stat counter; the reply channel
        // orders the result delivery.
        if let Some(lane) = self.lanes.get(slot) {
            lane.served.fetch_add(requests, Ordering::Relaxed);
        }
    }

    /// Reviews the placement table: when shard load (sum of resident
    /// lanes' recent requests) is skewed past the policy ratio, moves
    /// the co-tenant lane that best narrows the gap from the hottest
    /// shard to the idlest. A lane that *is* the whole hot load stays
    /// put — one lane cannot be split across shards without breaking
    /// same-shard coalescing. (Moving a lane off its waveguide's shard
    /// trades FDM coalescing for load balance; the mover returns only
    /// when traffic re-skews the other way.)
    fn review_placement(&self, policy: &AdaptiveConfig) {
        // ordering: AcqRel — the CAS-style guard both acquires the
        // previous reviewer's writes and publishes ours to the next
        // one; losers just return, they never block.
        if self.reviewing.swap(true, Ordering::AcqRel) {
            return; // someone else is reviewing
        }
        if self.shards.len() > 1 && self.lanes.len() > 1 {
            let mut loads = vec![0u64; self.shards.len()];
            let residents: Vec<(usize, u64)> = self
                .lanes
                .iter()
                .map(|wg| {
                    // ordering: Acquire pairs with the Release
                    // placement store below; Relaxed for the load
                    // counter — the review is a heuristic over an
                    // inherently racy figure.
                    let shard = wg.shard.load(Ordering::Acquire);
                    let recent = wg.requests.load(Ordering::Relaxed);
                    // `get`, not an index: the review runs on the
                    // submit path, which is proven panic-free; a
                    // placement pointing past the shard table simply
                    // does not participate in the load tally.
                    if let Some(load) = loads.get_mut(shard) {
                        *load += recent;
                    }
                    (shard, recent)
                })
                .collect();
            let hottest = loads.iter().copied().enumerate().max_by_key(|&(_, l)| l);
            let coldest = loads.iter().copied().enumerate().min_by_key(|&(_, l)| l);
            let (Some((hot, hot_load)), Some((cold, cold_load))) = (hottest, coldest) else {
                // Unreachable (the topology guard above ensures at
                // least two shards), but the submit path must not
                // panic over it.
                // ordering: Release — hands the review guard back, as
                // at the normal exit below.
                self.reviewing.store(false, Ordering::Release);
                return;
            };
            if hot != cold && hot_load as f64 > policy.rebalance_ratio * cold_load.max(1) as f64 {
                let gap = hot_load - cold_load;
                // The move changes the gap to |gap - 2w|; pick the
                // resident minimizing it, and only move if that
                // actually narrows the skew.
                let candidate = residents
                    .iter()
                    .enumerate()
                    .filter(|(_, &(shard, w))| shard == hot && w > 0 && w < hot_load)
                    .min_by_key(|(_, &(_, w))| {
                        // Ties go to the lighter mover: the hot
                        // waveguide keeps its warm shard and the
                        // smaller co-tenant migrates.
                        ((gap as i128 - 2 * w as i128).unsigned_abs(), w)
                    })
                    .map(|(slot, &(_, w))| (slot, w));
                if let Some((slot, w)) = candidate {
                    if (gap as i128 - 2 * w as i128).unsigned_abs() < gap as u128 {
                        if let Some(lane) = self.lanes.get(slot) {
                            // ordering: Release publishes the move to
                            // the Acquire loads in `route_submit`;
                            // Relaxed for the monotonic rebalance stat.
                            lane.shard.store(cold, Ordering::Release);
                            self.rebalances.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        // Decay the window (on every review, whatever the topology) so
        // the counters track recent traffic. `fetch_sub` of the halved
        // value, not a load/store pair: submissions landing mid-review
        // must not be erased.
        // ordering: Relaxed for the decay (heuristic counters); the
        // closing Release store pairs with the guard's AcqRel swap so
        // the next reviewer sees the decayed values.
        for wg in &self.lanes {
            let v = wg.requests.load(Ordering::Relaxed);
            wg.requests.fetch_sub(v / 2, Ordering::Relaxed);
        }
        self.reviewing.store(false, Ordering::Release);
    }

    /// A point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            shards: self
                .shards
                .iter()
                .map(|s| ShardTelemetry {
                    // ordering: Relaxed throughout — the snapshot is
                    // advertised as consistent-enough, not atomic; each
                    // gauge is read independently.
                    queued: s.queued.load(Ordering::Relaxed).max(0) as u64,
                    drained: s.drained.load(Ordering::Relaxed),
                    drain_cycles: s.drain_cycles.load(Ordering::Relaxed),
                    full_drains: s.full_drains.load(Ordering::Relaxed),
                    fdm_passes: s.fdm_passes.load(Ordering::Relaxed),
                    fdm_lanes: s.fdm_lanes.load(Ordering::Relaxed),
                    // ordering: Relaxed — same consistent-enough
                    // snapshot contract as the counters above.
                    linger: Duration::from_nanos(s.linger_ns.load(Ordering::Relaxed)),
                    lut_hits: s.lut_hits.load(Ordering::Relaxed),
                    lut_misses: s.lut_misses.load(Ordering::Relaxed),
                    lut_dense_rows: s.lut_dense_rows.load(Ordering::Relaxed),
                })
                .collect(),
            lanes: self
                .lanes
                .iter()
                .map(|wg| LaneTelemetry {
                    id: wg.id,
                    lane: wg.lane,
                    // ordering: Acquire pairs with the rebalancer's
                    // Release store; Relaxed for the plain counters
                    // (consistent-enough snapshot, see above).
                    shard: wg.shard.load(Ordering::Acquire),
                    recent_requests: wg.requests.load(Ordering::Relaxed),
                    served: wg.served.load(Ordering::Relaxed),
                })
                .collect(),
            // ordering: Relaxed — monotonic stat counter.
            rebalances: self.rebalances.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of the runtime's load counters (see
/// [`crate::Scheduler::telemetry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// One entry per worker shard.
    pub shards: Vec<ShardTelemetry>,
    /// One entry per distinct registered `(waveguide, lane)` channel,
    /// including its *current* shard assignment. Pre-FDM gates all sit
    /// on lane 0, where this is exactly the old per-waveguide view.
    pub lanes: Vec<LaneTelemetry>,
    /// Placement moves performed since the runtime started.
    pub rebalances: u64,
}

impl TelemetrySnapshot {
    /// Largest per-shard `drained` divided by the smallest (∞ when a
    /// shard never drained anything): 1.0 is a perfectly even split.
    pub fn drain_skew(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.drained).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.drained).min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// Fraction of LUT lookups answered from memory across all shards
    /// (1.0 when every lookup hit; `None` before any cached session
    /// reported).
    pub fn lut_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.shards.iter().map(|s| s.lut_hits).sum();
        let misses: u64 = self.shards.iter().map(|s| s.lut_misses).sum();
        if hits + misses == 0 {
            None
        } else {
            Some(hits as f64 / (hits + misses) as f64)
        }
    }
}

/// One shard's counters inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardTelemetry {
    /// Requests sitting in the queue at snapshot time.
    pub queued: u64,
    /// Requests drained since start.
    pub drained: u64,
    /// Drain cycles since start.
    pub drain_cycles: u64,
    /// Drain cycles that filled to `max_batch` (the linger-utilization
    /// numerator).
    pub full_drains: u64,
    /// Multi-lane FDM passes: drains where ≥ 2 frequency lanes of one
    /// waveguide coalesced into a single stacked batch.
    pub fdm_passes: u64,
    /// Lanes coalesced across those passes.
    pub fdm_lanes: u64,
    /// The worker's current linger window (zero until the worker first
    /// publishes, or when adaptive linger is off).
    pub linger: Duration,
    /// LUT lookups answered from memory, summed over the shard's live
    /// cached sessions (republished after every drain). Cumulative
    /// across rebalances: a moved gate splits a fresh-countered session
    /// on its new shard while the old shard keeps its own, so neither
    /// gauge resets nor double-counts.
    pub lut_hits: u64,
    /// LUT entries computed on demand by those sessions.
    pub lut_misses: u64,
    /// Channel rows flattened to the dense bit-sliced form across those
    /// sessions — `n · live cached sessions` once fully warm.
    pub lut_dense_rows: u64,
}

/// One frequency lane's routing state inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneTelemetry {
    /// The waveguide the lane rides on.
    pub id: WaveguideId,
    /// The lane within that waveguide.
    pub lane: LaneId,
    /// The shard currently serving it.
    pub shard: usize,
    /// Requests in the current decay window (halved at every placement
    /// review).
    pub recent_requests: u64,
    /// Requests successfully answered on this lane since start
    /// (successes only, not decayed — sums to `completed` across lanes).
    pub served: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_policy() -> AdaptiveConfig {
        AdaptiveConfig {
            rebalance_interval: 8,
            rebalance_ratio: 1.5,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn route_follows_the_placement_table() {
        let telemetry = Telemetry::new(
            2,
            vec![
                (WaveguideId(0), LaneId(0), 0),
                (WaveguideId(0), LaneId(4), 0),
            ],
        );
        let policy = AdaptiveConfig::off();
        let s0 = telemetry.route_submit(0, &policy);
        let s1 = telemetry.route_submit(1, &policy);
        assert_eq!((s0, s1), (0, 0));
        // Routing alone leaves the gauge untouched; enqueueing bumps it.
        assert_eq!(telemetry.snapshot().shards[0].queued, 0);
        telemetry.note_enqueued(s0);
        telemetry.note_enqueued(s1);
        let snap = telemetry.snapshot();
        assert_eq!(snap.shards[0].queued, 2);
        assert_eq!(snap.lanes[0].recent_requests, 1);
        assert_eq!(snap.rebalances, 0);
    }

    #[test]
    fn gauge_leads_the_send_and_rolls_back_refusals() {
        // Submitters bump the gauge immediately before the send and
        // roll back a refused one, so routing alone never registers as
        // depth and a failed try_send leaves the gauge where it was.
        let telemetry = Telemetry::new(1, vec![(WaveguideId(0), LaneId(0), 0)]);
        let policy = AdaptiveConfig::off();
        for _ in 0..2 {
            let shard = telemetry.route_submit(0, &policy);
            telemetry.note_enqueued(shard);
        }
        let shard = telemetry.route_submit(0, &policy);
        assert_eq!(telemetry.snapshot().shards[0].queued, 2);
        telemetry.note_enqueued(shard); // try_send about to run...
        telemetry.note_send_failed(shard); // ...queue full, rolled back
        assert_eq!(telemetry.snapshot().shards[0].queued, 2);
        telemetry.record_drain(0, 2, false);
        assert_eq!(telemetry.snapshot().shards[0].queued, 0);
    }

    #[test]
    fn gauge_clamps_transient_negatives() {
        // The scheduler's increment-leads-send discipline keeps the
        // raw gauge non-negative; the snapshot still clamps so a
        // regression shows up as a wrong count, never a wrapped one
        // (queued_raw carries the signed evidence for the checker).
        let telemetry = Telemetry::new(1, vec![(WaveguideId(0), LaneId(0), 0)]);
        telemetry.record_drain(0, 3, false);
        assert_eq!(telemetry.snapshot().shards[0].queued, 0);
        for _ in 0..3 {
            telemetry.note_enqueued(0);
        }
        // The running sum stays exact once the increments land.
        assert_eq!(telemetry.snapshot().shards[0].queued, 0);
        telemetry.note_enqueued(0);
        assert_eq!(telemetry.snapshot().shards[0].queued, 1);
    }

    #[test]
    fn skewed_load_moves_the_cotenant_off_the_hot_shard() {
        // Both waveguides start on shard 0; waveguide 0 is hot.
        let telemetry = Telemetry::new(
            2,
            vec![
                (WaveguideId(0), LaneId(0), 0),
                (WaveguideId(0), LaneId(4), 0),
            ],
        );
        let policy = hot_policy();
        for i in 0..64u64 {
            let slot = usize::from(i % 8 == 7); // 7/8 of traffic on slot 0
            telemetry.route_submit(slot, &policy);
        }
        let snap = telemetry.snapshot();
        assert!(snap.rebalances >= 1, "skew must trigger a move: {snap:?}");
        assert_eq!(snap.lanes[0].shard, 0, "the hot waveguide stays");
        assert_eq!(snap.lanes[1].shard, 1, "the co-tenant moves");
    }

    #[test]
    fn a_lone_hot_waveguide_stays_put() {
        let telemetry = Telemetry::new(
            2,
            vec![
                (WaveguideId(0), LaneId(0), 0),
                (WaveguideId(1), LaneId(0), 1),
            ],
        );
        let policy = hot_policy();
        for _ in 0..64 {
            telemetry.route_submit(0, &policy); // all load on slot 0, alone on shard 0
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.rebalances, 0, "nothing useful to move: {snap:?}");
        assert_eq!(snap.lanes[0].shard, 0);
    }

    #[test]
    fn drain_accounting_balances_the_queue_gauge() {
        let telemetry = Telemetry::new(1, vec![(WaveguideId(0), LaneId(0), 0)]);
        let policy = AdaptiveConfig::off();
        for _ in 0..5 {
            let shard = telemetry.route_submit(0, &policy);
            telemetry.note_enqueued(shard);
        }
        telemetry.record_drain(0, 5, true);
        telemetry.publish_linger(0, Duration::from_micros(40));
        let snap = telemetry.snapshot();
        assert_eq!(snap.shards[0].queued, 0);
        assert_eq!(snap.shards[0].drained, 5);
        assert_eq!(snap.shards[0].drain_cycles, 1);
        assert_eq!(snap.shards[0].full_drains, 1);
        assert_eq!(snap.shards[0].linger, Duration::from_micros(40));
        assert_eq!(snap.drain_skew(), 1.0);
    }

    #[test]
    fn request_counters_decay_even_with_one_shard() {
        let telemetry = Telemetry::new(1, vec![(WaveguideId(0), LaneId(0), 0)]);
        let policy = AdaptiveConfig {
            rebalance: true,
            rebalance_interval: 8,
            ..AdaptiveConfig::default()
        };
        for _ in 0..16 {
            telemetry.route_submit(0, &policy);
        }
        let snap = telemetry.snapshot();
        assert!(
            snap.lanes[0].recent_requests < 16,
            "reviews must decay the window regardless of topology: {snap:?}"
        );
        assert_eq!(snap.rebalances, 0);
    }

    #[test]
    fn fdm_passes_and_lane_served_counters_surface_in_the_snapshot() {
        // Two lanes of waveguide 0 co-resident on shard 0: a multi-lane
        // pass serving 3 + 2 requests across both lanes.
        let telemetry = Telemetry::new(
            1,
            vec![
                (WaveguideId(0), LaneId(0), 0),
                (WaveguideId(0), LaneId(1), 0),
            ],
        );
        telemetry.record_fdm_pass(0, 2);
        telemetry.record_lane_served(0, 3);
        telemetry.record_lane_served(1, 2);
        let snap = telemetry.snapshot();
        assert_eq!(snap.shards[0].fdm_passes, 1);
        assert_eq!(snap.shards[0].fdm_lanes, 2);
        assert_eq!(snap.lanes[0].lane, LaneId(0));
        assert_eq!(snap.lanes[1].lane, LaneId(1));
        assert_eq!(snap.lanes[0].served, 3);
        assert_eq!(snap.lanes[1].served, 2);
        assert_eq!(snap.lanes[0].id, snap.lanes[1].id, "one waveguide");
    }

    #[test]
    fn lut_gauges_are_republished_not_accumulated() {
        let telemetry = Telemetry::new(2, vec![(WaveguideId(0), LaneId(0), 0)]);
        assert_eq!(telemetry.snapshot().lut_hit_rate(), None);
        telemetry.publish_lut(0, 96, 32, 8);
        telemetry.publish_lut(0, 224, 32, 8); // next drain republishes the new sums
        telemetry.publish_lut(1, 64, 0, 8);
        let snap = telemetry.snapshot();
        assert_eq!(snap.shards[0].lut_hits, 224);
        assert_eq!(snap.shards[0].lut_misses, 32);
        assert_eq!(snap.shards[0].lut_dense_rows, 8);
        assert_eq!(snap.shards[1].lut_hits, 64);
        assert_eq!(snap.lut_hit_rate(), Some(288.0 / 320.0));
    }

    #[test]
    fn refused_submissions_never_touch_the_gauge() {
        // try_submit routing a request to a full queue simply never
        // calls note_enqueued — no bump to undo.
        let telemetry = Telemetry::new(1, vec![(WaveguideId(0), LaneId(0), 0)]);
        let _shard = telemetry.route_submit(0, &AdaptiveConfig::off());
        assert_eq!(telemetry.snapshot().shards[0].queued, 0);
    }
}
