//! The sharded, waveguide-aware, load-adaptive scheduler.
//!
//! # Architecture
//!
//! ```text
//!  clients ── submit(GateId, OperandSet) ──► Ticket
//!      │
//!      ▼  route by the gate's (WaveguideId, LaneId) through the
//!      │  adaptive placement table (lanes of one waveguide start
//!      │  co-resident; hot-shard co-tenants get moved)
//!  ┌───────────────┐   ┌───────────────┐
//!  │ shard 0 queue │   │ shard 1 queue │   … bounded MPSC
//!  └──────┬────────┘   └──────┬────────┘
//!         ▼                   ▼
//!   worker thread        worker thread     each lazily owns its OWN
//!   drain → group        drain → group     backend instance per gate
//!   by gate (or by       by gate (or by    (split_session from a
//!   design, fused) →     design, fused) →  shared template)
//!   stack lanes of a     stack lanes of a
//!   waveguide → FDM      waveguide → FDM
//!   evaluate pass        evaluate pass
//! ```
//!
//! A worker drains its queue in cycles: it blocks on the first request,
//! then keeps collecting until the linger window closes or the batch
//! cap is reached, groups what it got, and issues one
//! [`GateSession::evaluate_batch`] per group. Because routing is by
//! [`WaveguideId`] and [`LaneId`], a drain cycle naturally coalesces
//! requests across *different* gates sharing a waveguide — the
//! cross-gate data parallelism of the companion paper
//! (arXiv:2008.12220) — while requests for the same gate ride one
//! batch, the in-waveguide parallelism of the source paper.
//!
//! # Frequency-division multiplexing
//!
//! Gates carrying the same [`WaveguideId`] but distinct [`LaneId`]s
//! occupy disjoint frequency bands of one physical medium, so their
//! groups do not stay separate batches: the drain stacks every lane of
//! a waveguide into one multi-lane [`evaluate_fdm_batch`]
//! pass (micromagnetic backends are excluded, mirroring the no-fusion
//! rule). Per-shard FDM pass counters and per-lane served counters
//! surface through [`Scheduler::telemetry`]; register lane-shifted
//! circuit gates with
//! [`SchedulerBuilder::register_circuit_gates_on_lane`].
//!
//! # Adaptive policies
//!
//! Three load-aware policies (see [`AdaptiveConfig`], all on by
//! default, all individually switchable) feed on the lock-free
//! telemetry in [`crate::telemetry`]:
//!
//! * **load-aware linger** — each worker's linger window shrinks toward
//!   [`AdaptiveConfig::min_linger`] while drains come back nearly empty
//!   (low latency under light load) and stretches toward
//!   [`AdaptiveConfig::max_linger`] while drains fill to `max_batch`
//!   (big batches under bursts);
//! * **hot-waveguide rebalancing** — instead of the static
//!   hash-placement fallback, submissions consult a placement table
//!   that periodically moves co-tenant waveguides off overloaded
//!   shards, so a hot waveguide ends up with a shard to itself while
//!   the background traffic spreads over the rest;
//! * **cross-waveguide fusion** — when a drain runs deeper than
//!   [`AdaptiveConfig::fusion_threshold`], requests for
//!   *design-compatible* gates (equal
//!   [`ParallelGate::design_fingerprint`] — a hash over the compiled
//!   evaluation state, so only the waveguide id may differ — and the
//!   same backend) merge into a single `evaluate_batch` call instead
//!   of one call per gate.
//!
//! Rebalancing is safe mid-flight because workers create backend
//! instances lazily: a request that reaches a shard whose worker has
//! not served that gate before triggers a `split_session` from the
//! shared warm template, instead of an error.
//!
//! Completions carry the scheduler-assigned request tag, so they are
//! safe to deliver out of order; each [`Ticket`] simply receives its
//! own.
//!
//! # LUT persistence
//!
//! With [`ServeConfig::lut_dir`] set, [`SchedulerBuilder::build`] loads
//! each gate's persisted truth-table LUT (if present and valid) into
//! the template session before splitting per-shard instances, and
//! [`Scheduler::shutdown`] merges every shard's LUT and writes it back
//! (atomically — a crash mid-write never corrupts the previous file).
//! A warm restart therefore serves from the first request without
//! recomputing any channel readout.

use crate::error::ServeError;
use crate::request::{EvalJob, GateId, SchedulerStats, SharedStats, Ticket};
use crate::telemetry::{AdaptiveConfig, Telemetry, TelemetrySnapshot};
use magnon_circuits::netlist::{fdm_lane_base, packed_frequency_step};
use magnon_core::backend::{
    evaluate_fdm_batch, evaluate_fdm_batch_logic, BackendChoice, GateSession, LaneBatch,
    OperandSet, RequestTag,
};
use magnon_core::gate::{GateOutput, LaneId, ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_core::lut_store::{load_lut, save_lut, LutSnapshot};
use magnon_core::sync::atomic::{AtomicU64, Ordering};
use magnon_core::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use magnon_core::sync::thread::{self, JoinHandle};
use magnon_core::sync::time::{Duration, Instant};
use magnon_core::sync::Arc;
use magnon_core::truth::LogicFunction;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shard count (clamped to ≥ 1). Each distinct waveguide is
    /// initially placed on `mix64(waveguide_id) % workers` (a
    /// multiplicative bit-mix, so ids sharing factors with the worker
    /// count still spread) and may be moved by adaptive rebalancing.
    pub workers: usize,
    /// Largest number of requests one drain cycle serves. Zero is
    /// rejected by [`SchedulerBuilder::build`] — it would silently
    /// degenerate every drain to a batch of one.
    pub max_batch: usize,
    /// Base linger: how long a worker keeps collecting after the first
    /// request of a drain cycle, trading latency for batch size. With
    /// [`AdaptiveConfig::adaptive_linger`] on, this is only the
    /// starting point; the worker then walks the window between
    /// [`AdaptiveConfig::min_linger`] and [`AdaptiveConfig::max_linger`]
    /// based on observed drain sizes.
    pub linger: Duration,
    /// Bound of each shard's request queue; blocking submission applies
    /// backpressure when full.
    pub queue_depth: usize,
    /// Directory for persisted LUT files (`<gate name>.mglut`). `None`
    /// disables persistence.
    pub lut_dir: Option<PathBuf>,
    /// The load-adaptive policy knobs (linger adaptation, hot-waveguide
    /// rebalancing, cross-waveguide fusion). [`AdaptiveConfig::off`]
    /// reproduces the static runtime.
    pub adaptive: AdaptiveConfig,
    /// Keep per-channel analog readouts on batched replies. Off by
    /// default: responses on the wire only carry logic words, so drains
    /// answer through the logic-only path
    /// ([`GateOutput::logic_only`] — `readouts()` comes back empty),
    /// skipping the dominant per-request allocation and riding the
    /// cached backend's bit-sliced kernel. Turn on for callers that
    /// read amplitude/phase diagnostics off their tickets.
    pub keep_readouts: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 256,
            linger: Duration::from_micros(200),
            queue_depth: 1024,
            lut_dir: None,
            adaptive: AdaptiveConfig::default(),
            keep_readouts: false,
        }
    }
}

/// One registered gate's bookkeeping.
struct GateEntry {
    name: String,
    /// Introspection clone (the serving sessions live on the shards).
    gate: ParallelGate,
    /// Index into the placement table (one slot per distinct
    /// `(waveguide, lane)` channel).
    lane_slot: usize,
    lut_loaded: usize,
}

/// Per-gate routing facts shared with every worker (read-only after
/// build).
#[derive(Debug, Clone, Copy)]
struct GateMeta {
    /// Fusion-compatibility key (see [`fusion_fingerprint`]).
    fingerprint: u64,
    /// Index into the `(waveguide, lane)` placement table.
    lane_slot: usize,
    /// The gate's waveguide — FDM passes only stack lanes of one
    /// physical medium.
    waveguide: WaveguideId,
    /// The gate's frequency lane on that waveguide.
    lane: LaneId,
    /// Whether this gate's backend may join a multi-lane FDM pass
    /// (micromag never does: its time-domain simulation is per-gate,
    /// the same rule that keeps it out of fingerprint fusion).
    fdm_ok: bool,
}

/// Registers gates, then builds the runtime.
///
/// # Examples
///
/// ```
/// use magnon_core::backend::{BackendChoice, OperandSet};
/// use magnon_core::prelude::*;
/// use magnon_physics::waveguide::Waveguide;
/// use magnon_serve::{SchedulerBuilder, ServeConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
///     .channels(8)
///     .inputs(3)
///     .build()?;
/// let mut builder = SchedulerBuilder::new(ServeConfig::default());
/// let maj = builder.register("maj3", gate.clone(), BackendChoice::Cached)?;
/// let scheduler = builder.build()?;
///
/// let set = OperandSet::new(vec![
///     Word::from_u8(0x0F), Word::from_u8(0x33), Word::from_u8(0x55),
/// ]);
/// let ticket = scheduler.submit(maj, set.clone())?;
/// assert_eq!(ticket.wait()?.word(), gate.evaluate(set.words())?.word());
/// scheduler.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct SchedulerBuilder {
    config: ServeConfig,
    registrations: Vec<(String, ParallelGate, BackendChoice)>,
}

impl SchedulerBuilder {
    /// Starts a builder with `config`.
    pub fn new(config: ServeConfig) -> Self {
        SchedulerBuilder {
            config,
            registrations: Vec::new(),
        }
    }

    /// Registers `gate` under `name` (also the LUT file stem when
    /// persistence is on), serving through `choice`'s backend on every
    /// shard the gate lands on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Gate`] for a duplicate name — compared on
    /// the sanitized LUT file stem, so two names that would persist to
    /// the same `.mglut` file (e.g. `maj3/a` and `maj3_a`) cannot
    /// coexist and silently overwrite each other's tables.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        gate: ParallelGate,
        choice: BackendChoice,
    ) -> Result<GateId, ServeError> {
        let name = name.into();
        let stem = lut_stem(&name);
        if self
            .registrations
            .iter()
            .any(|(n, _, _)| lut_stem(n) == stem)
        {
            return Err(ServeError::Gate(GateError::Persistence {
                reason: format!("gate name `{name}` collides with an earlier registration (LUT file stem `{stem}`)"),
            }));
        }
        let id = GateId(self.registrations.len());
        self.registrations.push((name, gate, choice));
        Ok(id)
    }

    /// Registers the two gate shapes circuits lower to (3-input
    /// majority, 2-input XOR) at `width` channels on `waveguide`,
    /// mirroring what an inline
    /// [`magnon_circuits::netlist::GateBank`] would lazily build. Both
    /// gates carry `waveguide_id` (on frequency lane 0), so their
    /// traffic shares a shard and coalesces.
    ///
    /// # Errors
    ///
    /// Gate construction failures and duplicate names.
    pub fn register_circuit_gates(
        &mut self,
        waveguide: Waveguide,
        waveguide_id: WaveguideId,
        width: usize,
        choice: BackendChoice,
    ) -> Result<(GateId, GateId), ServeError> {
        self.register_circuit_gates_on_lane(waveguide, waveguide_id, LaneId(0), width, choice)
    }

    /// Like [`SchedulerBuilder::register_circuit_gates`], but on
    /// frequency lane `lane` of the waveguide: the gates' channel band
    /// shifts to lane `lane`'s slice of the spectrum
    /// ([`fdm_lane_base`]), so several circuits can ride one physical
    /// waveguide concurrently — the FDM serving axis of the companion
    /// paper (arXiv:2008.12220). A whole-waveguide drain then coalesces
    /// the lanes into one multi-lane pass.
    ///
    /// # Errors
    ///
    /// Gate construction failures (e.g. a lane band beyond what the
    /// dispersion branch supports) and duplicate names.
    pub fn register_circuit_gates_on_lane(
        &mut self,
        waveguide: Waveguide,
        waveguide_id: WaveguideId,
        lane: LaneId,
        width: usize,
        choice: BackendChoice,
    ) -> Result<(GateId, GateId), ServeError> {
        let step = packed_frequency_step(width);
        let base = fdm_lane_base(lane.0, width);
        let maj3 = ParallelGateBuilder::new(waveguide)
            .channels(width)
            .inputs(3)
            .function(LogicFunction::Majority)
            .base_frequency(base)
            .frequency_step(step)
            .on_waveguide(waveguide_id)
            .on_lane(lane)
            .build()
            .map_err(ServeError::Gate)?;
        let xor2 = ParallelGateBuilder::new(waveguide)
            .channels(width)
            .inputs(2)
            .function(LogicFunction::Xor)
            .base_frequency(base)
            .frequency_step(step)
            .on_waveguide(waveguide_id)
            .on_lane(lane)
            .build()
            .map_err(ServeError::Gate)?;
        // Lane 0 keeps the pre-FDM names, so existing LUT files and
        // registrations stay valid.
        let suffix = if lane.0 == 0 {
            String::new()
        } else {
            format!("_{lane}")
        };
        let maj_id = self.register(
            format!("maj3_w{width}_{waveguide_id}{suffix}"),
            maj3,
            choice,
        )?;
        let xor_id = self.register(
            format!("xor2_w{width}_{waveguide_id}{suffix}"),
            xor2,
            choice,
        )?;
        Ok((maj_id, xor_id))
    }

    /// Builds the runtime: validates the configuration, loads persisted
    /// LUTs, places waveguides on shards and spawns the workers.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Config`] for an unusable configuration
    ///   (`max_batch == 0`, or `adaptive.min_linger` above
    ///   `adaptive.max_linger`).
    /// * [`ServeError::Gate`] for backend construction failures.
    /// * [`ServeError::Gate`] wrapping [`GateError::Persistence`] when
    ///   a persisted LUT file exists but is corrupted or belongs to a
    ///   different gate design (delete the stale file to proceed).
    pub fn build(self) -> Result<Scheduler, ServeError> {
        let mut config = self.config;
        if config.max_batch == 0 {
            return Err(ServeError::Config {
                reason: "max_batch must be at least 1 — a zero cap would make the linger loop \
                         unreachable and silently serve every request as a batch of one"
                    .into(),
            });
        }
        if config.adaptive.min_linger > config.adaptive.max_linger {
            return Err(ServeError::Config {
                reason: format!(
                    "adaptive.min_linger ({:?}) exceeds adaptive.max_linger ({:?})",
                    config.adaptive.min_linger, config.adaptive.max_linger
                ),
            });
        }
        config.workers = config.workers.max(1);
        config.queue_depth = config.queue_depth.max(1);
        config.adaptive.rebalance_interval = config.adaptive.rebalance_interval.max(1);
        config.adaptive.fusion_threshold = config.adaptive.fusion_threshold.max(2);

        // Distinct lanes of one waveguide must occupy disjoint bands —
        // the drain stacks them into one physical excitation, which is
        // only real when their spectra cannot interfere. (Same-lane
        // gates may share a band: they serve as separate passes, the
        // pre-FDM behaviour.)
        for (i, (name_a, gate_a, _)) in self.registrations.iter().enumerate() {
            for (name_b, gate_b, _) in self.registrations.iter().skip(i + 1) {
                if gate_a.waveguide_id() == gate_b.waveguide_id()
                    && gate_a.lane_id() != gate_b.lane_id()
                    && gate_a.frequency_lane().overlaps(gate_b.frequency_lane())
                {
                    return Err(ServeError::Config {
                        reason: format!(
                            "gates `{name_a}` ({}) and `{name_b}` ({}) claim distinct frequency \
                             lanes of {} but their bands overlap ({:.1}-{:.1} GHz vs {:.1}-{:.1} \
                             GHz) — stacked FDM passes need disjoint spectra (shift one with \
                             base_frequency/fdm_lane_base, or put them on the same lane)",
                            gate_a.lane_id(),
                            gate_b.lane_id(),
                            gate_a.waveguide_id(),
                            gate_a.frequency_lane().band_low / 1e9,
                            gate_a.frequency_lane().band_high / 1e9,
                            gate_b.frequency_lane().band_low / 1e9,
                            gate_b.frequency_lane().band_high / 1e9,
                        ),
                    });
                }
            }
        }

        let mut lane_slots: BTreeMap<(u64, u16), usize> = BTreeMap::new();
        let mut placements: Vec<(WaveguideId, LaneId, usize)> = Vec::new();
        let mut entries = Vec::with_capacity(self.registrations.len());
        let mut templates: Vec<GateSession> = Vec::with_capacity(self.registrations.len());
        let mut meta: Vec<GateMeta> = Vec::with_capacity(self.registrations.len());
        for (index, (name, gate, choice)) in self.registrations.into_iter().enumerate() {
            let mut template = GateSession::new(gate.clone(), choice)?;
            let mut lut_loaded = 0;
            if let Some(dir) = &config.lut_dir {
                let path = lut_path(dir, &name);
                if path.exists() {
                    let snapshot = load_lut(&path)?;
                    lut_loaded = template.import_lut(&snapshot)?;
                }
            }
            let waveguide = gate.waveguide_id();
            let lane = gate.lane_id();
            // Placement is per (waveguide, lane), but the initial shard
            // comes from the waveguide alone, so all lanes of one
            // medium start co-resident and FDM-coalesce from the first
            // drain (the rebalancer may separate them later).
            let lane_slot = *lane_slots.entry((waveguide.0, lane.0)).or_insert_with(|| {
                placements.push((waveguide, lane, static_shard(waveguide, config.workers)));
                placements.len() - 1
            });
            meta.push(GateMeta {
                fingerprint: fusion_fingerprint(index, &gate, choice),
                lane_slot,
                waveguide,
                lane,
                fdm_ok: !matches!(choice, BackendChoice::Micromag(_)),
            });
            entries.push(GateEntry {
                name,
                gate,
                lane_slot,
                lut_loaded,
            });
            templates.push(template);
        }

        let telemetry = Arc::new(Telemetry::new(config.workers, placements));
        let stats = Arc::new(SharedStats::default());
        let templates = Arc::new(templates);
        let meta = Arc::new(meta);
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for shard in 0..config.workers {
            // Pre-split the gates initially placed here (fast path);
            // anything rebalancing routes over later splits lazily.
            let mut sessions: Vec<Option<GateSession>> = Vec::with_capacity(entries.len());
            for (entry, template) in entries.iter().zip(templates.iter()) {
                if telemetry.shard_of_slot(entry.lane_slot) == shard {
                    sessions.push(Some(template.split_session()?));
                } else {
                    sessions.push(None);
                }
            }
            let (tx, rx) = mpsc::sync_channel(config.queue_depth);
            let worker = Worker {
                shard,
                rx,
                sessions,
                templates: Arc::clone(&templates),
                meta: Arc::clone(&meta),
                linger: config.linger,
                max_batch: config.max_batch,
                policy: config.adaptive.clone(),
                keep_readouts: config.keep_readouts,
                stats: Arc::clone(&stats),
                telemetry: Arc::clone(&telemetry),
                scratch: DrainScratch::default(),
            };
            senders.push(tx);
            handles.push(
                thread::Builder::new()
                    .name(format!("magnon-serve-{shard}"))
                    .spawn(move || worker.run())
                    .map_err(|e| {
                        ServeError::Gate(GateError::Runtime {
                            reason: format!("failed to spawn worker thread: {e}"),
                        })
                    })?,
            );
        }
        Ok(Scheduler {
            entries,
            senders,
            handles,
            stats,
            telemetry,
            next_tag: AtomicU64::new(0),
            config,
        })
    }
}

/// Gate name → tame file stem; `register` enforces uniqueness on this,
/// not on the raw name, so no two gates persist to the same file.
fn lut_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn lut_path(dir: &std::path::Path, name: &str) -> PathBuf {
    dir.join(format!("{}.mglut", lut_stem(name)))
}

/// Splitmix64 finalizer: an invertible multiplicative bit-mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Static placement fallback: mix the id bits, then fold the
/// well-mixed *high* half. A raw `waveguide_id % workers` systematically
/// collides ids sharing a factor with the worker count (all-even ids on
/// 2 workers load only the even shards); the mix makes placement
/// uniform even before the adaptive table warms up.
fn static_shard(waveguide: WaveguideId, workers: usize) -> usize {
    ((mix64(waveguide.0) >> 32) % workers.max(1) as u64) as usize
}

/// Fusion-compatibility key: the gate's behavioral fingerprint
/// ([`ParallelGate::design_fingerprint`] — a hash over the *compiled*
/// evaluation state, so readout modes, layout, dispersion model,
/// equalization and waveguide physics all participate) combined with
/// the backend choice. Equal keys mean identical outputs for identical
/// operands, so the fusion path may serve them from one session.
/// Micromagnetic backends are salted with the registration index —
/// their calibration is per-instance, so they never fuse.
fn fusion_fingerprint(index: usize, gate: &ParallelGate, choice: BackendChoice) -> u64 {
    let (tag, salt) = match choice {
        BackendChoice::Analytic => (1u64, 0u64),
        BackendChoice::Cached => (2, 0),
        // The index salt makes every micromag registration unique.
        BackendChoice::Micromag(_) => (3, index as u64 + 1),
    };
    mix64(gate.design_fingerprint() ^ mix64(tag) ^ mix64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Drain-cycle scratch owned by the worker. Every buffer keeps its
/// capacity between drains, so steady-state serving stops allocating
/// once the buffers reach their high-water mark — the workspace
/// call-graph analyzer proves the drain path allocation-free modulo
/// the waived amortized-growth sites that fill these.
#[derive(Default)]
struct DrainScratch {
    /// Level-1 association list, group key → jobs. Replaces a
    /// per-drain `BTreeMap`: linear scans win at drain-sized group
    /// counts, and the entries reuse pooled job vectors instead of
    /// allocating a node per job.
    groups: Vec<(u64, Vec<EvalJob>)>,
    /// Uniform-FDM groups peeled out of `groups`, re-keyed by
    /// waveguide id and sorted so each waveguide's candidates form one
    /// contiguous run.
    fdm: Vec<(u64, Vec<EvalJob>)>,
    /// Emptied job vectors handed back by the serve paths.
    pool: Vec<Vec<EvalJob>>,
    /// Gate indices touched this drain (sorted + deduped in place,
    /// replacing a per-drain `BTreeSet`).
    gates: Vec<usize>,
    /// Per-waveguide lane election: `(lane, run offset, depth)`.
    lanes: Vec<(u16, usize, usize)>,
    /// Groups elected into one stacked FDM pass.
    stacked: Vec<Vec<EvalJob>>,
    /// Per-batch staging shared by the serve paths.
    stage: GroupStage,
}

/// Per-batch staging reused by [`Worker::serve_group`]: operand sets
/// and reply routes move out of the jobs into these buffers, which
/// keep their capacity from batch to batch.
#[derive(Default)]
struct GroupStage {
    sets: Vec<OperandSet>,
    replies: Vec<(usize, RequestTag, ReplySender)>,
    /// Per-lane served tally for [`Worker::note_lanes_served`].
    tally: Vec<(usize, u64)>,
}

/// The completion channel carried by every [`EvalJob`].
type ReplySender = mpsc::Sender<(RequestTag, Result<GateOutput, GateError>)>;

/// One worker shard: a bounded queue and its own backend instances.
struct Worker {
    shard: usize,
    rx: Receiver<EvalJob>,
    /// `sessions[gate index]` — filled lazily; gates placed here at
    /// build time are pre-split.
    sessions: Vec<Option<GateSession>>,
    /// Warm templates shared by all shards, the source of lazy splits.
    templates: Arc<Vec<GateSession>>,
    /// `meta[gate index]` — fusion key, lane slot and FDM eligibility.
    meta: Arc<Vec<GateMeta>>,
    /// Base linger (the adaptive window starts here).
    linger: Duration,
    max_batch: usize,
    policy: AdaptiveConfig,
    /// Answer batched replies with full analog readouts instead of the
    /// logic-only fast path (see [`ServeConfig::keep_readouts`]).
    keep_readouts: bool,
    stats: Arc<SharedStats>,
    telemetry: Arc<Telemetry>,
    /// Reusable drain-cycle buffers (see [`DrainScratch`]).
    scratch: DrainScratch,
}

/// What a worker hands back when its queue closes.
struct WorkerReport {
    /// `(gate index, LUT contents)` for every session that kept one.
    luts: Vec<(usize, LutSnapshot)>,
}

impl Worker {
    fn run(mut self) -> WorkerReport {
        let mut pending: Vec<EvalJob> = Vec::with_capacity(self.max_batch);
        let mut linger = if self.policy.adaptive_linger {
            self.linger
                .clamp(self.policy.min_linger, self.policy.max_linger)
        } else {
            self.linger
        };
        loop {
            // Block for the cycle's first request; a closed queue is
            // the shutdown signal.
            match self.rx.recv() {
                Ok(job) => pending.push(job),
                Err(_) => break,
            }
            // Linger: keep collecting so concurrent submitters coalesce.
            let deadline = Instant::now() + linger;
            while pending.len() < self.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    // The window closed; sweep whatever is already
                    // queued without waiting further.
                    match self.rx.try_recv() {
                        Ok(job) => pending.push(job),
                        Err(_) => break,
                    }
                    continue;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(job) => pending.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            let drained = pending.len();
            self.serve_drain(&mut pending);
            if self.policy.adaptive_linger {
                linger = self.adapted_linger(linger, drained);
                self.telemetry.publish_linger(self.shard, linger);
            }
        }
        self.drain_stragglers(&mut pending);
        WorkerReport {
            luts: self
                .sessions
                .iter()
                .enumerate()
                .filter_map(|(idx, s)| Some((idx, s.as_ref()?.lut_snapshot()?)))
                .collect(),
        }
    }

    /// Serves everything still queued (or mid-collection in `pending`)
    /// once the last sender has dropped: every straggler must be
    /// answered, in batches capped at `max_batch` — a deep backlog
    /// flushes mid-drain instead of growing one oversized batch.
    fn drain_stragglers(&mut self, pending: &mut Vec<EvalJob>) {
        while let Ok(job) = self.rx.try_recv() {
            pending.push(job);
            if pending.len() >= self.max_batch {
                self.serve_drain(pending);
            }
        }
        if !pending.is_empty() {
            self.serve_drain(pending);
        }
    }

    /// Multiplicative increase/decrease on the linger window: a drain
    /// that filled the batch cap means traffic is bursty (stretch to
    /// collect more next time); a drain of one request means the window
    /// bought nothing (shrink toward pure latency).
    fn adapted_linger(&self, current: Duration, drained: usize) -> Duration {
        if drained >= self.max_batch {
            // Seed the doubling when the window shrank all the way to
            // zero (min_linger: 0), or it could never grow back.
            current
                .max(Duration::from_micros(1))
                .saturating_mul(2)
                .min(self.policy.max_linger)
        } else if drained <= 1 {
            (current / 2).max(self.policy.min_linger)
        } else {
            current
        }
    }

    /// The serving session for `gate`, splitting one off the shared
    /// warm template the first time rebalancing routes that gate here.
    /// An out-of-range index is an error, not a panic — the drain path
    /// must keep serving the other requests of the batch.
    fn session_for(&mut self, gate: usize) -> Result<&mut GateSession, GateError> {
        let out_of_range = || GateError::Runtime {
            reason: format!("gate index {gate} is not registered"),
        };
        let slot = self.sessions.get_mut(gate).ok_or_else(out_of_range)?;
        if slot.is_none() {
            let template = self.templates.get(gate).ok_or_else(out_of_range)?;
            *slot = Some(template.split_session()?);
        }
        slot.as_mut().ok_or_else(out_of_range)
    }

    /// Routing facts for `gate`. Every caller runs behind
    /// [`Worker::serve_drain`]'s index assert, so the fallback (a
    /// solitary non-FDM, non-fusing meta) is dead code that exists only
    /// to keep the drain path free of panicking lookups.
    fn meta_of(&self, gate: usize) -> GateMeta {
        self.meta.get(gate).copied().unwrap_or(GateMeta {
            fingerprint: gate as u64,
            lane_slot: 0,
            waveguide: WaveguideId(u64::MAX),
            lane: LaneId(u16::MAX),
            fdm_ok: false,
        })
    }

    /// Serves one drain cycle: group by gate — or, when the drain is
    /// deep enough to fuse, by design fingerprint — then stack groups
    /// riding distinct frequency lanes of one waveguide into a single
    /// multi-lane FDM pass. One batch per surviving group, tags routed
    /// back to their tickets.
    fn serve_drain(&mut self, pending: &mut Vec<EvalJob>) {
        let drained = pending.len() as u64;
        let hit_cap = pending.len() >= self.max_batch;
        // Account the dequeue *before* serving: a client that observes
        // its completion must never still see its request in the queue
        // gauge.
        self.telemetry.record_drain(self.shard, drained, hit_cap);
        // A gate index past the registry is memory corruption or an
        // injected poison job: crash this worker loudly here, at the
        // drain's entry, rather than serve a wrong answer. This is the
        // drain path's ONE deliberate panic site (the shutdown path
        // joins and reports the panicked shard; the model checker's
        // shutdown-under-panic scenario drives exactly this).
        for job in pending.iter() {
            // lint: allow(drain-path-panic)
            // analyze: allow(can-panic) — deliberate corruption trap, see above
            assert!(
                job.gate < self.meta.len(),
                "job targets unregistered gate index {}",
                job.gate
            );
        }
        let fuse = self.policy.fusion && pending.len() >= self.policy.fusion_threshold;
        // The scratch moves out of `self` for the cycle (the serve
        // calls below need `&mut self`) and moves back at the end.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.gates.clear();
        for job in pending.drain(..) {
            // analyze: allow(can-alloc) — amortized: scratch retains
            // capacity across drains (see `DrainScratch`).
            scratch.gates.push(job.gate);
            let key = if fuse {
                self.meta_of(job.gate).fingerprint
            } else {
                job.gate as u64
            };
            if let Some((_, group)) = scratch.groups.iter_mut().find(|(k, _)| *k == key) {
                // analyze: allow(can-alloc) — amortized: pooled group
                // vector keeps its capacity across drains.
                group.push(job);
            } else {
                let mut group = scratch.pool.pop().unwrap_or_default();
                // analyze: allow(can-alloc) — amortized: pooled vector reuse
                group.push(job);
                // analyze: allow(can-alloc) — amortized: association list reuse
                scratch.groups.push((key, group));
            }
        }
        scratch.gates.sort_unstable();
        scratch.gates.dedup();
        let gates_touched = scratch.gates.len() as u64;
        // Second level: peel FDM-eligible groups out into `fdm`,
        // re-keyed by waveguide. A group qualifies when every job sits
        // on one waveguide through an FDM-capable backend
        // (fingerprint-fused groups may span waveguides; those stay
        // behind in `groups` and serve unstacked, as before).
        scratch.fdm.clear();
        let fdm = &mut scratch.fdm;
        scratch.groups.retain_mut(|(_, group)| {
            let Some(first) = group.first() else {
                return false;
            };
            let lead = self.meta_of(first.gate);
            let uniform = lead.fdm_ok
                && group.iter().all(|job| {
                    let meta = self.meta_of(job.gate);
                    meta.fdm_ok && meta.waveguide == lead.waveguide
                });
            if uniform {
                // analyze: allow(can-alloc) — amortized: scratch list
                // keeps its capacity across drains.
                fdm.push((lead.waveguide.0, std::mem::take(group)));
            }
            !uniform
        });
        scratch.fdm.sort_unstable_by_key(|entry| entry.0);
        let mut batches = 0u64;
        // Serve each waveguide run. At most ONE channel group per lane
        // may ride the stacked pass — groups sharing a lane occupy the
        // same band, so only disjoint-band representatives form one
        // physical excitation. Pick the deepest group per lane
        // (densest stack, first wins ties); same-lane leftovers serve
        // as their own batches, exactly like pre-FDM cross-gate
        // coalescing.
        let mut start = 0;
        while let Some(&(waveguide, _)) = scratch.fdm.get(start) {
            let mut end = start + 1;
            while scratch.fdm.get(end).is_some_and(|e| e.0 == waveguide) {
                end += 1;
            }
            scratch.lanes.clear();
            for (offset, (_, group)) in scratch.fdm.iter().enumerate().take(end).skip(start) {
                let Some(first) = group.first() else {
                    continue;
                };
                let lane = self.meta_of(first.gate).lane.0;
                if let Some(entry) = scratch.lanes.iter_mut().find(|(l, _, _)| *l == lane) {
                    if entry.2 < group.len() {
                        *entry = (lane, offset, group.len());
                    }
                } else {
                    // analyze: allow(can-alloc) — amortized: scratch
                    // election list keeps its capacity across drains.
                    scratch.lanes.push((lane, offset, group.len()));
                }
            }
            let stack = scratch.lanes.len() >= 2;
            scratch.stacked.clear();
            for offset in start..end {
                let Some((_, group)) = scratch.fdm.get_mut(offset) else {
                    continue;
                };
                let group = std::mem::take(group);
                let elected = stack && scratch.lanes.iter().any(|&(_, index, _)| index == offset);
                if elected {
                    // analyze: allow(can-alloc) — amortized: scratch
                    // stack keeps its capacity across drains.
                    scratch.stacked.push(group);
                } else {
                    batches += 1;
                    let spent = self.serve_group(group, &mut scratch.stage);
                    // analyze: allow(can-alloc) — amortized: the pool
                    // grows to the drain's high-water group count.
                    scratch.pool.push(spent);
                }
            }
            if stack {
                batches += self.serve_fdm(
                    &mut scratch.stacked,
                    &mut scratch.pool,
                    scratch.lanes.len() as u64,
                    &mut scratch.stage,
                );
            }
            start = end;
        }
        // The non-uniform leftovers (and everything when FDM is off).
        while let Some((_, group)) = scratch.groups.pop() {
            batches += 1;
            let spent = self.serve_group(group, &mut scratch.stage);
            // analyze: allow(can-alloc) — amortized: the pool grows to
            // the drain's high-water group count.
            scratch.pool.push(spent);
        }
        self.scratch = scratch;
        self.stats.record_drain(drained, batches, gates_touched);
        self.publish_lut_stats();
    }

    /// Republishes this shard's LUT effectiveness gauge: the summed
    /// hit/miss/dense-row counters of every live cached session. Runs
    /// once per drain, off the per-request path.
    fn publish_lut_stats(&self) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut dense_rows = 0u64;
        let mut any = false;
        for session in self.sessions.iter().flatten() {
            if let Some(stats) = session.lut_stats() {
                hits += stats.hits;
                misses += stats.misses;
                dense_rows += stats.dense_rows as u64;
                any = true;
            }
        }
        if any {
            self.telemetry
                .publish_lut(self.shard, hits, misses, dense_rows);
        }
    }

    /// Serves one whole-waveguide multi-lane pass: each group is one
    /// channel group (a gate design's queued jobs) riding its own
    /// frequency lane, and all of them evaluate through a single
    /// stacked [`evaluate_fdm_batch`] call — the companion paper's
    /// multi-frequency parallelism as a drain-path operation. Falls
    /// back to per-request evaluation when the stacked pass fails as a
    /// whole, so errors land only on the requests that earned them.
    /// Returns the number of batches actually issued (1 for the
    /// stacked pass; one per group when a missing session devolves the
    /// stack into per-group serving).
    fn serve_fdm(
        &mut self,
        stacked: &mut Vec<Vec<EvalJob>>,
        pool: &mut Vec<Vec<EvalJob>>,
        lanes: u64,
        stage: &mut GroupStage,
    ) -> u64 {
        // Per-pass staging in this function is allocated fresh rather
        // than pooled: an FDM stack carries at most one group per
        // frequency lane of one waveguide, so every vector here is
        // bounded by the waveguide's lane count, not by queue depth.
        // Distinct group keys mean distinct lead gates, so each lead's
        // session can be taken out of the table exactly once.
        let leads: Vec<usize> = stacked
            .iter()
            .filter_map(|group| group.first().map(|job| job.gate))
            .collect(); // analyze: allow(can-alloc) — per-pass, bounded by stacked lanes
        for &lead in &leads {
            if self.session_for(lead).is_err() {
                // A lane whose session cannot build fails its own
                // group's requests through the per-group path; the
                // other lanes still serve.
                let devolved = stacked.len() as u64;
                for group in stacked.drain(..) {
                    let spent = self.serve_group(group, stage);
                    pool.push(spent); // analyze: allow(can-alloc) — amortized pool growth
                }
                return devolved;
            }
        }
        // Borrow every lead session at once by lifting them out of the
        // slot table for the duration of the stacked call. The ensure
        // loop above just built each one, so a missing slot here means
        // the table is inconsistent — restore what was taken and serve
        // per group rather than panic mid-drain.
        let mut sessions: Vec<GateSession> = Vec::with_capacity(leads.len()); // analyze: allow(can-alloc) — per-pass, bounded by stacked lanes
        for &lead in &leads {
            match self.sessions.get_mut(lead).and_then(Option::take) {
                Some(session) => sessions.push(session), // analyze: allow(can-alloc) — within the capacity above
                None => {
                    for (&taken, session) in leads.iter().zip(sessions) {
                        if let Some(slot) = self.sessions.get_mut(taken) {
                            *slot = Some(session);
                        }
                    }
                    let devolved = stacked.len() as u64;
                    for group in stacked.drain(..) {
                        let spent = self.serve_group(group, stage);
                        pool.push(spent); // analyze: allow(can-alloc) — amortized pool growth
                    }
                    return devolved;
                }
            }
        }
        let mut sets: Vec<Vec<OperandSet>> = Vec::with_capacity(stacked.len()); // analyze: allow(can-alloc) — per-pass, bounded by stacked lanes
        let mut replies = Vec::with_capacity(stacked.len()); // analyze: allow(can-alloc) — per-pass, bounded by stacked lanes
        let mut total_requests = 0u64;
        for mut group in stacked.drain(..) {
            let mut group_sets = Vec::with_capacity(group.len()); // analyze: allow(can-alloc) — per-lane staging, sized to its group
            let mut group_replies = Vec::with_capacity(group.len()); // analyze: allow(can-alloc) — per-lane staging, sized to its group
            total_requests += group.len() as u64;
            for job in group.drain(..) {
                group_sets.push(job.set); // analyze: allow(can-alloc) — within the capacity above
                group_replies.push((job.gate, job.tag, job.reply)); // analyze: allow(can-alloc) — within the capacity above
            }
            pool.push(group); // analyze: allow(can-alloc) — amortized pool growth
            sets.push(group_sets); // analyze: allow(can-alloc) — within the capacity above
            replies.push(group_replies); // analyze: allow(can-alloc) — within the capacity above
        }
        let mut lane_batches: Vec<LaneBatch<'_>> = sessions
            .iter_mut()
            .zip(&sets)
            .map(|(session, lane_sets)| LaneBatch {
                session,
                sets: lane_sets,
            })
            .collect(); // analyze: allow(can-alloc) — per-pass, bounded by stacked lanes
        let attempt = if self.keep_readouts {
            evaluate_fdm_batch(&mut lane_batches)
        } else {
            evaluate_fdm_batch_logic(&mut lane_batches).map(|lanes| {
                lanes
                    .into_iter()
                    .map(|words| words.into_iter().map(GateOutput::logic_only).collect()) // analyze: allow(can-alloc) — per-pass output repack
                    .collect() // analyze: allow(can-alloc) — per-pass output repack
            })
        };
        drop(lane_batches);
        for (&lead, session) in leads.iter().zip(sessions) {
            if let Some(slot) = self.sessions.get_mut(lead) {
                *slot = Some(session);
            }
        }
        match attempt {
            Ok(outputs) => {
                self.telemetry.record_fdm_pass(self.shard, lanes);
                self.stats.record_fdm_pass(lanes, total_requests);
                for (lane_replies, lane_outputs) in replies.into_iter().zip(outputs) {
                    self.note_lanes_served(
                        lane_replies.iter().map(|(gate, _, _)| *gate),
                        &mut stage.tally,
                    );
                    for ((_, tag, reply), output) in lane_replies.into_iter().zip(lane_outputs) {
                        // ordering: Relaxed — monotonic stat counter;
                        // the reply channel orders the result delivery.
                        self.stats.completed.fetch_add(1, Ordering::Relaxed);
                        let _ = reply.send((tag, Ok(output)));
                    }
                }
            }
            Err(_) => {
                // The stacked pass failed as a whole (e.g. one lane
                // carried a malformed operand); retry each request on
                // its own gate so only the offenders see the error.
                for (lane_replies, lane_sets) in replies.into_iter().zip(&sets) {
                    for ((gate, tag, reply), set) in lane_replies.into_iter().zip(lane_sets) {
                        let result = match self.session_for(gate) {
                            Ok(session) => session.evaluate(set.words()),
                            Err(e) => Err(e),
                        };
                        // ordering: Relaxed — monotonic stat counters;
                        // the reply channel orders the result delivery.
                        match &result {
                            Ok(_) => {
                                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                                self.telemetry
                                    .record_lane_served(self.meta_of(gate).lane_slot, 1);
                            }
                            Err(_) => {
                                // ordering: Relaxed — stat counter.
                                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                            }
                        };
                        let _ = reply.send((tag, result));
                    }
                }
            }
        }
        1
    }

    /// Accounts successfully answered requests on their lanes' `served`
    /// telemetry counters. Success paths only — a request that failed
    /// was not served, so the per-lane counters always sum to the
    /// scheduler's `completed` total.
    fn note_lanes_served(&self, gates: impl Iterator<Item = usize>, tally: &mut Vec<(usize, u64)>) {
        tally.clear();
        for gate in gates {
            let slot = self.meta_of(gate).lane_slot;
            if let Some(entry) = tally.iter_mut().find(|(s, _)| *s == slot) {
                entry.1 += 1;
            } else {
                // analyze: allow(can-alloc) — amortized: the tally
                // keeps its capacity across batches (see `GroupStage`).
                tally.push((slot, 1));
            }
        }
        for &(slot, count) in tally.iter() {
            self.telemetry.record_lane_served(slot, count);
        }
    }

    /// Serves one group (all jobs share a session-compatible target):
    /// one `evaluate_batch` on the lead gate's session, with a
    /// per-request fallback on each job's own gate so errors land only
    /// on the requests that earned them. Returns the emptied job
    /// vector so the caller can pool it for the next drain.
    fn serve_group(&mut self, mut group: Vec<EvalJob>, stage: &mut GroupStage) -> Vec<EvalJob> {
        let Some(first) = group.first() else {
            return group;
        };
        let lead = first.gate;
        let fused = group.iter().any(|job| job.gate != lead);
        // Move the operand sets out of the jobs — the batch path must
        // not copy request payloads. The staging buffers keep their
        // capacity from batch to batch (see `GroupStage`).
        stage.sets.clear();
        stage.replies.clear();
        for job in group.drain(..) {
            // analyze: allow(can-alloc) — amortized: staging retains
            // capacity across batches (see `GroupStage`).
            stage.sets.push(job.set);
            // analyze: allow(can-alloc) — amortized (staging, as above)
            stage.replies.push((job.gate, job.tag, job.reply));
        }
        let keep_readouts = self.keep_readouts;
        let attempt = match self.session_for(lead) {
            Ok(session) if keep_readouts => session.evaluate_batch(&stage.sets),
            Ok(session) => session
                .evaluate_batch_logic(&stage.sets)
                // analyze: allow(can-alloc) — per-batch output repack
                .map(|words| words.into_iter().map(GateOutput::logic_only).collect()),
            Err(e) => Err(e),
        };
        match attempt {
            Ok(outputs) => {
                if fused {
                    self.stats.record_fusion(stage.sets.len() as u64);
                }
                self.note_lanes_served(
                    stage.replies.iter().map(|(gate, _, _)| *gate),
                    &mut stage.tally,
                );
                for ((_, tag, reply), output) in stage.replies.drain(..).zip(outputs) {
                    // ordering: Relaxed — monotonic stat counter; the
                    // reply channel orders the result delivery.
                    self.stats.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send((tag, Ok(output)));
                }
            }
            Err(_) => {
                // The batch failed as a whole; fall back to per-request
                // evaluation on each job's own gate.
                for ((gate, tag, reply), set) in stage.replies.drain(..).zip(stage.sets.iter()) {
                    let result = match self.session_for(gate) {
                        Ok(session) => session.evaluate(set.words()),
                        Err(e) => Err(e),
                    };
                    // ordering: Relaxed — monotonic stat counters; the
                    // reply channel orders the result delivery.
                    match &result {
                        Ok(_) => {
                            self.stats.completed.fetch_add(1, Ordering::Relaxed);
                            self.telemetry
                                .record_lane_served(self.meta_of(gate).lane_slot, 1);
                        }
                        Err(_) => {
                            // ordering: Relaxed — stat counter.
                            self.stats.failed.fetch_add(1, Ordering::Relaxed);
                        }
                    };
                    let _ = reply.send((tag, result));
                }
            }
        }
        stage.sets.clear();
        group
    }
}

/// What [`Scheduler::shutdown`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct ShutdownReport {
    /// Final counter snapshot.
    pub stats: SchedulerStats,
    /// LUT files written (empty without persistence).
    pub lut_files: Vec<PathBuf>,
    /// Total LUT entries persisted across those files.
    pub lut_entries_saved: usize,
}

/// The running sharded runtime. See the [module docs](self) for the
/// architecture.
pub struct Scheduler {
    entries: Vec<GateEntry>,
    senders: Vec<SyncSender<EvalJob>>,
    handles: Vec<JoinHandle<WorkerReport>>,
    stats: Arc<SharedStats>,
    telemetry: Arc<Telemetry>,
    next_tag: AtomicU64,
    config: ServeConfig,
}

impl Scheduler {
    /// The gate behind `id`, when registered.
    pub fn gate(&self, id: GateId) -> Option<&ParallelGate> {
        self.entries.get(id.0).map(|e| &e.gate)
    }

    /// The registration name of `id`.
    pub fn gate_name(&self, id: GateId) -> Option<&str> {
        self.entries.get(id.0).map(|e| e.name.as_str())
    }

    /// The [`GateId`] for registration index `index`, when it exists —
    /// how front-ends that carry gate indices over a wire (e.g.
    /// `magnon-net`) get back a validated handle.
    pub fn gate_id(&self, index: usize) -> Option<GateId> {
        (index < self.entries.len()).then_some(GateId(index))
    }

    /// Number of registered gates.
    pub fn gate_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of worker shards.
    pub fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// The shard *currently* serving `id`'s waveguide (rebalancing may
    /// move it).
    pub fn shard_of(&self, id: GateId) -> Option<usize> {
        self.entries
            .get(id.0)
            .map(|e| self.telemetry.shard_of_slot(e.lane_slot))
    }

    /// LUT entries adopted from disk at build time (0 without
    /// persistence or on a cold start).
    pub fn lut_entries_loaded(&self) -> usize {
        self.entries.iter().map(|e| e.lut_loaded).sum()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        self.stats.snapshot()
    }

    /// Current load-telemetry snapshot: per-shard queue depths, drain
    /// counters and linger windows, per-waveguide placement and recent
    /// request counts, and the number of rebalance moves.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    fn job_for(&self, id: GateId, set: OperandSet) -> Result<(usize, EvalJob, Ticket), ServeError> {
        let entry = self
            .entries
            .get(id.0)
            .ok_or(ServeError::UnknownGate { index: id.0 })?;
        let shard = self
            .telemetry
            .route_submit(entry.lane_slot, &self.config.adaptive);
        // ordering: Relaxed — tags only need uniqueness; submission
        // order is established by the queue send, not the counter.
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        Ok((
            shard,
            EvalJob {
                gate: id.0,
                tag,
                set,
                reply,
            },
            Ticket { tag, rx },
        ))
    }

    /// Submits one evaluation, blocking while the target shard's queue
    /// is full (backpressure).
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownGate`] for a foreign [`GateId`].
    /// * [`ServeError::Shutdown`] when the runtime is gone.
    pub fn submit(&self, id: GateId, set: OperandSet) -> Result<Ticket, ServeError> {
        let (shard, job, ticket) = self.job_for(id, set)?;
        // Gauge accounting happens BEFORE the send: a worker can drain
        // the job the instant it lands, and counting afterwards opens a
        // window where the drain's decrement beats our increment and
        // the gauge dips negative (found by the model checker's
        // gauge-never-negative invariant). The cost is that a submitter
        // parked on a full queue counts as depth a little early — it
        // will land (or the failed send rolls the count back), so the
        // gauge stays an upper bound that still drains to zero.
        self.telemetry.note_enqueued(shard);
        let sender = self.senders.get(shard).ok_or(ServeError::Shutdown)?;
        if sender.send(job).is_err() {
            self.telemetry.note_send_failed(shard);
            return Err(ServeError::Shutdown);
        }
        // ordering: Relaxed — monotonic stat counter; the channel send
        // above is the synchronizing handoff.
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Submits without blocking; a full queue is an error instead of
    /// backpressure.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] plus the conditions of
    /// [`Scheduler::submit`].
    pub fn try_submit(&self, id: GateId, set: OperandSet) -> Result<Ticket, ServeError> {
        let (shard, job, ticket) = self.job_for(id, set)?;
        // Increment-then-rollback, as in `submit`: the gauge must lead
        // the send so a racing drain can never take it negative.
        self.telemetry.note_enqueued(shard);
        let Some(sender) = self.senders.get(shard) else {
            self.telemetry.note_send_failed(shard);
            return Err(ServeError::Shutdown);
        };
        match sender.try_send(job) {
            Ok(()) => {
                // ordering: Relaxed — monotonic stat counter; the
                // channel send is the synchronizing handoff.
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(TrySendError::Full(_)) => {
                self.telemetry.note_send_failed(shard);
                Err(ServeError::QueueFull { shard })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.telemetry.note_send_failed(shard);
                Err(ServeError::Shutdown)
            }
        }
    }

    /// The raw, unclamped queue-depth gauge of `shard` — model-check
    /// invariants assert on this (never negative once drains settle,
    /// zero at shutdown), where [`Scheduler::telemetry`]'s snapshot
    /// would clamp the evidence away.
    #[cfg(mcheck)]
    #[doc(hidden)]
    pub fn queued_raw(&self, shard: usize) -> i64 {
        self.telemetry.queued_raw(shard)
    }

    /// Sends a deliberately malformed job straight into `shard`'s
    /// queue so its worker panics mid-drain — the model checker's hook
    /// for the shutdown-joins-all-workers-under-panic invariant.
    /// Returns whether the poison landed.
    #[cfg(mcheck)]
    #[doc(hidden)]
    pub fn inject_poison(&self, shard: usize) -> bool {
        let Some(sender) = self.senders.get(shard) else {
            return false;
        };
        let (reply, _rx) = mpsc::channel();
        // The poison rides the gauge like any job: the worker's drain
        // decrement must see a matching increment.
        self.telemetry.note_enqueued(shard);
        let landed = sender
            .send(EvalJob {
                gate: usize::MAX,
                tag: u64::MAX,
                set: OperandSet::new(Vec::new()),
                reply,
            })
            .is_ok();
        if !landed {
            self.telemetry.note_send_failed(shard);
        }
        landed
    }

    /// Submits a whole request list up front, then waits for every
    /// completion — the batchable-load entry point. Results come back
    /// in request order regardless of how the shards batched or
    /// reordered the work.
    ///
    /// # Errors
    ///
    /// The first failing request aborts with its error.
    pub fn evaluate_many(
        &self,
        requests: &[(GateId, OperandSet)],
    ) -> Result<Vec<GateOutput>, ServeError> {
        let mut tickets = Vec::with_capacity(requests.len());
        for (id, set) in requests {
            tickets.push(self.submit(*id, set.clone())?);
        }
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Stops accepting work, joins every worker and — with persistence
    /// configured — merges all shards' LUTs per gate and writes them to
    /// disk, so the next [`SchedulerBuilder::build`] starts warm.
    ///
    /// Every worker is joined before any outcome is reported: a single
    /// panicked shard must not detach the surviving workers or discard
    /// their LUT snapshots. Survivors' LUTs are persisted first, then
    /// the panic is reported through [`ServeError::WorkerPanicked`]
    /// (carrying the salvaged report).
    ///
    /// # Errors
    ///
    /// * [`ServeError::WorkerPanicked`] when one or more workers
    ///   panicked (after every survivor LUT was attempted; this takes
    ///   precedence over persistence failures).
    /// * [`ServeError::Gate`] wrapping [`GateError::Persistence`] when
    ///   a LUT file could not be merged or written. Persistence is
    ///   attempted for *every* gate before the first such error is
    ///   reported — one full disk must not discard the other gates'
    ///   tables.
    pub fn shutdown(mut self) -> Result<ShutdownReport, ServeError> {
        self.senders.clear();
        let mut reports = Vec::new();
        let mut panicked = Vec::new();
        for (shard, handle) in std::mem::take(&mut self.handles).into_iter().enumerate() {
            match handle.join() {
                Ok(report) => reports.push(report),
                Err(_) => panicked.push(shard),
            }
        }
        let stats = self.stats.snapshot();
        let mut lut_files = Vec::new();
        let mut lut_entries_saved = 0;
        let mut first_persist_error: Option<ServeError> = None;
        if let Some(dir) = self.config.lut_dir.clone() {
            'gates: for (idx, entry) in self.entries.iter().enumerate() {
                let mut merged: Option<LutSnapshot> = None;
                for report in &reports {
                    for (gate_idx, snapshot) in &report.luts {
                        if *gate_idx != idx {
                            continue;
                        }
                        match &mut merged {
                            None => merged = Some(snapshot.clone()),
                            Some(m) => {
                                if let Err(e) = m.merge(snapshot) {
                                    first_persist_error.get_or_insert(ServeError::Gate(e));
                                    continue 'gates;
                                }
                            }
                        }
                    }
                }
                if let Some(snapshot) = merged {
                    if snapshot.entry_count() > 0 {
                        let path = lut_path(&dir, &entry.name);
                        match save_lut(&path, &snapshot) {
                            Ok(()) => {
                                lut_entries_saved += snapshot.entry_count();
                                lut_files.push(path);
                            }
                            Err(e) => {
                                first_persist_error.get_or_insert(ServeError::Gate(e));
                            }
                        }
                    }
                }
            }
        }
        let report = ShutdownReport {
            stats,
            lut_files,
            lut_entries_saved,
        };
        if !panicked.is_empty() {
            Err(ServeError::WorkerPanicked {
                shards: panicked,
                report: Box::new(report),
            })
        } else if let Some(error) = first_persist_error {
            Err(error)
        } else {
            Ok(report)
        }
    }
}

impl Drop for Scheduler {
    /// Dropping without [`Scheduler::shutdown`] still joins the
    /// workers, but skips LUT persistence.
    fn drop(&mut self) {
        self.senders.clear();
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("gates", &self.entries.len())
            .field("workers", &self.senders.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_core::word::Word;
    use std::collections::BTreeSet;

    fn sample_set(seed: u64) -> OperandSet {
        OperandSet::new(
            (0..3u64)
                .map(|j| Word::from_u8((seed.wrapping_mul(0x9E37_79B9) >> (8 * j)) as u8))
                .collect(),
        )
    }

    /// A worker wired to a hand-held queue, for driving the drain paths
    /// directly.
    fn test_worker(max_batch: usize, queue_depth: usize) -> (SyncSender<EvalJob>, Worker) {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .build()
            .unwrap();
        let template = GateSession::new(gate, BackendChoice::Cached).unwrap();
        let session = template.split_session().unwrap();
        let (tx, rx) = mpsc::sync_channel(queue_depth);
        let worker = Worker {
            shard: 0,
            rx,
            sessions: vec![Some(session)],
            templates: Arc::new(vec![template]),
            meta: Arc::new(vec![GateMeta {
                fingerprint: 0,
                lane_slot: 0,
                waveguide: WaveguideId(0),
                lane: LaneId(0),
                fdm_ok: true,
            }]),
            linger: Duration::from_micros(50),
            max_batch,
            policy: AdaptiveConfig::off(),
            keep_readouts: false,
            stats: Arc::new(SharedStats::default()),
            telemetry: Arc::new(Telemetry::new(1, vec![(WaveguideId(0), LaneId(0), 0)])),
            scratch: DrainScratch::default(),
        };
        (tx, worker)
    }

    #[test]
    fn stragglers_flush_in_capped_batches_when_the_sender_is_gone() {
        // Ten jobs sit in the queue with no sender left: the straggler
        // sweep must answer all of them, flushing mid-drain every time
        // the collection reaches max_batch instead of growing one
        // oversized batch.
        let (tx, mut worker) = test_worker(4, 16);
        let (reply, completions) = mpsc::channel();
        for tag in 0..10u64 {
            tx.send(EvalJob {
                gate: 0,
                tag,
                set: sample_set(tag),
                reply: reply.clone(),
            })
            .unwrap();
        }
        drop(tx);
        drop(reply);
        let mut pending = Vec::new();
        worker.drain_stragglers(&mut pending);
        assert!(pending.is_empty());
        let mut tags: Vec<u64> = completions
            .iter()
            .map(|(tag, result)| {
                result.expect("straggler must be served, not dropped");
                tag
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
        let stats = worker.stats.snapshot();
        // 10 jobs at cap 4: two full mid-drain flushes plus the tail.
        assert_eq!(stats.drain_passes, 3);
        assert_eq!(stats.max_drain, 4);
        assert_eq!(stats.completed, 10);
    }

    #[test]
    fn run_serves_jobs_queued_before_the_last_sender_dropped() {
        // The whole worker loop: jobs buffered at spawn time with the
        // sender already gone must all be answered and the session's
        // LUT must survive into the worker report.
        let (tx, worker) = test_worker(4, 16);
        let (reply, completions) = mpsc::channel();
        for tag in 0..7u64 {
            tx.send(EvalJob {
                gate: 0,
                tag,
                set: sample_set(tag),
                reply: reply.clone(),
            })
            .unwrap();
        }
        drop(tx);
        drop(reply);
        let report = worker.run();
        let mut served = 0;
        for (_, result) in completions.iter() {
            result.expect("queued job dropped");
            served += 1;
        }
        assert_eq!(served, 7);
        assert!(
            report
                .luts
                .iter()
                .any(|(idx, snap)| *idx == 0 && snap.entry_count() > 0),
            "the cached session's LUT must reach the worker report"
        );
    }

    #[test]
    fn shutdown_joins_all_workers_and_persists_survivor_luts_on_panic() {
        // One poisoned worker must not detach the others: shutdown has
        // to join every shard, write the survivors' LUTs, and only then
        // report the panic. (The poisoned worker prints a panic message
        // to stderr — expected noise for this test.)
        let dir =
            std::env::temp_dir().join(format!("magnon_panic_shutdown_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 2,
            lut_dir: Some(dir.clone()),
            adaptive: AdaptiveConfig::off(),
            ..ServeConfig::default()
        });
        let make = |wg: u64| {
            ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
                .channels(8)
                .inputs(3)
                .on_waveguide(WaveguideId(wg))
                .build()
                .unwrap()
        };
        // Waveguides 0 and 1 statically land on different shards of 2.
        let survivor = builder
            .register("maj_survivor", make(0), BackendChoice::Cached)
            .unwrap();
        let victim = builder
            .register("maj_victim", make(1), BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        assert_ne!(
            scheduler.shard_of(survivor),
            scheduler.shard_of(victim),
            "precondition: the gates must live on different shards"
        );
        // Warm both shards' LUTs with real traffic.
        scheduler
            .submit(survivor, sample_set(1))
            .unwrap()
            .wait()
            .unwrap();
        scheduler
            .submit(victim, sample_set(2))
            .unwrap()
            .wait()
            .unwrap();
        // Poison the victim's shard: a job whose gate index is out of
        // range panics the worker when it indexes its session table.
        let victim_shard = scheduler.shard_of(victim).unwrap();
        let (reply, _completions) = mpsc::channel();
        scheduler.senders[victim_shard]
            .send(EvalJob {
                gate: usize::MAX,
                tag: u64::MAX,
                set: sample_set(3),
                reply,
            })
            .unwrap();
        match scheduler.shutdown() {
            Err(ServeError::WorkerPanicked { shards, report }) => {
                assert_eq!(shards, vec![victim_shard]);
                assert!(
                    report.lut_entries_saved > 0,
                    "survivor LUTs must persist: {report:?}"
                );
                assert!(
                    report
                        .lut_files
                        .iter()
                        .any(|p| p.file_name().is_some_and(|n| n == "maj_survivor.mglut")),
                    "the surviving shard's LUT must reach disk: {report:?}"
                );
            }
            other => panic!("a panicked worker must surface as WorkerPanicked, got {other:?}"),
        }
        // And the file on disk is a valid, loadable LUT.
        load_lut(&dir.join("maj_survivor.mglut")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scheduler_is_send_and_sync() {
        // The network front-end shares one scheduler across its accept
        // loop and per-connection threads through an Arc.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scheduler>();
    }

    #[test]
    fn mixed_static_placement_spreads_shared_factor_ids() {
        // Raw modulo would put every even id on shard 0 of 2. The mixed
        // fold must touch both shards for all-even ids.
        let shards: BTreeSet<usize> = (0..16u64)
            .map(|i| static_shard(WaveguideId(i * 2), 2))
            .collect();
        assert_eq!(shards.len(), 2, "all-even ids must reach both shards");
        // And for a handful of worker counts, nothing maps out of
        // range.
        for workers in 1..=5 {
            for id in 0..64u64 {
                assert!(static_shard(WaveguideId(id), workers) < workers);
            }
        }
    }

    #[test]
    fn fingerprints_separate_designs_and_salt_micromag() {
        let guide = Waveguide::paper_default().unwrap();
        let maj = |wg: u64| {
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(3)
                .on_waveguide(WaveguideId(wg))
                .build()
                .unwrap()
        };
        // Same design, different waveguides: compatible (fusable).
        assert_eq!(
            fusion_fingerprint(0, &maj(0), BackendChoice::Cached),
            fusion_fingerprint(1, &maj(9), BackendChoice::Cached),
        );
        // Different backend: not compatible.
        assert_ne!(
            fusion_fingerprint(0, &maj(0), BackendChoice::Cached),
            fusion_fingerprint(0, &maj(0), BackendChoice::Analytic),
        );
        // Different function or operand count: not compatible.
        let xor = ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(2)
            .function(LogicFunction::Xor)
            .build()
            .unwrap();
        assert_ne!(
            fusion_fingerprint(0, &maj(0), BackendChoice::Analytic),
            fusion_fingerprint(0, &xor, BackendChoice::Analytic),
        );
        // Identical frequency plan but inverted readout: compiles to
        // different behavior, so it must not fuse — the fingerprint
        // hashes the compiled prep, not just the builder surface.
        let inverted = ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(3)
            .readout(magnon_core::encoding::ReadoutMode::Inverted)
            .build()
            .unwrap();
        assert_ne!(
            fusion_fingerprint(0, &maj(0), BackendChoice::Cached),
            fusion_fingerprint(0, &inverted, BackendChoice::Cached),
        );
        // Micromag never fuses: even identical designs differ by
        // registration index.
        let settings = Default::default();
        assert_ne!(
            fusion_fingerprint(0, &maj(0), BackendChoice::Micromag(settings)),
            fusion_fingerprint(1, &maj(0), BackendChoice::Micromag(settings)),
        );
    }
}
