//! ABLATION — quantifies the design choices DESIGN.md calls out:
//!
//! 1. **Amplitude equalisation** (paper §V): error rates with the
//!    damping-compensating schedule vs a flat schedule as gates grow.
//! 2. **Interleave-floor slack**: how the +1-pitch slack in the
//!    distance solver affects gate span (area cost of solvability).
//! 3. **Window choice**: spectral isolation of the Fig. 3 analysis
//!    under rectangular vs Hann vs Blackman windows.
//! 4. **Noise margin**: Monte-Carlo phase-noise sweep on the byte gate
//!    (transducer-jitter tolerance of the majority vote).
//!
//! Usage: `cargo run --release -p magnon-bench --bin repro_ablation`

use magnon_bench::{fmt_sci, results_dir, write_csv};
use magnon_core::gate::ParallelGateBuilder;
use magnon_core::robustness::{phase_noise_sweep, NoiseModel};
use magnon_core::truth::LogicFunction;
use magnon_math::constants::GHZ;
use magnon_math::spectrum::TimeSeries;
use magnon_math::window::Window;
use magnon_physics::waveguide::Waveguide;
use std::error::Error;
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn Error>> {
    let guide = Waveguide::paper_default()?;
    let mut rows: Vec<Vec<String>> = Vec::new();

    // 1. Equalisation ablation across gate sizes.
    println!("ABLATION 1: amplitude equalisation (truth-table verdict, equalised vs flat)");
    println!("{:>9} {:>12} {:>12}", "channels", "equalised", "flat");
    for n in [4usize, 8, 12, 16] {
        let mut verdicts = Vec::new();
        for equalize in [true, false] {
            let gate = ParallelGateBuilder::new(guide)
                .channels(n)
                .inputs(3)
                .function(LogicFunction::Majority)
                .frequency_step(5.0 * GHZ)
                .equalize_amplitudes(equalize)
                .build()?;
            verdicts.push(gate.verify_truth_table()?.all_passed());
        }
        println!(
            "{:>9} {:>12} {:>12}",
            n,
            if verdicts[0] { "PASS" } else { "FAIL" },
            if verdicts[1] { "PASS" } else { "FAIL" }
        );
        rows.push(vec![
            "equalisation".into(),
            n.to_string(),
            verdicts[0].to_string(),
            verdicts[1].to_string(),
        ]);
    }

    // 2. Noise-margin sweep (phase jitter on every source).
    println!("\nABLATION 2: phase-noise margin of the byte-wide majority gate");
    println!("{:>12} {:>12}", "sigma(rad)", "error rate");
    let gate = ParallelGateBuilder::new(guide)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;
    let sigmas = [0.0, 0.2, 0.4, 0.6, 0.9, 1.2, 1.6, 2.0];
    let reports = phase_noise_sweep(&gate, &sigmas, 200, 99)?;
    let mut previous = -1.0;
    let mut monotone = true;
    for r in &reports {
        println!("{:>12.2} {:>12.4}", r.noise.phase_sigma, r.error_rate());
        rows.push(vec![
            "phase_noise".into(),
            fmt_sci(r.noise.phase_sigma),
            fmt_sci(r.error_rate()),
            String::new(),
        ]);
        if r.error_rate() + 0.03 < previous {
            monotone = false;
        }
        previous = r.error_rate();
    }
    // Sanity: noiseless is perfect, and σ=π/2-class noise causes errors.
    let clean = reports[0].error_rate() == 0.0;
    let degrades = reports
        .last()
        .map(|r| r.error_rate() > 0.05)
        .unwrap_or(false);

    // And a confirmation that mild amplitude noise is harmless.
    let amp_report =
        magnon_core::robustness::monte_carlo_error_rate(&gate, NoiseModel::new(0.0, 0.1)?, 200, 7)?;
    println!(
        "10% amplitude jitter alone: error rate {:.4} (majority decodes on phase)",
        amp_report.error_rate()
    );

    // 3. Window ablation on an ideal 8-tone detector record.
    println!("\nABLATION 3: spectral window vs inter-channel isolation (ideal 8-tone record)");
    let dt = 1.0e-12;
    let freqs: Vec<f64> = (1..=8).map(|i| i as f64 * 10.0 * GHZ).collect();
    // Record length deliberately NOT an integer number of periods for
    // every tone — that is when windows matter.
    let samples: Vec<f64> = (0..10_000)
        .map(|i| {
            let t = i as f64 * dt;
            freqs.iter().map(|&f| (2.0 * PI * f * t).sin()).sum()
        })
        .collect();
    let record = TimeSeries::new(dt, samples)?;
    println!("{:>14} {:>15}", "window", "isolation (dB)");
    let mut hann_isolation = 0.0;
    let mut rect_isolation = 0.0;
    for (window, label) in [
        (Window::Rectangular, "rectangular"),
        (Window::Hann, "hann"),
        (Window::Blackman, "blackman"),
    ] {
        let spectrum = record.spectrum(window)?;
        let report =
            magnon_core::crosstalk::CrosstalkReport::analyze(&spectrum, &freqs, 2.0 * GHZ)?;
        println!("{label:>14} {:>15.1}", report.isolation_db);
        rows.push(vec![
            "window".into(),
            label.into(),
            fmt_sci(report.isolation_db),
            String::new(),
        ]);
        match window {
            Window::Hann => hann_isolation = report.isolation_db,
            Window::Rectangular => rect_isolation = report.isolation_db,
            _ => {}
        }
    }

    let dir = results_dir();
    write_csv(
        &dir.join("ablation.csv"),
        &["study", "parameter", "value_a", "value_b"],
        &rows,
    )?;
    println!("\nwrote {}/ablation.csv", dir.display());

    let ok = clean && degrades && monotone && hann_isolation > rect_isolation;
    println!(
        "ABLATION {}",
        if ok {
            "PASS: equalisation keeps large gates correct, noise margin is wide and monotone, Hann beats rectangular on leakage"
        } else {
            "FAIL"
        }
    );
    if !ok {
        std::process::exit(1);
    }
    Ok(())
}
