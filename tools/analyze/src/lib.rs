//! Workspace call-graph analyzer: transitive **can-panic** /
//! **can-block** / **can-allocate** reachability proofs for the
//! serving hot paths.
//!
//! The PR 8 linter (`magnon-lint`) is lexical and per-file: a drain
//! path that calls a helper in another module which calls `unwrap()`
//! passes it. This tool closes that hole. It parses every `crates/*`
//! and `tools/*` source with the shared lint lexer (no type inference
//! — names only), builds a workspace call graph, seeds each function
//! with its *intrinsic* facts (the `unwrap`/`sleep`/`push` tokens on
//! its own lines), and propagates them transitively. A checked-in
//! policy file (`analysis-policy.toml`) declares root functions and
//! the facts they must be free of; violations come with the full call
//! chain from root to offending site.
//!
//! ```text
//! cargo run -p magnon-analyze                  # prove the policy roots
//! cargo run -p magnon-analyze -- --explain magnon_serve::scheduler::Worker::serve_drain
//! cargo run -p magnon-analyze -- --json report.json
//! cargo run -p magnon-analyze -- --self-test   # plant + find a 3-deep violation
//! ```
//!
//! Known blind spots, by design (documented over clever): integer
//! division/overflow is not modeled (type-blind token scan), `.clone()`
//! is not an alloc token (cloning a `u64` is free and the scan cannot
//! tell), and calls through function-pointer *variables* are invisible
//! (references like `map(Type::method)` **are** tracked). Ambiguous
//! method calls get conservative edges to every candidate and are
//! reported, never silently dropped.

pub mod locks;
mod parse;
pub mod policy;
pub mod report;

use std::collections::{HashMap, HashSet};
use std::path::Path;

pub use parse::{module_path_of, parse_file};
pub use policy::{parse_policy, Policy, RootSpec, TrustSpec};

/// The three transitive facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fact {
    Panic,
    Block,
    Alloc,
}

impl Fact {
    pub const ALL: [Fact; 3] = [Fact::Panic, Fact::Block, Fact::Alloc];

    pub fn id(self) -> &'static str {
        match self {
            Fact::Panic => "can-panic",
            Fact::Block => "can-block",
            Fact::Alloc => "can-alloc",
        }
    }

    pub fn index(self) -> usize {
        match self {
            Fact::Panic => 0,
            Fact::Block => 1,
            Fact::Alloc => 2,
        }
    }

    pub fn from_id(id: &str) -> Option<Fact> {
        Fact::ALL.into_iter().find(|f| f.id() == id)
    }
}

/// One function in the workspace graph.
#[derive(Debug)]
pub struct FnDef {
    /// `magnon_serve::scheduler::Worker::serve_drain`.
    pub id: String,
    pub crate_name: String,
    pub name: String,
    /// Impl/trait type for methods, `None` for free functions.
    pub owner: Option<String>,
    /// Module path within the crate (file modules + inline mods).
    pub module: Vec<String>,
    pub file: String,
    pub line: usize,
    pub calls: Vec<CallExpr>,
    pub sites: Vec<Site>,
    pub locks: Vec<LockSite>,
    pub sends: Vec<SendSite>,
    /// Lines covered by a `lock-order` / `lock-block` waiver comment
    /// (the comment itself or up to two lines below it).
    pub lock_order_waived: Vec<usize>,
    pub lock_block_waived: Vec<usize>,
}

#[derive(Debug, Clone)]
pub enum CallKind {
    /// `helper(…)` — resolved within the crate.
    Bare(String),
    /// `a::b::f(…)` or a fn reference `Type::method` passed by name.
    Qualified(Vec<String>),
    /// `.name(…)`; `on_self` marks a literal `self.name(…)` receiver.
    Method { name: String, on_self: bool },
}

#[derive(Debug, Clone)]
pub struct CallExpr {
    pub kind: CallKind,
    pub line: usize,
    /// Per-fact waiver reason found on the call line (suppresses
    /// propagation of that fact through this call site).
    pub waived: [Option<String>; 3],
}

/// An intrinsic fact site: a token on a function's own lines.
#[derive(Debug, Clone)]
pub struct Site {
    pub fact: Fact,
    pub token: String,
    pub line: usize,
    pub waived: Option<String>,
}

/// One `.lock()` acquisition site with its inferred guard extent.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Identifier left of `.lock(` — a field, local, or static name.
    /// `"?"` when no identifier precedes the call.
    pub receiver: String,
    pub line: usize,
    /// Last line of the guard's extent; equals `line` for guards
    /// consumed inside a larger expression.
    pub release_line: usize,
}

/// A `.send(` call site — blocking when the channel is bounded.
#[derive(Debug, Clone)]
pub struct SendSite {
    pub receiver: String,
    pub line: usize,
}

/// One analyzer waiver comment (rule + mandatory reason), as written.
#[derive(Debug, Clone)]
pub struct WaiverDecl {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// Imports declared by one file.
#[derive(Debug, Default)]
pub struct FileUses {
    /// Crates named by `use` statements (underscored).
    pub crates: Vec<String>,
    /// `use a::b::C;` / `use a::B as C;` → (`C`, full path).
    pub aliases: Vec<(String, Vec<String>)>,
    /// `use a::b::*;` → prefix paths for bare-call fallback.
    pub globs: Vec<Vec<String>>,
}

impl FileUses {
    fn alias(&self, name: &str) -> Option<&[String]> {
        self.aliases
            .iter()
            .find(|(a, _)| a == name)
            .map(|(_, p)| p.as_slice())
    }
}

/// [`parse_file`]'s output for one source file.
pub struct FileParse {
    pub fns: Vec<FnDef>,
    pub uses: FileUses,
    pub waiver_decls: Vec<WaiverDecl>,
}

/// A resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    pub caller: usize,
    pub callee: usize,
    pub line: usize,
    pub waived: [bool; 3],
}

/// A method/path call that matched more than one candidate. Reported,
/// and given conservative edges to *every* candidate.
#[derive(Debug, Clone)]
pub struct Ambiguity {
    pub caller: String,
    pub file: String,
    pub line: usize,
    pub call: String,
    pub candidates: Vec<String>,
}

/// One input source file.
pub struct SourceFile {
    pub crate_name: String,
    pub rel: String,
    pub text: String,
}

/// The assembled workspace graph plus computed facts.
pub struct Analysis {
    pub fns: Vec<FnDef>,
    pub edges: Vec<Edge>,
    pub ambiguities: Vec<Ambiguity>,
    pub resolved_calls: usize,
    pub external_calls: usize,
    pub files: usize,
    pub waiver_decls: Vec<WaiverDecl>,
    /// `can[fact.index()][fn]` after [`compute_facts`].
    pub can: [Vec<bool>; 3],
    by_id: HashMap<String, usize>,
    radj: Vec<Vec<usize>>,
    fadj: Vec<Vec<usize>>,
    trusted: [HashSet<usize>; 3],
}

impl Analysis {
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Functions whose `id` ends with `::suffix` — `--explain` accepts
    /// partial paths.
    pub fn find_by_suffix(&self, suffix: &str) -> Vec<usize> {
        if let Some(i) = self.index_of(suffix) {
            return vec![i];
        }
        let pat = format!("::{suffix}");
        (0..self.fns.len())
            .filter(|&i| self.fns[i].id.ends_with(&pat))
            .collect()
    }

    /// Count of functions reachable from `root` over all edges.
    pub fn reachable_count(&self, root: usize) -> usize {
        let mut seen = vec![false; self.fns.len()];
        let mut stack = vec![root];
        seen[root] = true;
        let mut n = 0;
        while let Some(f) = stack.pop() {
            n += 1;
            for &e in &self.fadj[f] {
                let c = self.edges[e].callee;
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        n
    }
}

enum Resolution {
    Edges(Vec<usize>),
    Ambiguous(Vec<usize>),
    External,
}

/// Parses and links a set of sources into a call graph. Facts are not
/// computed yet — call [`compute_facts`] with the policy's trust list.
pub fn analyze_sources(sources: &[SourceFile], ignore_methods: &[String]) -> Analysis {
    let crate_names: HashSet<String> = sources.iter().map(|s| s.crate_name.clone()).collect();
    let mut fns: Vec<FnDef> = Vec::new();
    let mut uses_by_file: HashMap<String, FileUses> = HashMap::new();
    let mut waiver_decls = Vec::new();
    for s in sources {
        let fp = parse_file(&s.crate_name, &s.rel, &s.text);
        fns.extend(fp.fns);
        uses_by_file.insert(s.rel.clone(), fp.uses);
        waiver_decls.extend(fp.waiver_decls);
    }
    let mut by_id = HashMap::new();
    let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_id.entry(f.id.clone()).or_insert(i);
        if f.owner.is_some() {
            methods_by_name.entry(f.name.as_str()).or_default().push(i);
        } else {
            free_by_name.entry(f.name.as_str()).or_default().push(i);
        }
    }
    let empty_uses = FileUses::default();
    let mut edges: Vec<Edge> = Vec::new();
    let mut ambiguities = Vec::new();
    let mut resolved_calls = 0;
    let mut external_calls = 0;
    for caller in 0..fns.len() {
        let f = &fns[caller];
        let uses = uses_by_file.get(&f.file).unwrap_or(&empty_uses);
        for call in &f.calls {
            let res = resolve_call(
                f,
                uses,
                call,
                &fns,
                &by_id,
                &free_by_name,
                &methods_by_name,
                &crate_names,
                ignore_methods,
            );
            let (targets, ambiguous) = match res {
                Resolution::Edges(t) => {
                    resolved_calls += 1;
                    (t, false)
                }
                Resolution::Ambiguous(t) => {
                    resolved_calls += 1;
                    (t, true)
                }
                Resolution::External => {
                    external_calls += 1;
                    continue;
                }
            };
            if ambiguous {
                ambiguities.push(Ambiguity {
                    caller: f.id.clone(),
                    file: f.file.clone(),
                    line: call.line,
                    call: call_label(&call.kind),
                    candidates: targets.iter().map(|&t| fns[t].id.clone()).collect(),
                });
            }
            let waived = [
                call.waived[0].is_some(),
                call.waived[1].is_some(),
                call.waived[2].is_some(),
            ];
            for t in targets {
                edges.push(Edge {
                    caller,
                    callee: t,
                    line: call.line,
                    waived,
                });
            }
        }
    }
    let mut fadj = vec![Vec::new(); fns.len()];
    let mut radj = vec![Vec::new(); fns.len()];
    for (ei, e) in edges.iter().enumerate() {
        fadj[e.caller].push(ei);
        radj[e.callee].push(ei);
    }
    Analysis {
        files: sources.len(),
        can: [
            vec![false; fns.len()],
            vec![false; fns.len()],
            vec![false; fns.len()],
        ],
        trusted: [HashSet::new(), HashSet::new(), HashSet::new()],
        fns,
        edges,
        ambiguities,
        resolved_calls,
        external_calls,
        waiver_decls,
        by_id,
        radj,
        fadj,
    }
}

fn call_label(kind: &CallKind) -> String {
    match kind {
        CallKind::Bare(n) => format!("{n}()"),
        CallKind::Qualified(segs) => segs.join("::"),
        CallKind::Method { name, .. } => format!(".{name}()"),
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    caller: &FnDef,
    uses: &FileUses,
    call: &CallExpr,
    fns: &[FnDef],
    by_id: &HashMap<String, usize>,
    free_by_name: &HashMap<&str, Vec<usize>>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
    crate_names: &HashSet<String>,
    ignore_methods: &[String],
) -> Resolution {
    match &call.kind {
        CallKind::Method { name, on_self } => {
            if ignore_methods.iter().any(|m| m == name) {
                return Resolution::External;
            }
            let Some(cands) = methods_by_name.get(name.as_str()) else {
                return Resolution::External;
            };
            if *on_self {
                let own: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        fns[c].crate_name == caller.crate_name && fns[c].owner == caller.owner
                    })
                    .collect();
                if own.len() == 1 {
                    return Resolution::Edges(own);
                }
            }
            let scoped: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    fns[c].crate_name == caller.crate_name
                        || uses.crates.contains(&fns[c].crate_name)
                })
                .collect();
            match scoped.len() {
                0 => Resolution::External,
                1 => Resolution::Edges(scoped),
                _ => Resolution::Ambiguous(scoped),
            }
        }
        CallKind::Bare(name) => {
            if let Some(path) = uses.alias(name) {
                return resolve_qualified(
                    caller,
                    uses,
                    path.to_vec(),
                    fns,
                    by_id,
                    methods_by_name,
                    crate_names,
                );
            }
            for g in &uses.globs {
                let mut id = g.join("::");
                id.push_str("::");
                id.push_str(name);
                if let Some(&i) = by_id.get(&id) {
                    return Resolution::Edges(vec![i]);
                }
            }
            let cands: Vec<usize> = free_by_name
                .get(name.as_str())
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&c| fns[c].crate_name == caller.crate_name)
                        .collect()
                })
                .unwrap_or_default();
            if let Some(&exact) = cands.iter().find(|&&c| fns[c].module == caller.module) {
                return Resolution::Edges(vec![exact]);
            }
            match cands.len() {
                0 => Resolution::External,
                1 => Resolution::Edges(cands),
                _ => Resolution::Ambiguous(cands),
            }
        }
        CallKind::Qualified(segs) => resolve_qualified(
            caller,
            uses,
            segs.clone(),
            fns,
            by_id,
            methods_by_name,
            crate_names,
        ),
    }
}

fn resolve_qualified(
    caller: &FnDef,
    uses: &FileUses,
    mut segs: Vec<String>,
    fns: &[FnDef],
    by_id: &HashMap<String, usize>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
    crate_names: &HashSet<String>,
) -> Resolution {
    if segs.is_empty() {
        return Resolution::External;
    }
    match segs[0].as_str() {
        "crate" => segs[0] = caller.crate_name.clone(),
        "self" => {
            let mut p = vec![caller.crate_name.clone()];
            p.extend(caller.module.iter().cloned());
            p.extend(segs.drain(1..));
            segs = p;
        }
        "super" => {
            let mut p = vec![caller.crate_name.clone()];
            let parents = caller.module.len().saturating_sub(1);
            p.extend(caller.module.iter().take(parents).cloned());
            p.extend(segs.drain(1..));
            segs = p;
        }
        "Self" => {
            // `Self::assoc(…)` — methods of the current impl owner.
            let Some(name) = segs.last() else {
                return Resolution::External;
            };
            let own: Vec<usize> = methods_by_name
                .get(name.as_str())
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&c| {
                            fns[c].crate_name == caller.crate_name && fns[c].owner == caller.owner
                        })
                        .collect()
                })
                .unwrap_or_default();
            return match own.len() {
                0 => Resolution::External,
                1 => Resolution::Edges(own),
                _ => Resolution::Ambiguous(own),
            };
        }
        first => {
            if let Some(path) = uses.alias(first) {
                let mut p = path.to_vec();
                p.extend(segs.drain(1..));
                segs = p;
            }
        }
    }
    if ["std", "core", "alloc"].contains(&segs[0].as_str()) {
        return Resolution::External;
    }
    if let Some(&i) = by_id.get(&segs.join("::")) {
        return Resolution::Edges(vec![i]);
    }
    // Module-relative and crate-root-relative tries.
    {
        let mut p = vec![caller.crate_name.clone()];
        p.extend(caller.module.iter().cloned());
        p.extend(segs.iter().cloned());
        if let Some(&i) = by_id.get(&p.join("::")) {
            return Resolution::Edges(vec![i]);
        }
        let mut p = vec![caller.crate_name.clone()];
        p.extend(segs.iter().cloned());
        if let Some(&i) = by_id.get(&p.join("::")) {
            return Resolution::Edges(vec![i]);
        }
    }
    // Suffix match, scoped to the addressed crate or the caller's view.
    let known_crate = crate_names.contains(&segs[0]);
    let match_segs: &[String] = if known_crate { &segs[1..] } else { &segs[..] };
    if match_segs.is_empty() {
        return Resolution::External;
    }
    let suffix = format!("::{}", match_segs.join("::"));
    let cands: Vec<usize> = (0..fns.len())
        .filter(|&c| {
            let in_scope = if known_crate {
                fns[c].crate_name == segs[0]
            } else {
                fns[c].crate_name == caller.crate_name || uses.crates.contains(&fns[c].crate_name)
            };
            in_scope && fns[c].id.ends_with(&suffix)
        })
        .collect();
    match cands.len() {
        0 => Resolution::External,
        1 => Resolution::Edges(cands),
        _ => Resolution::Ambiguous(cands),
    }
}

/// Propagates intrinsic facts up the call graph to a fixpoint.
///
/// For fact `r`: a function *can-r* if it has an unwaived intrinsic
/// site for `r`, or calls (through an unwaived call site) a non-trusted
/// function that can-r. Trust entries cut propagation at an audited
/// boundary — the trusted function's own facts are still computed and
/// reported, but callers do not inherit them.
///
/// Returns errors for trust entries that name no known function (a
/// typo in the policy must not silently widen the proof).
pub fn compute_facts(analysis: &mut Analysis, trust: &[TrustSpec]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut trusted: [HashSet<usize>; 3] = [HashSet::new(), HashSet::new(), HashSet::new()];
    for t in trust {
        let Some(idx) = analysis.index_of(&t.func) else {
            errors.push(format!(
                "policy trust entry names unknown function `{}`",
                t.func
            ));
            continue;
        };
        for &fact in &t.rules {
            trusted[fact.index()].insert(idx);
        }
    }
    for fact in Fact::ALL {
        let r = fact.index();
        let n = analysis.fns.len();
        let mut can = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (i, f) in analysis.fns.iter().enumerate() {
            if f.sites.iter().any(|s| s.fact == fact && s.waived.is_none()) {
                can[i] = true;
                stack.push(i);
            }
        }
        while let Some(callee) = stack.pop() {
            if trusted[r].contains(&callee) {
                continue; // audited boundary: callers do not inherit
            }
            for &ei in &analysis.radj[callee] {
                let e = &analysis.edges[ei];
                if e.waived[r] || can[e.caller] {
                    continue;
                }
                can[e.caller] = true;
                stack.push(e.caller);
            }
        }
        analysis.can[r] = can;
    }
    analysis.trusted = trusted;
    errors
}

/// One hop of an explain chain.
pub struct ChainHop {
    pub fn_idx: usize,
    /// Line of the call that led here (None for the root hop).
    pub via_line: Option<usize>,
}

/// A root → … → site path for one fact.
pub struct Chain {
    pub fact: Fact,
    pub hops: Vec<ChainHop>,
    pub site_token: String,
    pub site_line: usize,
}

/// Shortest call chain from `root` to an unwaived intrinsic site of
/// `fact`, honoring waived edges and trust boundaries. `None` when the
/// root is proven free of the fact.
pub fn explain(analysis: &Analysis, root: usize, fact: Fact) -> Option<Chain> {
    let r = fact.index();
    if !analysis.can[r].get(root).copied().unwrap_or(false) {
        return None;
    }
    let own_site = |f: usize| {
        analysis.fns[f]
            .sites
            .iter()
            .find(|s| s.fact == fact && s.waived.is_none())
    };
    // BFS with parent pointers, pruned to the can-set.
    let mut parent: HashMap<usize, (usize, usize)> = HashMap::new(); // fn -> (parent fn, call line)
    let mut queue = std::collections::VecDeque::new();
    let mut target = None;
    queue.push_back(root);
    let mut seen = HashSet::new();
    seen.insert(root);
    'bfs: while let Some(f) = queue.pop_front() {
        if own_site(f).is_some() {
            target = Some(f);
            break 'bfs;
        }
        if trusted_for(analysis, f, r) && f != root {
            continue;
        }
        for &ei in &analysis.fadj[f] {
            let e = &analysis.edges[ei];
            if e.waived[r] || !analysis.can[r][e.callee] {
                continue;
            }
            if trusted_for(analysis, e.callee, r) {
                continue;
            }
            if seen.insert(e.callee) {
                parent.insert(e.callee, (f, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    let target = target?;
    let site = own_site(target)?;
    let mut rev = vec![ChainHop {
        fn_idx: target,
        via_line: None,
    }];
    let mut cur = target;
    while let Some(&(p, line)) = parent.get(&cur) {
        if let Some(last) = rev.last_mut() {
            last.via_line = Some(line);
        }
        rev.push(ChainHop {
            fn_idx: p,
            via_line: None,
        });
        cur = p;
    }
    rev.reverse();
    Some(Chain {
        fact,
        hops: rev,
        site_token: site.token.clone(),
        site_line: site.line,
    })
}

fn trusted_for(analysis: &Analysis, f: usize, r: usize) -> bool {
    analysis.trusted[r].contains(&f)
}

/// Renders one chain human-readably (the `--explain` output).
pub fn render_chain(analysis: &Analysis, chain: &Chain) -> String {
    let mut out = String::new();
    for (i, hop) in chain.hops.iter().enumerate() {
        let f = &analysis.fns[hop.fn_idx];
        if i == 0 {
            out.push_str(&format!("  {}  ({}:{})\n", f.id, f.file, f.line));
        } else {
            let via = hop.via_line.unwrap_or(0);
            let caller = &analysis.fns[chain.hops[i - 1].fn_idx];
            out.push_str(&format!(
                "   → {}  (call at {}:{})\n",
                f.id, caller.file, via
            ));
        }
    }
    let last = &analysis.fns[chain.hops.last().map(|h| h.fn_idx).unwrap_or(0)];
    out.push_str(&format!(
        "  site: `{}` at {}:{}\n",
        chain.site_token, last.file, chain.site_line
    ));
    out
}

// ---------------------------------------------------------------------------
// Policy checking.
// ---------------------------------------------------------------------------

/// One checked policy root.
pub struct RootResult {
    pub spec: RootSpec,
    pub fn_idx: Option<usize>,
    pub reachable: usize,
    pub violations: Vec<Chain>,
}

/// The full policy verdict.
pub struct PolicyResults {
    pub roots: Vec<RootResult>,
    /// Hard errors: unresolved roots/trust entries, reasonless waivers.
    pub errors: Vec<String>,
    /// The lock-order & blocking-discipline pass verdict.
    pub lock: locks::LockResults,
}

impl PolicyResults {
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
            && self.roots.iter().all(|r| r.violations.is_empty())
            && self.lock.violations.is_empty()
    }
}

/// Computes facts under the policy's trust list, then checks every
/// root's deny list. Reasonless waivers and unresolvable policy
/// entries are errors, not warnings — a silently skipped proof is
/// worse than no proof.
pub fn check_policy(analysis: &mut Analysis, policy: &Policy) -> PolicyResults {
    let mut errors = compute_facts(analysis, &policy.trust);
    for w in &analysis.waiver_decls {
        if w.reason.is_empty() {
            errors.push(format!(
                "{}:{}: waiver `analyze: allow({})` has no reason — every waiver must say why",
                w.file, w.line, w.rule
            ));
        }
        if Fact::from_id(&w.rule).is_none() && !locks::WAIVER_RULES.contains(&w.rule.as_str()) {
            errors.push(format!(
                "{}:{}: waiver names unknown rule `{}`",
                w.file, w.line, w.rule
            ));
        }
    }
    let mut roots = Vec::new();
    for spec in &policy.roots {
        let fn_idx = analysis.index_of(&spec.func);
        if fn_idx.is_none() {
            errors.push(format!(
                "policy root `{}` does not resolve to any workspace function",
                spec.func
            ));
        }
        let mut violations = Vec::new();
        let mut reachable = 0;
        if let Some(idx) = fn_idx {
            reachable = analysis.reachable_count(idx);
            for &fact in &spec.deny {
                if let Some(chain) = explain(analysis, idx, fact) {
                    violations.push(chain);
                }
            }
        }
        roots.push(RootResult {
            spec: spec.clone(),
            fn_idx,
            reachable,
            violations,
        });
    }
    let mut lock = locks::check_locks(analysis, policy);
    errors.append(&mut lock.errors);
    PolicyResults {
        roots,
        errors,
        lock,
    }
}

// ---------------------------------------------------------------------------
// Workspace loading.
// ---------------------------------------------------------------------------

/// Reads every non-ignored `.rs` file under `crates/` and `tools/`,
/// tagging each with its crate's underscored package name.
pub fn load_workspace(root: &Path, ignore_files: &[String]) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for sub in ["crates", "tools"] {
        magnon_lint::collect_rs_files(&root.join(sub), &mut files);
    }
    let mut crate_name_cache: HashMap<String, String> = HashMap::new();
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if ignore_files.iter().any(|f| &rel == f) {
            continue;
        }
        let parts: Vec<&str> = rel.splitn(3, '/').collect();
        if parts.len() < 3 {
            continue;
        }
        let crate_dir = format!("{}/{}", parts[0], parts[1]);
        let crate_name = crate_name_cache
            .entry(crate_dir.clone())
            .or_insert_with(|| {
                package_name(&root.join(&crate_dir).join("Cargo.toml"))
                    .unwrap_or_else(|| parts[1].to_string())
                    .replace('-', "_")
            })
            .clone();
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        out.push(SourceFile {
            crate_name,
            rel,
            text,
        });
    }
    out
}

fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Self-test: plant a transitive violation three calls deep, find it.
// ---------------------------------------------------------------------------

fn fixture_sources() -> Vec<SourceFile> {
    let serve_src = r#"
pub struct Drain;

impl Drain {
    pub fn drain_loop(&self) -> u32 {
        stage_one(7)
    }

    pub fn safe_loop(&self) -> u32 {
        // analyze: allow(can-panic) — fixture: deliberate waived site
        self.checked().unwrap()
    }

    fn checked(&self) -> Option<u32> {
        Some(1)
    }
}

pub fn stage_one(x: u32) -> u32 {
    fix_core::helpers::decode_step(x)
}
"#;
    let core_src = r#"
pub fn decode_step(x: u32) -> u32 {
    finish(x)
}

fn finish(x: u32) -> u32 {
    table_lookup(x).unwrap()
}

fn table_lookup(x: u32) -> Option<u32> {
    Some(x + 1)
}
"#;
    // Two crates define a method named `flush` and the caller imports
    // both: the call must be reported ambiguous, with edges to both.
    let amb_a = r#"
pub struct SinkA;
impl SinkA {
    pub fn flush(&self) {}
}
"#;
    let amb_b = r#"
pub struct SinkB;
impl SinkB {
    pub fn flush(&self) {
        let _v: Vec<u32> = Vec::with_capacity(4);
    }
}
"#;
    let amb_caller = r#"
use fix_amba::SinkA;
use fix_ambb::SinkB;

pub fn pump(sink: &SinkA) {
    sink.flush();
}
"#;
    // The lock fixture plants every defect kind the lock pass must
    // find: an A→B / B→A cycle, a blocking `.recv()` under a guard, a
    // waived twin that must pass, and a non-reentrant double-acquire.
    let lock_src = r#"
use std::sync::Mutex;
use std::sync::mpsc::Receiver;

pub struct Hub {
    queue: Mutex<Vec<u32>>,
    placement: Mutex<Vec<u32>>,
    rx: Receiver<u32>,
}

impl Hub {
    pub fn route_submit(&self) {
        let mut q = self.queue.lock().unwrap();
        q.push(1);
        self.place(1);
    }

    fn place(&self, x: u32) {
        let mut p = self.placement.lock().unwrap();
        p.push(x);
    }

    pub fn rebalance(&self) {
        let p = self.placement.lock().unwrap();
        for x in p.iter() {
            self.enqueue(*x);
        }
    }

    fn enqueue(&self, x: u32) {
        self.queue.lock().unwrap().push(x);
    }

    pub fn drain_wait(&self) -> u32 {
        let q = self.queue.lock().unwrap();
        let v = self.rx.recv().unwrap();
        q.len() as u32 + v
    }

    pub fn audited_wait(&self) -> u32 {
        let q = self.queue.lock().unwrap();
        // analyze: allow(lock-block) — fixture: the waived wait must pass
        let v = self.rx.recv().unwrap();
        q.len() as u32 + v
    }

    pub fn reenter(&self) {
        let q = self.queue.lock().unwrap();
        self.enqueue(7);
        drop(q);
    }
}
"#;
    vec![
        SourceFile {
            crate_name: "fix_serve".into(),
            rel: "crates/fix_serve/src/drain.rs".into(),
            text: serve_src.into(),
        },
        SourceFile {
            crate_name: "fix_core".into(),
            rel: "crates/fix_core/src/helpers.rs".into(),
            text: core_src.into(),
        },
        SourceFile {
            crate_name: "fix_amba".into(),
            rel: "crates/fix_amba/src/lib.rs".into(),
            text: amb_a.into(),
        },
        SourceFile {
            crate_name: "fix_ambb".into(),
            rel: "crates/fix_ambb/src/lib.rs".into(),
            text: amb_b.into(),
        },
        SourceFile {
            crate_name: "fix_pump".into(),
            rel: "crates/fix_pump/src/lib.rs".into(),
            text: amb_caller.into(),
        },
        SourceFile {
            crate_name: "fix_lock".into(),
            rel: "crates/fix_lock/src/hub.rs".into(),
            text: lock_src.into(),
        },
    ]
}

fn fixture_policy() -> Policy {
    parse_policy(
        r#"
[[root]]
fn = "fix_serve::drain::Drain::drain_loop"
deny = ["can-panic"]
reason = "fixture: the planted violation must be found"

[[root]]
fn = "fix_serve::drain::Drain::safe_loop"
deny = ["can-panic"]
reason = "fixture: the waived site must pass"

[[lock]]
class = "fix_queue"
receivers = ["queue"]
crate = "fix_lock"
before = ["fix_placement"]
reason = "fixture: queue is the outer lock"

[[lock]]
class = "fix_placement"
receivers = ["placement"]
crate = "fix_lock"
reason = "fixture: placement is the inner lock"

[locks]
strict = ["fix_lock"]
"#,
    )
    .expect("fixture policy parses")
}

/// Plants a transitive panic three calls deep
/// (`drain_loop → stage_one → decode_step → finish → .unwrap()`),
/// a waived violation, and an ambiguous cross-crate method call; the
/// analyzer must find the first, pass the second (inventorying its
/// waiver), and report the third. Returns the rendered evidence.
pub fn self_test() -> Result<String, String> {
    let sources = fixture_sources();
    let policy = fixture_policy();
    let mut analysis = analyze_sources(&sources, &policy.ignore_methods);
    let results = check_policy(&mut analysis, &policy);
    let planted = results
        .roots
        .iter()
        .find(|r| r.spec.func.ends_with("drain_loop"))
        .ok_or("self-test: planted root missing from results")?;
    let chain = planted
        .violations
        .first()
        .ok_or("self-test FAILED: the planted 3-deep transitive panic was not found")?;
    if chain.hops.len() < 4 {
        return Err(format!(
            "self-test FAILED: chain has {} hops, expected the full 3-call depth",
            chain.hops.len()
        ));
    }
    if chain.site_token != ".unwrap()" {
        return Err(format!(
            "self-test FAILED: expected the `.unwrap()` site, got `{}`",
            chain.site_token
        ));
    }
    let waived_root = results
        .roots
        .iter()
        .find(|r| r.spec.func.ends_with("safe_loop"))
        .ok_or("self-test: waived root missing from results")?;
    if !waived_root.violations.is_empty() {
        return Err("self-test FAILED: the waived violation was reported anyway".into());
    }
    if !analysis
        .waiver_decls
        .iter()
        .any(|w| w.rule == "can-panic" && w.reason.contains("fixture"))
    {
        return Err("self-test FAILED: the waiver did not appear in the inventory".into());
    }
    if !analysis
        .ambiguities
        .iter()
        .any(|a| a.call == ".flush()" && a.candidates.len() == 2)
    {
        return Err("self-test FAILED: the ambiguous method call was silently dropped".into());
    }
    // The lock fixture: a planted fix_queue ↔ fix_placement cycle, a
    // blocking recv under a guard, a double-acquire, and a waived wait
    // that must pass.
    let lock = &results.lock;
    let cycle = lock
        .violations
        .iter()
        .find(|v| v.kind == "deadlock-cycle")
        .ok_or("self-test FAILED: the planted lock-order cycle was not found")?;
    if !(cycle.classes.contains(&"fix_queue".to_string())
        && cycle.classes.contains(&"fix_placement".to_string()))
    {
        return Err(format!(
            "self-test FAILED: cycle names wrong classes: {:?}",
            cycle.classes
        ));
    }
    let blocked = lock
        .violations
        .iter()
        .find(|v| v.kind == "lock-block" && v.detail.contains(".recv()"))
        .ok_or("self-test FAILED: the planted recv-under-lock was not found")?;
    if !blocked.detail.contains("drain_wait") {
        return Err("self-test FAILED: lock-block evidence names the wrong function".into());
    }
    if lock
        .violations
        .iter()
        .any(|v| v.detail.contains("audited_wait"))
    {
        return Err("self-test FAILED: the waived lock-block site was reported anyway".into());
    }
    if !lock
        .violations
        .iter()
        .any(|v| v.kind == "double-acquire" && v.detail.contains("reenter"))
    {
        return Err("self-test FAILED: the planted double-acquire was not found".into());
    }
    if !analysis
        .waiver_decls
        .iter()
        .any(|w| w.rule == "lock-block" && w.reason.contains("fixture"))
    {
        return Err("self-test FAILED: the lock-block waiver did not reach the inventory".into());
    }
    let mut out = String::from("planted violation found (3 calls deep):\n");
    out.push_str(&render_chain(&analysis, chain));
    out.push_str(&format!(
        "waived site passed and is inventoried; {} ambiguous call(s) reported\n",
        analysis.ambiguities.len()
    ));
    out.push_str(&format!(
        "lock pass: planted cycle found ({}), recv-under-lock found, double-acquire found, waived wait passed",
        cycle.classes.join(" → ")
    ));
    Ok(out)
}

#[cfg(test)]
mod tests;
