//! `analysis-policy.toml` — a hand-rolled parser for the small TOML
//! subset the policy needs (no external deps in the toolchain):
//! `[[root]]` / `[[trust]]` array-of-tables, an `[ignore]` table,
//! string values, and single- or multi-line string arrays.

use crate::Fact;

/// A root function and the facts it must be transitively free of.
#[derive(Debug, Clone)]
pub struct RootSpec {
    pub func: String,
    pub deny: Vec<Fact>,
    pub reason: String,
}

/// An audited boundary: callers of `func` do not inherit `rules` from
/// it. The trusted function's own facts are still computed — trust
/// cuts propagation, it does not blind the analyzer.
#[derive(Debug, Clone)]
pub struct TrustSpec {
    pub func: String,
    pub rules: Vec<Fact>,
    pub reason: String,
}

/// The parsed policy.
#[derive(Debug, Default)]
pub struct Policy {
    pub roots: Vec<RootSpec>,
    pub trust: Vec<TrustSpec>,
    /// Method names never resolved against workspace impls (std-common
    /// names like `push`/`get` whose receiver is almost always a std
    /// type; their effects are covered by intrinsic tokens instead).
    pub ignore_methods: Vec<String>,
    /// Files excluded from the graph (e.g. `cfg(mcheck)`-only shims
    /// that do not exist in the production build).
    pub ignore_files: Vec<String>,
}

#[derive(PartialEq)]
enum Section {
    None,
    Root,
    Trust,
    Ignore,
}

/// Strips a `#` comment that is outside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str, line_no: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!(
            "policy line {line_no}: expected a quoted string, got `{v}`"
        ))
    }
}

fn parse_array(v: &str, line_no: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("policy line {line_no}: expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, line_no)?);
    }
    Ok(out)
}

fn parse_facts(items: &[String], line_no: usize) -> Result<Vec<Fact>, String> {
    items
        .iter()
        .map(|s| {
            Fact::from_id(s).ok_or_else(|| {
                format!(
                    "policy line {line_no}: unknown rule `{s}` (expected can-panic/can-block/can-alloc)"
                )
            })
        })
        .collect()
}

/// Parses the policy text. Every root and trust entry must name a
/// function, at least one rule, and a non-empty reason.
pub fn parse_policy(text: &str) -> Result<Policy, String> {
    let mut policy = Policy::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let mut line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        match line.as_str() {
            "[[root]]" => {
                section = Section::Root;
                policy.roots.push(RootSpec {
                    func: String::new(),
                    deny: Vec::new(),
                    reason: String::new(),
                });
                continue;
            }
            "[[trust]]" => {
                section = Section::Trust;
                policy.trust.push(TrustSpec {
                    func: String::new(),
                    rules: Vec::new(),
                    reason: String::new(),
                });
                continue;
            }
            "[ignore]" => {
                section = Section::Ignore;
                continue;
            }
            s if s.starts_with('[') => {
                return Err(format!("policy line {line_no}: unknown section `{s}`"));
            }
            _ => {}
        }
        let Some((key, mut value)) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        else {
            return Err(format!(
                "policy line {line_no}: expected `key = value`, got `{line}`"
            ));
        };
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, more) in lines.by_ref() {
                let more = strip_comment(more).trim();
                value.push(' ');
                value.push_str(more);
                if more.ends_with(']') {
                    break;
                }
            }
        }
        line = String::new();
        let _ = line;
        match (&section, key.as_str()) {
            (Section::Root, "fn") => {
                if let Some(r) = policy.roots.last_mut() {
                    r.func = parse_string(&value, line_no)?;
                }
            }
            (Section::Root, "deny") => {
                if let Some(r) = policy.roots.last_mut() {
                    r.deny = parse_facts(&parse_array(&value, line_no)?, line_no)?;
                }
            }
            (Section::Root, "reason") => {
                if let Some(r) = policy.roots.last_mut() {
                    r.reason = parse_string(&value, line_no)?;
                }
            }
            (Section::Trust, "fn") => {
                if let Some(t) = policy.trust.last_mut() {
                    t.func = parse_string(&value, line_no)?;
                }
            }
            (Section::Trust, "rules") => {
                if let Some(t) = policy.trust.last_mut() {
                    t.rules = parse_facts(&parse_array(&value, line_no)?, line_no)?;
                }
            }
            (Section::Trust, "reason") => {
                if let Some(t) = policy.trust.last_mut() {
                    t.reason = parse_string(&value, line_no)?;
                }
            }
            (Section::Ignore, "methods") => {
                policy.ignore_methods = parse_array(&value, line_no)?;
            }
            (Section::Ignore, "files") => {
                policy.ignore_files = parse_array(&value, line_no)?;
            }
            _ => {
                return Err(format!("policy line {line_no}: key `{key}` not valid here"));
            }
        }
    }
    for r in &policy.roots {
        if r.func.is_empty() || r.deny.is_empty() {
            return Err(format!(
                "policy root `{}` needs `fn` and a non-empty `deny`",
                r.func
            ));
        }
        if r.reason.is_empty() {
            return Err(format!("policy root `{}` must name a reason", r.func));
        }
    }
    for t in &policy.trust {
        if t.func.is_empty() || t.rules.is_empty() {
            return Err(format!(
                "policy trust `{}` needs `fn` and non-empty `rules`",
                t.func
            ));
        }
        if t.reason.is_empty() {
            return Err(format!("policy trust `{}` must name a reason", t.func));
        }
    }
    Ok(policy)
}
