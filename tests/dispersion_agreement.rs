//! Integration: the micromagnetic simulator must realise the analytic
//! exchange dispersion the gate designer uses — the self-consistency
//! guarantee that makes layout wavelength-multiples meaningful
//! (DESIGN.md §4).

use spinwave_parallel::math::constants::{GHZ, NM, NS};
use spinwave_parallel::micromag::probe::Probe;
use spinwave_parallel::micromag::sim::SimulationBuilder;
use spinwave_parallel::micromag::source::Antenna;
use spinwave_parallel::physics::dispersion::DispersionRelation;
use spinwave_parallel::physics::waveguide::Waveguide;

/// Excite a single frequency and measure the spatial wavelength from
/// the zero crossings of the final `m_x(x)` snapshot in a window away
/// from the source and the absorbers. Interpolated crossings averaged
/// over many periods beat cell-snapping noise.
#[test]
fn measured_wavelength_matches_designer_dispersion() {
    let guide = Waveguide::paper_default().unwrap();
    let dispersion = guide.exchange_dispersion().unwrap();
    let f = 20.0 * GHZ;
    let lambda_design = dispersion.wavelength(f).unwrap();

    let dx = 1.0 * NM;
    let output = SimulationBuilder::new(guide, 900.0 * NM)
        .unwrap()
        .cell_size(dx)
        .unwrap()
        .add_antenna(
            Antenna::new(150.0 * NM, 10.0 * NM, f, 2.0e4, 0.0)
                .unwrap()
                .with_ramp(2.0 / f)
                .unwrap(),
        )
        .add_probe(Probe::point(450.0 * NM))
        .duration(2.0 * NS)
        .unwrap()
        .run()
        .unwrap();

    // Analysis window: from 100 nm past the source to 150 nm before the
    // far absorber.
    let m = output.final_magnetization();
    let i_lo = (260.0 * NM / dx) as usize;
    let i_hi = (660.0 * NM / dx) as usize;
    let mut crossings: Vec<f64> = Vec::new();
    for i in i_lo..i_hi {
        let (a, b) = (m[i].x, m[i + 1].x);
        if a == 0.0 || a * b < 0.0 {
            // Linear interpolation of the crossing position.
            let frac = a / (a - b);
            crossings.push((i as f64 + frac) * dx);
        }
    }
    assert!(
        crossings.len() >= 8,
        "need several periods in the window, got {} crossings",
        crossings.len()
    );
    // Mean spacing between consecutive crossings is λ/2.
    let spacing =
        (crossings.last().unwrap() - crossings.first().unwrap()) / (crossings.len() - 1) as f64;
    let lambda_measured = 2.0 * spacing;
    let error = (lambda_measured - lambda_design).abs() / lambda_design;
    assert!(
        error < 0.05,
        "measured λ = {:.2} nm vs designed {:.2} nm ({:.1}% off)",
        lambda_measured * 1e9,
        lambda_design * 1e9,
        error * 100.0
    );
}

/// The amplitude at the drive frequency must dominate every other
/// spectral component (linear, single-tone response).
#[test]
fn single_tone_response_is_clean() {
    let guide = Waveguide::paper_default().unwrap();
    let f = 30.0 * GHZ;
    let output = SimulationBuilder::new(guide, 600.0 * NM)
        .unwrap()
        .cell_size(2.0 * NM)
        .unwrap()
        .add_antenna(
            Antenna::new(120.0 * NM, 10.0 * NM, f, 1.0e4, 0.0)
                .unwrap()
                .with_ramp(2.0 / f)
                .unwrap(),
        )
        .add_probe(Probe::point(350.0 * NM))
        .duration(1.5 * NS)
        .unwrap()
        .run()
        .unwrap();
    let steady = output.series()[0].after(0.75 * NS).unwrap();
    let at_drive = steady.amplitude_at(f).unwrap();
    for other in [10.0 * GHZ, 20.0 * GHZ, 45.0 * GHZ, 60.0 * GHZ] {
        let leak = steady.amplitude_at(other).unwrap();
        assert!(
            at_drive > 10.0 * leak,
            "leakage at {:.0} GHz: {leak} vs drive {at_drive}",
            other / 1e9
        );
    }
}

/// Group velocity: a wave front launched at t=0 must not arrive faster
/// than the dispersion's group velocity predicts (within tolerance).
#[test]
fn arrival_time_consistent_with_group_velocity() {
    let guide = Waveguide::paper_default().unwrap();
    let dispersion = guide.exchange_dispersion().unwrap();
    let f = 40.0 * GHZ;
    let k = dispersion.wavenumber(f).unwrap();
    let vg = dispersion.group_velocity(k);

    let source_x = 100.0 * NM;
    let probe_x = 500.0 * NM;
    let output = SimulationBuilder::new(guide, 700.0 * NM)
        .unwrap()
        .cell_size(1.0 * NM)
        .unwrap()
        .add_antenna(Antenna::new(source_x, 10.0 * NM, f, 2.0e4, 0.0).unwrap())
        .add_probe(Probe::point(probe_x))
        .duration(0.8 * NS)
        .unwrap()
        .sample_interval(2)
        .unwrap()
        .run()
        .unwrap();

    // First time the probe signal exceeds 10% of its final peak.
    let series = &output.series()[0];
    let peak = series.peak();
    assert!(peak > 1e-6, "wave never arrived");
    let threshold = 0.1 * peak;
    let arrival_idx = series
        .samples()
        .iter()
        .position(|&v| v.abs() > threshold)
        .expect("arrival");
    let t_arrival = series.time_at(arrival_idx);
    let t_expected = (probe_x - source_x - 5.0 * NM) / vg;
    // Leading exchange-wave precursors are faster than vg; accept a
    // generous band around the ballistic estimate.
    assert!(
        t_arrival > 0.2 * t_expected && t_arrival < 3.0 * t_expected,
        "arrival {t_arrival:.3e} s vs ballistic {t_expected:.3e} s"
    );
}
