//! Cost figures of one implementation style.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Area, delay and energy of one gate implementation, for one operation
/// over all `n` data sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Implementation label.
    pub label: &'static str,
    /// Total silicon (well, magnonic) real estate in m².
    pub area: f64,
    /// Latency to produce all `n` outputs, in seconds.
    pub delay: f64,
    /// Energy to produce all `n` outputs, in joules.
    pub energy: f64,
    /// Number of transducers instantiated.
    pub transducers: usize,
    /// Total waveguide length instantiated, in metres.
    pub waveguide_length: f64,
}

impl CostReport {
    /// Area in µm², the unit the paper reports.
    pub fn area_um2(&self) -> f64 {
        self.area * 1.0e12
    }

    /// Delay in ns.
    pub fn delay_ns(&self) -> f64 {
        self.delay * 1.0e9
    }

    /// Energy in aJ.
    pub fn energy_aj(&self) -> f64 {
        self.energy * 1.0e18
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} area {:>9.5} um^2   delay {:>7.3} ns   energy {:>8.1} aJ   ({} transducers, {:.0} nm waveguide)",
            self.label,
            self.area_um2(),
            self.delay_ns(),
            self.energy_aj(),
            self.transducers,
            self.waveguide_length * 1.0e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CostReport {
        CostReport {
            label: "test",
            area: 2.79e-14,
            delay: 1.0e-9,
            energy: 4.8e-16,
            transducers: 32,
            waveguide_length: 5.0e-7,
        }
    }

    #[test]
    fn unit_conversions() {
        let r = report();
        assert!((r.area_um2() - 0.0279).abs() < 1e-6);
        assert!((r.delay_ns() - 1.0).abs() < 1e-12);
        assert!((r.energy_aj() - 480.0).abs() < 1e-6);
    }

    #[test]
    fn display_contains_figures() {
        let s = report().to_string();
        assert!(s.contains("um^2"));
        assert!(s.contains("32 transducers"));
    }
}
