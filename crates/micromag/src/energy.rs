//! Micromagnetic energy accounting.
//!
//! Energies are the standard diagnostics of any micromagnetic study:
//! exchange energy measures texture, anisotropy energy the departure
//! from the easy axis, Zeeman energy the alignment with an applied
//! field. With Gilbert damping and no drive, the total energy must
//! decrease monotonically — a strong correctness check on the solver
//! used by the test suite.

use crate::error::SimError;
use crate::mesh::Mesh;
use magnon_math::constants::MU_0;
use magnon_math::Vec3;
use magnon_physics::material::Material;

/// Energy breakdown of a magnetization state, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Heisenberg exchange energy (≥ 0, zero for a uniform state).
    pub exchange: f64,
    /// Uniaxial anisotropy energy (zero along the easy axis).
    pub anisotropy: f64,
    /// Zeeman energy (−μ₀ Ms m·H per volume), zero without a field.
    pub zeeman: f64,
    /// Local-demag (shape) energy for the diagonal tensor.
    pub demag: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.exchange + self.anisotropy + self.zeeman + self.demag
    }
}

/// Computes the energy breakdown of a state.
///
/// * `applied_field` — uniform Zeeman field in A/m (zero for the
///   paper's device).
/// * `demag_tensor` — the diagonal local demag tensor `(Nx, Ny, Nz)`.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] when `m.len()` does not match
/// the mesh.
///
/// # Examples
///
/// ```
/// use magnon_micromag::energy::energy_breakdown;
/// use magnon_micromag::mesh::Mesh;
/// use magnon_math::Vec3;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(100.0e-9, 2.0e-9, 50.0e-9, 1.0e-9)?;
/// let m = vec![Vec3::Z; mesh.cell_count()];
/// let e = energy_breakdown(&mesh, &Material::fe_co_b(), &m, Vec3::ZERO, Vec3::Z)?;
/// assert_eq!(e.exchange, 0.0);       // uniform
/// assert!(e.anisotropy.abs() < 1e-30); // on the easy axis
/// # Ok(())
/// # }
/// ```
pub fn energy_breakdown(
    mesh: &Mesh,
    material: &Material,
    m: &[Vec3],
    applied_field: Vec3,
    demag_tensor: Vec3,
) -> Result<EnergyBreakdown, SimError> {
    if m.len() != mesh.cell_count() {
        return Err(SimError::InvalidParameter {
            parameter: "state_len",
            value: m.len() as f64,
        });
    }
    let v_cell = mesh.cell_volume();
    let ms = material.saturation_magnetization();
    let a_ex = material.exchange_stiffness();
    let k_ani = material.anisotropy_constant();
    let nx = mesh.nx();
    let ny = mesh.ny();

    let mut exchange = 0.0;
    let mut anisotropy = 0.0;
    let mut zeeman = 0.0;
    let mut demag = 0.0;

    for j in 0..ny {
        let row = j * nx;
        for i in 0..nx {
            let idx = row + i;
            let mi = m[idx];
            // Exchange: A (∇m)², discretised on forward differences so
            // every bond counts once.
            if i + 1 < nx {
                let d = m[idx + 1] - mi;
                exchange += a_ex * d.norm_sqr() / (mesh.dx() * mesh.dx()) * v_cell;
            }
            if ny > 1 && j + 1 < ny {
                let d = m[idx + nx] - mi;
                exchange += a_ex * d.norm_sqr() / (mesh.dy() * mesh.dy()) * v_cell;
            }
            // Uniaxial (easy z): K (1 − m_z²).
            anisotropy += k_ani * (1.0 - mi.z * mi.z) * v_cell;
            // Zeeman: −μ₀ Ms m·H.
            zeeman -= MU_0 * ms * mi.dot(applied_field) * v_cell;
            // Local demag: (μ₀ Ms² / 2) Σ N_i m_i².
            demag += 0.5
                * MU_0
                * ms
                * ms
                * demag_tensor.dot(Vec3::new(mi.x * mi.x, mi.y * mi.y, mi.z * mi.z))
                * v_cell;
        }
    }
    Ok(EnergyBreakdown {
        exchange,
        anisotropy,
        zeeman,
        demag,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{Exchange, LocalDemag, UniaxialAnisotropy};
    use crate::solver::LlgSolver;
    use crate::stability::suggested_time_step;
    use magnon_math::constants::NM;

    fn mesh() -> Mesh {
        Mesh::line(100.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap()
    }

    #[test]
    fn uniform_easy_axis_state_is_ground() {
        let e = energy_breakdown(
            &mesh(),
            &Material::fe_co_b(),
            &vec![Vec3::Z; 50],
            Vec3::ZERO,
            Vec3::ZERO,
        )
        .unwrap();
        assert_eq!(e.exchange, 0.0);
        assert!(e.anisotropy.abs() < 1e-30);
        assert_eq!(e.zeeman, 0.0);
        assert_eq!(e.total(), e.exchange + e.anisotropy + e.zeeman + e.demag);
    }

    #[test]
    fn tilted_state_costs_anisotropy() {
        let m = vec![Vec3::X; 50];
        let e =
            energy_breakdown(&mesh(), &Material::fe_co_b(), &m, Vec3::ZERO, Vec3::ZERO).unwrap();
        // K V_total for fully in-plane magnetization.
        let expected = 8.3177e5 * 100e-9 * 50e-9 * 1e-9;
        assert!((e.anisotropy - expected).abs() / expected < 1e-9);
        assert_eq!(e.exchange, 0.0);
    }

    #[test]
    fn texture_costs_exchange() {
        let mesh = mesh();
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        m[25] = Vec3::X; // a hard kink
        let e = energy_breakdown(&mesh, &Material::fe_co_b(), &m, Vec3::ZERO, Vec3::ZERO).unwrap();
        assert!(e.exchange > 0.0);
    }

    #[test]
    fn zeeman_favours_alignment() {
        let h = Vec3::new(0.0, 0.0, 1.0e5);
        let aligned = energy_breakdown(
            &mesh(),
            &Material::fe_co_b(),
            &vec![Vec3::Z; 50],
            h,
            Vec3::ZERO,
        )
        .unwrap();
        let anti = energy_breakdown(
            &mesh(),
            &Material::fe_co_b(),
            &vec![-Vec3::Z; 50],
            h,
            Vec3::ZERO,
        )
        .unwrap();
        assert!(aligned.zeeman < 0.0);
        assert!(anti.zeeman > 0.0);
        assert!((aligned.zeeman + anti.zeeman).abs() < 1e-30);
    }

    #[test]
    fn demag_penalises_out_of_plane() {
        let tensor = Vec3::new(0.0, 0.0, 1.0);
        let out = energy_breakdown(
            &mesh(),
            &Material::fe_co_b(),
            &vec![Vec3::Z; 50],
            Vec3::ZERO,
            tensor,
        )
        .unwrap();
        let inplane = energy_breakdown(
            &mesh(),
            &Material::fe_co_b(),
            &vec![Vec3::X; 50],
            Vec3::ZERO,
            tensor,
        )
        .unwrap();
        assert!(out.demag > inplane.demag);
        assert_eq!(inplane.demag, 0.0);
    }

    #[test]
    fn state_length_validated() {
        assert!(energy_breakdown(
            &mesh(),
            &Material::fe_co_b(),
            &[Vec3::Z; 3],
            Vec3::ZERO,
            Vec3::ZERO
        )
        .is_err());
    }

    #[test]
    fn damped_free_dynamics_dissipate_energy() {
        // Excite a texture, then let it relax with no drive: total
        // energy must decrease monotonically (sampled coarsely).
        let mesh = mesh();
        let material = Material::fe_co_b();
        let nz = 1.0;
        let mut solver = LlgSolver::new(mesh.clone(), material).unwrap();
        solver.add_field_term(Box::new(Exchange::new(&material)));
        solver.add_field_term(Box::new(
            UniaxialAnisotropy::perpendicular(&material).unwrap(),
        ));
        solver.add_field_term(Box::new(LocalDemag::out_of_plane(&material, nz).unwrap()));
        solver.set_magnetization_with(|i| {
            let x = i as f64 * 0.4;
            Vec3::new(0.3 * x.sin(), 0.3 * x.cos(), 1.0)
        });
        let dt = suggested_time_step(&mesh, &material);
        let mut last = f64::INFINITY;
        for _ in 0..6 {
            let e = energy_breakdown(
                &mesh,
                &material,
                solver.magnetization(),
                Vec3::ZERO,
                Vec3::new(0.0, 0.0, nz),
            )
            .unwrap()
            .total();
            assert!(
                e <= last + 1e-25,
                "energy increased without drive: {e} > {last}"
            );
            last = e;
            solver.run(0.02e-9, dt).unwrap();
        }
    }
}
