//! Error type for the network front-end.

use std::fmt;

/// Error codes a server puts on the wire (the `code` byte of an error
/// frame). Kept separate from [`NetError`] so the wire representation
/// stays a stable one-byte enum while the client-side error can carry
/// context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireErrorCode {
    /// The submitted gate index was never registered.
    UnknownGate = 1,
    /// The evaluation itself failed (operand shape, backend error).
    Gate = 2,
    /// The server's completion deadline elapsed (the writer pump never
    /// blocks forever on a lost completion).
    Timeout = 3,
    /// The serving runtime behind the server has shut down.
    Shutdown = 4,
    /// The peer broke the framing or handshake rules.
    Protocol = 5,
    /// The submit pinned a frequency lane that does not match the
    /// target gate's advertised lane (protocol v2).
    LaneMismatch = 6,
}

impl WireErrorCode {
    /// Decodes the wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(WireErrorCode::UnknownGate),
            2 => Some(WireErrorCode::Gate),
            3 => Some(WireErrorCode::Timeout),
            4 => Some(WireErrorCode::Shutdown),
            5 => Some(WireErrorCode::Protocol),
            6 => Some(WireErrorCode::LaneMismatch),
            _ => None,
        }
    }
}

/// Errors surfaced by the protocol codec, server and client.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io {
        /// What was being attempted.
        action: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The peer sent bytes that do not decode as a valid frame
    /// (bad magic, bad checksum, truncation, out-of-range fields).
    Protocol {
        /// What was malformed.
        reason: String,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version this side speaks.
        ours: u16,
        /// Version the peer announced.
        theirs: u16,
    },
    /// The server answered a request with an error frame.
    Remote {
        /// The wire error code.
        code: WireErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// A client-side wait deadline elapsed.
    Timeout,
    /// The submitted gate index is not in the server's directory, or
    /// the operands do not match its advertised shape (caught
    /// client-side, before any bytes move).
    BadRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// Backpressure retries were exhausted: the server kept answering
    /// retry-after past the client's configured budget.
    RetriesExhausted {
        /// Retries attempted before giving up.
        attempts: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { action, source } => write!(f, "failed to {action}: {source}"),
            NetError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            NetError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak {ours}, the peer announced {theirs}"
            ),
            NetError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            NetError::Timeout => write!(f, "the wait deadline elapsed"),
            NetError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            NetError::RetriesExhausted { attempts } => write!(
                f,
                "gave up after {attempts} backpressure retries (server queue stayed full)"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl NetError {
    /// Wraps an I/O error with the action that failed.
    pub(crate) fn io(action: &'static str, source: std::io::Error) -> Self {
        NetError::Io { action, source }
    }

    /// Convenience constructor for malformed-input errors.
    pub(crate) fn protocol(reason: impl Into<String>) -> Self {
        NetError::Protocol {
            reason: reason.into(),
        }
    }

    /// `true` for errors that poison the connection (framing is lost or
    /// the socket is dead), as opposed to per-request failures.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            NetError::Io { .. } | NetError::Protocol { .. } | NetError::VersionMismatch { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        assert!(NetError::io("connect", std::io::Error::other("boom"))
            .to_string()
            .contains("connect"));
        assert!(NetError::protocol("bad magic")
            .to_string()
            .contains("bad magic"));
        let v = NetError::VersionMismatch { ours: 1, theirs: 9 };
        assert!(v.to_string().contains('9') && v.is_fatal());
        let r = NetError::Remote {
            code: WireErrorCode::Timeout,
            message: "deadline".into(),
        };
        assert!(r.to_string().contains("Timeout") && !r.is_fatal());
        assert!(NetError::Timeout.to_string().contains("deadline"));
        assert!(NetError::BadRequest {
            reason: "3 operands".into()
        }
        .to_string()
        .contains("3 operands"));
        assert!(NetError::RetriesExhausted { attempts: 64 }
            .to_string()
            .contains("64"));
    }

    #[test]
    fn wire_codes_roundtrip() {
        for code in [
            WireErrorCode::UnknownGate,
            WireErrorCode::Gate,
            WireErrorCode::Timeout,
            WireErrorCode::Shutdown,
            WireErrorCode::Protocol,
            WireErrorCode::LaneMismatch,
        ] {
            assert_eq!(WireErrorCode::from_byte(code as u8), Some(code));
        }
        assert_eq!(WireErrorCode::from_byte(0), None);
        assert_eq!(WireErrorCode::from_byte(99), None);
    }
}
