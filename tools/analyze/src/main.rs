//! CLI for the workspace call-graph analyzer. All analysis lives in
//! the library; this binary loads the workspace + policy, prints the
//! verdict, and exits nonzero on any violation or policy error.

use std::path::PathBuf;

use magnon_analyze::{
    check_policy, explain, load_workspace, parse_policy, render_chain, report, Fact,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root_arg: Option<PathBuf> = None;
    let mut policy_arg: Option<PathBuf> = None;
    let mut json_arg: Option<PathBuf> = None;
    let mut explain_args: Vec<String> = Vec::new();
    let mut run_self_test = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root_arg = args.next().map(PathBuf::from),
            "--policy" => policy_arg = args.next().map(PathBuf::from),
            "--json" => json_arg = args.next().map(PathBuf::from),
            "--explain" => {
                if let Some(f) = args.next() {
                    explain_args.push(f);
                }
            }
            "--self-test" => run_self_test = true,
            "--help" | "-h" => {
                println!(
                    "usage: magnon-analyze [--root <dir>] [--policy <file>] [--json <out>]\n\
                     \x20                     [--explain <path::to::fn>] [--self-test]\n\
                     \n\
                     Proves the analysis-policy.toml roots transitively free of their\n\
                     denied facts (can-panic / can-block / can-alloc) over the workspace\n\
                     call graph, and runs the lock-order & blocking-discipline pass over\n\
                     the [[lock]] classes (deadlock cycles, blocking-while-locked,\n\
                     double-acquire, order inversions). --explain prints offending\n\
                     chains and lock holdings for a function; --self-test plants a\n\
                     3-deep transitive violation plus a lock-order cycle and must find\n\
                     both."
                );
                return;
            }
            other => {
                eprintln!("magnon-analyze: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if run_self_test {
        match magnon_analyze::self_test() {
            Ok(evidence) => {
                println!("magnon-analyze --self-test: ok\n{evidence}");
                return;
            }
            Err(e) => {
                eprintln!("magnon-analyze --self-test: {e}");
                std::process::exit(1);
            }
        }
    }

    let start = root_arg.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .or_else(|_| std::env::current_dir())
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let Some(root) = magnon_lint::workspace_root(&start) else {
        eprintln!(
            "magnon-analyze: no workspace Cargo.toml found above {}",
            start.display()
        );
        std::process::exit(2);
    };
    let policy_path = policy_arg.unwrap_or_else(|| root.join("analysis-policy.toml"));
    let policy_text = match std::fs::read_to_string(&policy_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "magnon-analyze: cannot read policy {}: {e}",
                policy_path.display()
            );
            std::process::exit(2);
        }
    };
    let policy = match parse_policy(&policy_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("magnon-analyze: {e}");
            std::process::exit(2);
        }
    };
    let sources = load_workspace(&root, &policy.ignore_files);
    let mut analysis = magnon_analyze::analyze_sources(&sources, &policy.ignore_methods);
    let results = check_policy(&mut analysis, &policy);

    if let Some(path) = json_arg {
        let json = report::render_json(&analysis, &policy, &results);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("magnon-analyze: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("magnon-analyze: report written to {}", path.display());
    }

    for target in &explain_args {
        let matches = analysis.find_by_suffix(target);
        match matches.len() {
            0 => println!("--explain {target}: no such function in the graph"),
            1 => {
                let idx = matches[0];
                println!("--explain {}:", analysis.fns[idx].id);
                for fact in Fact::ALL {
                    match explain(&analysis, idx, fact) {
                        Some(chain) => {
                            println!("[{}]", fact.id());
                            print!("{}", render_chain(&analysis, &chain));
                        }
                        None => println!("[{}] proven free", fact.id()),
                    }
                }
                let lock = &results.lock;
                if lock.class_names.is_empty() {
                    println!("[locks] no [[lock]] classes declared");
                } else if lock.acq_trans[idx] == 0 {
                    println!("[locks] acquires no classified lock, directly or transitively");
                } else {
                    let held: Vec<&str> = (0..lock.class_names.len())
                        .filter(|c| lock.acq_trans[idx] & (1u64 << c) != 0)
                        .map(|c| lock.class_names[c].as_str())
                        .collect();
                    println!("[locks] may acquire: {}", held.join(", "));
                    for &(c, line) in &lock.fn_acqs[idx] {
                        println!(
                            "    `{}` acquired at {}:{}",
                            lock.class_names[c], analysis.fns[idx].file, line
                        );
                    }
                    for e in &lock.edges {
                        if e.holder == idx {
                            print!(
                                "  holds `{}` while acquiring `{}`:\n{}",
                                lock.class_names[e.from],
                                lock.class_names[e.to],
                                magnon_analyze::locks::render_lock_edge(&analysis, lock, e)
                            );
                        }
                    }
                }
            }
            _ => {
                println!("--explain {target}: ambiguous, candidates:");
                for i in matches {
                    println!("  {}", analysis.fns[i].id);
                }
            }
        }
    }

    for err in &results.errors {
        eprintln!("magnon-analyze: error: {err}");
    }
    let mut violation_count = 0;
    for r in &results.roots {
        for chain in &r.violations {
            violation_count += 1;
            println!(
                "magnon-analyze: VIOLATION [{}] root {}",
                chain.fact.id(),
                r.spec.func
            );
            print!("{}", render_chain(&analysis, chain));
        }
    }
    for v in &results.lock.violations {
        violation_count += 1;
        println!(
            "magnon-analyze: LOCK VIOLATION [{}] {}",
            v.kind,
            v.classes.join(" → ")
        );
        print!("{}", v.detail);
    }
    for tag in &results.lock.unclassified {
        println!("magnon-analyze: note: unclassified lock site {tag}");
    }
    println!(
        "magnon-analyze: lock pass: {} class(es), {} classified site(s), {} order edge(s), {}",
        results.lock.class_names.len(),
        results.lock.classified_sites,
        results.lock.edges.len(),
        if results.lock.acyclic() {
            "lock-order graph acyclic"
        } else {
            "lock-order graph CYCLIC"
        }
    );
    println!(
        "magnon-analyze: {} fn(s), {} edge(s), {} call(s) resolved, {} external, \
         {} ambiguous, {} waiver(s)",
        analysis.fns.len(),
        analysis.edges.len(),
        analysis.resolved_calls,
        analysis.external_calls,
        analysis.ambiguities.len(),
        analysis.waiver_decls.len()
    );
    if violation_count == 0 && results.errors.is_empty() {
        println!(
            "magnon-analyze: clean — {} policy root(s) proven, lock-order graph acyclic, \
             zero unwaived blocking-while-locked sites",
            results.roots.len()
        );
    } else {
        println!(
            "magnon-analyze: {violation_count} violation(s), {} error(s)",
            results.errors.len()
        );
        std::process::exit(1);
    }
}
