//! Word-level circuits composed from data-parallel spin-wave gates.
//!
//! The paper's paradigm processes `n` independent data sets per gate.
//! This crate scales that from one gate to circuits: every wire carries
//! an `n`-bit [`Word`](magnon_core::word::Word) (one bit per frequency
//! channel), and every gate is a data-parallel majority or XOR. A
//! W-bit ripple-carry adder built this way adds `n` *pairs of numbers*
//! simultaneously with zero hardware replication — the circuit-level
//! payoff of the paper's Fig. 1.
//!
//! * [`netlist`] — a small word-level netlist with topological
//!   evaluation; its [`netlist::GateBank`] routes every MAJ/XOR node
//!   through a physical spin-wave gate on any
//!   [`magnon_core::backend::SpinWaveBackend`] (analytic, cached LUT,
//!   or full LLG), switchable with one
//!   [`magnon_core::backend::BackendChoice`] argument,
//! * [`adder`] — full adders and ripple-carry adders (MAJ for carry,
//!   XOR for sum, exactly the magnonic-logic textbook construction),
//! * [`parity`] — XOR reduction trees,
//! * [`cost`] — circuit-level area roll-up on top of `magnon-cost`.
//!
//! # Examples
//!
//! Add eight pairs of 4-bit numbers at once:
//!
//! ```
//! use magnon_circuits::adder::RippleCarryAdder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let adder = RippleCarryAdder::new(4, 8)?;
//! let a = [1u64, 2, 3, 4, 5, 6, 7, 8];
//! let b = [8u64, 7, 6, 5, 4, 3, 2, 1];
//! let sums = adder.add_many(&a, &b)?;
//! assert!(sums.iter().all(|&s| s == 9));
//! # Ok(())
//! # }
//! ```

pub mod adder;
pub mod alu;
pub mod cost;
pub mod netlist;
pub mod parity;
