//! Subset shim for `proptest` (offline build environment).
//!
//! Supports the surface the workspace's property suite uses: the
//! [`proptest!`] macro with `name: Type` and `name in strategy`
//! parameters, `prop_assert!`/`prop_assert_eq!`, range and
//! `collection::vec` strategies, and `ProptestConfig::with_cases`.
//! Cases are drawn from a deterministic RNG seeded per test name, so
//! failures reproduce; there is no shrinking.

pub mod test_runner {
    //! Case execution support used by the expanded macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test generator (FNV-1a of the test name).
    pub fn new_rng(test_name: &str) -> StdRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

pub mod config {
    //! Run configuration.

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{SampleRange, Standard};
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.clone().sample(rng)
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.clone().sample(rng)
        }
    }

    /// Full-range strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::draw(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the strategy behind bare `name: Type` parameters.

    use crate::strategy::Any;

    /// Uniform strategy over `T`'s full value range.
    pub fn any<T>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The names `use proptest::prelude::*` is expected to provide.

    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry macro; see the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg ($crate::config::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params!(
                @cfg ($cfg) @name ($name) @body ($body) @acc [] $($params)*
            );
        }
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // All parameters normalized to (name, strategy) pairs: run the cases.
    (@cfg ($cfg:expr) @name ($name:ident) @body ($body:block)
     @acc [$(($n:ident, $s:expr))*]) => {{
        let config = $cfg;
        let mut proptest_rng = $crate::test_runner::new_rng(stringify!($name));
        for proptest_case in 0..config.cases {
            $(
                let $n = $crate::strategy::Strategy::sample(&($s), &mut proptest_rng);
            )*
            #[allow(clippy::redundant_closure_call)]
            let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(e) = outcome {
                panic!(
                    "proptest case {}/{} of `{}` failed: {}",
                    proptest_case + 1,
                    config.cases,
                    stringify!($name),
                    e
                );
            }
        }
    }};
    // `name in strategy` (last parameter).
    (@cfg ($cfg:expr) @name ($name:ident) @body ($body:block)
     @acc [$($acc:tt)*] $n:ident in $s:expr) => {
        $crate::__proptest_params!(
            @cfg ($cfg) @name ($name) @body ($body) @acc [$($acc)* ($n, $s)]
        );
    };
    // `name in strategy, rest...`
    (@cfg ($cfg:expr) @name ($name:ident) @body ($body:block)
     @acc [$($acc:tt)*] $n:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_params!(
            @cfg ($cfg) @name ($name) @body ($body) @acc [$($acc)* ($n, $s)] $($rest)*
        );
    };
    // `name: Type` (last parameter) — normalized to `any::<Type>()`.
    (@cfg ($cfg:expr) @name ($name:ident) @body ($body:block)
     @acc [$($acc:tt)*] $n:ident : $t:ty) => {
        $crate::__proptest_params!(
            @cfg ($cfg) @name ($name) @body ($body)
            @acc [$($acc)* ($n, $crate::arbitrary::any::<$t>())]
        );
    };
    // `name: Type, rest...`
    (@cfg ($cfg:expr) @name ($name:ident) @body ($body:block)
     @acc [$($acc:tt)*] $n:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_params!(
            @cfg ($cfg) @name ($name) @body ($body)
            @acc [$($acc)* ($n, $crate::arbitrary::any::<$t>())] $($rest)*
        );
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Bare-typed parameters draw from the full range.
        #[test]
        fn typed_params(a: u8, b: u8) {
            let sum = a as u16 + b as u16;
            prop_assert!(sum <= 510);
            prop_assert_eq!(sum, b as u16 + a as u16);
        }

        /// Mixed `: Type` and `in strategy` parameters.
        #[test]
        fn mixed_params(flag: bool, x in -5i32..5, f in 0.5f64..2.5) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.5..2.5).contains(&f));
            let _ = flag;
        }

        /// Collection strategies honor length bounds.
        #[test]
        fn vec_strategy(values in crate::collection::vec(0u64..100, 1..10)) {
            prop_assert!(!values.is_empty() && values.len() < 10);
            prop_assert!(values.iter().all(|&v| v < 100));
        }

        /// Fixed-size collections.
        #[test]
        fn vec_fixed(values in crate::collection::vec(0u64..256, 8)) {
            prop_assert_eq!(values.len(), 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::new_rng("x");
        let mut b = crate::test_runner::new_rng("x");
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn prop_assert_returns_err() {
        let check = |v: u8| -> Result<(), TestCaseError> {
            prop_assert!(v < 10, "too big: {}", v);
            prop_assert_eq!(v, v);
            prop_assert_ne!(v as u16, 300u16);
            Ok(())
        };
        assert!(check(5).is_ok());
        let err = check(50).unwrap_err();
        assert!(err.to_string().contains("too big"));
    }
}
