//! The model-check execution controller (`cfg(mcheck)` only).
//!
//! One *execution* runs a closure (the "root task") plus every thread
//! it spawns through the façade, serialized: a single baton moves
//! between tasks, and every instrumented sync op is a *yield point*
//! where a pluggable [`Policy`] decides who runs next. Because only
//! one task executes between yield points, the whole run is a
//! deterministic function of the policy — a seeded policy makes every
//! interleaving replayable, and the recorded [`Trace`] of events is
//! byte-identical across replays.
//!
//! Blocking primitives (channel recv, mutex lock, park, join) never
//! call into the OS: a task that cannot proceed registers itself as
//! blocked on a *resource key* and hands the baton over; the op that
//! unblocks it (send, unlock, unpark, task exit) wakes the waiters.
//! Timeout-able waits are modeled nondeterministically — the policy
//! may "fire" the timeout at any yield, advancing the virtual clock to
//! the waiter's deadline, which is exactly the guarantee real timed
//! waits give (they return *no earlier* than the deadline, with no
//! upper bound).
//!
//! Failure modes detected here, not by the harness:
//!
//! * **deadlock** — every live task is blocked and none can time out;
//! * **step limit** — the schedule exceeded its step budget (livelock
//!   or runaway loop);
//!
//! either aborts the execution: blocked ops return their disconnected/
//! poisoned variants so tasks unwind, and the outcome carries the
//! failure plus the full trace.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Identifies one modeled task within an execution (0 is the root).
pub type TaskId = usize;

/// Identifies one instrumented object (channel, mutex, atomic, …).
pub type ObjectId = u64;

/// What a yield point records. Compact by design: the trace of a
/// deep run has tens of thousands of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The task that performed the op.
    pub task: TaskId,
    /// Virtual clock (nanoseconds) when the op ran.
    pub clock: u64,
    /// Operation mnemonic (static — see the `op::` constants).
    pub op: &'static str,
    /// The object acted on (0 for task-level ops like spawn/exit).
    pub object: ObjectId,
    /// Op-specific payload (value stored, task spawned, …).
    pub aux: u64,
}

/// Operation mnemonics used in traces.
pub mod op {
    pub const ATOMIC_LOAD: &str = "atomic-load";
    pub const ATOMIC_STORE: &str = "atomic-store";
    pub const ATOMIC_RMW: &str = "atomic-rmw";
    pub const LOCK_ACQUIRE: &str = "lock-acquire";
    pub const LOCK_RELEASE: &str = "lock-release";
    pub const LOCK_BLOCK: &str = "lock-block";
    pub const CHAN_SEND: &str = "chan-send";
    pub const CHAN_RECV: &str = "chan-recv";
    pub const CHAN_EMPTY: &str = "chan-empty";
    pub const CHAN_FULL: &str = "chan-full";
    pub const CHAN_CLOSED: &str = "chan-closed";
    pub const CHAN_TIMEOUT: &str = "chan-timeout";
    pub const BLOCK: &str = "block";
    pub const WAKE: &str = "wake";
    pub const PARK: &str = "park";
    pub const UNPARK: &str = "unpark";
    pub const SPAWN: &str = "spawn";
    pub const EXIT: &str = "exit";
    pub const JOIN: &str = "join";
    pub const SLEEP: &str = "sleep";
    pub const YIELD: &str = "yield";
}

/// The full event log of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// The recorded events, in global order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// An order-sensitive hash of the schedule: two runs with the same
    /// hash took the same interleaving. FNV-1a over every event field.
    pub fn schedule_hash(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.events {
            eat(e.task as u64);
            eat(e.op.as_ptr() as usize as u64 ^ e.op.len() as u64);
            eat(e.object);
            eat(e.aux);
        }
        hash
    }

    /// Renders the trace one event per line (`seq task clock op object
    /// aux`) — the byte-identical replay format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.events.len() * 32);
        for (seq, e) in self.events.iter().enumerate() {
            let _ = writeln!(
                out,
                "{seq:06} t{} @{} {} obj{} {}",
                e.task, e.clock, e.op, e.object, e.aux
            );
        }
        out
    }
}

/// Why an execution failed (panics in the root task surface separately
/// through [`RunOutcome::root_panic`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Every live task was blocked with no timeout-able waiter.
    Deadlock {
        /// The tasks that were blocked, with the resource each waited on.
        blocked: Vec<(TaskId, ObjectId)>,
    },
    /// The schedule ran past its step budget.
    StepLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Deadlock { blocked } => {
                write!(f, "deadlock: all live tasks blocked (")?;
                for (i, (task, obj)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{task} on obj{obj}")?;
                }
                write!(f, ")")
            }
            FailureKind::StepLimit { limit } => {
                write!(f, "step limit exceeded ({limit} yield points) — livelock?")
            }
        }
    }
}

/// What [`run_execution`] hands back.
#[derive(Debug)]
pub struct RunOutcome {
    /// The full event log.
    pub trace: Trace,
    /// Deadlock / step-limit, when detected.
    pub failure: Option<FailureKind>,
    /// The root task's panic payload rendered to a string, if it
    /// panicked.
    pub root_panic: Option<String>,
    /// Yield points executed.
    pub steps: u64,
}

/// A scheduling decision at one yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Grant the baton to this runnable task.
    Run(TaskId),
    /// Fire the pending timeout of this blocked-with-deadline task
    /// (it resumes with its wait reporting a timeout, and the virtual
    /// clock jumps to its deadline).
    FireTimeout(TaskId),
}

/// What the policy sees at one yield point.
#[derive(Debug)]
pub struct ChoicePoint<'a> {
    /// The task that just yielded (it may or may not still be
    /// runnable — check membership in `runnable`).
    pub current: TaskId,
    /// Tasks that can be granted the baton right now.
    pub runnable: &'a [TaskId],
    /// Blocked tasks whose waits carry a deadline (choosing one fires
    /// its timeout).
    pub timeoutable: &'a [TaskId],
}

/// A schedule: decides, at every yield point, which task runs next.
/// Implementations must be deterministic functions of their own state
/// for replay to work.
pub trait Policy: Send {
    /// Picks the next task. `point.runnable` is never empty when this
    /// is called together with an empty `timeoutable` — the controller
    /// reports deadlock itself instead of consulting the policy.
    fn choose(&mut self, point: &ChoicePoint<'_>) -> Choice;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Runnable,
    /// Blocked on `key`; `deadline` is the virtual-time bound of a
    /// timed wait (`None` = may wait forever).
    Blocked {
        key: ObjectId,
        deadline: Option<u64>,
    },
    Finished,
}

struct TaskSlot {
    state: TaskState,
    /// Set when the task was resumed by a fired timeout (consumed by
    /// the blocked op's return path).
    woke_by_timeout: bool,
    /// `thread::park` token (an unpark with no parker pending makes
    /// the next park return immediately — std semantics).
    park_token: bool,
}

struct ExecState {
    tasks: Vec<TaskSlot>,
    /// Who holds the baton.
    current: TaskId,
    policy: Box<dyn Policy>,
    trace: Trace,
    clock: u64,
    steps: u64,
    step_limit: u64,
    next_object: ObjectId,
    failure: Option<FailureKind>,
    aborted: bool,
    /// Scratch buffers reused across yield points.
    runnable_buf: Vec<TaskId>,
    timeoutable_buf: Vec<TaskId>,
}

struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
}

/// The installed execution, if any. `None` outside `run_execution` —
/// shim ops then run uninstrumented (single-threaded unit tests of the
/// façade, static initializers).
static ACTIVE: Mutex<Option<Arc<Exec>>> = Mutex::new(None);

/// Object ids handed out while no execution is active (not traced, but
/// must stay unique so debug output is unambiguous).
static OFFLINE_OBJECTS: AtomicU64 = AtomicU64::new(1 << 62);

/// Fallback epoch for virtual `Instant::now()` outside an execution.
static OFFLINE_EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

thread_local! {
    /// This OS thread's task id within the active execution, if it is
    /// a modeled task.
    static TASK_ID: std::cell::Cell<Option<TaskId>> = const { std::cell::Cell::new(None) };
}

fn active() -> Option<Arc<Exec>> {
    ACTIVE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

fn current_task() -> Option<TaskId> {
    TASK_ID.with(|t| t.get())
}

/// The execution handle shim ops talk to: `None` when this thread is
/// not a modeled task of an active execution.
fn context() -> Option<(Arc<Exec>, TaskId)> {
    let task = current_task()?;
    let exec = active()?;
    Some((exec, task))
}

fn lock_state(exec: &Exec) -> MutexGuard<'_, ExecState> {
    exec.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl ExecState {
    fn record(&mut self, task: TaskId, op: &'static str, object: ObjectId, aux: u64) {
        self.trace.events.push(Event {
            task,
            clock: self.clock,
            op,
            object,
            aux,
        });
    }

    /// Collects the schedulable sets into the scratch buffers.
    fn collect_enabled(&mut self) {
        self.runnable_buf.clear();
        self.timeoutable_buf.clear();
        for (id, slot) in self.tasks.iter().enumerate() {
            match slot.state {
                TaskState::Runnable => self.runnable_buf.push(id),
                TaskState::Blocked {
                    deadline: Some(_), ..
                } => self.timeoutable_buf.push(id),
                _ => {}
            }
        }
    }

    fn all_finished(&self) -> bool {
        self.tasks
            .iter()
            .all(|t| matches!(t.state, TaskState::Finished))
    }

    /// Runs one scheduling decision and grants the baton. Returns
    /// `false` when the execution is over (all finished or aborted).
    fn schedule(&mut self) -> bool {
        if self.aborted {
            return false;
        }
        self.steps += 1;
        self.clock += 1; // every yield point advances virtual time 1 ns
        if self.steps > self.step_limit && self.failure.is_none() {
            self.failure = Some(FailureKind::StepLimit {
                limit: self.step_limit,
            });
            self.aborted = true;
            return false;
        }
        self.collect_enabled();
        if self.runnable_buf.is_empty() && self.timeoutable_buf.is_empty() {
            if self.all_finished() {
                return false;
            }
            // Deadlock: live tasks exist but nothing can run.
            let blocked = self
                .tasks
                .iter()
                .enumerate()
                .filter_map(|(id, t)| match t.state {
                    TaskState::Blocked { key, .. } => Some((id, key)),
                    _ => None,
                })
                .collect();
            self.failure = Some(FailureKind::Deadlock { blocked });
            self.aborted = true;
            return false;
        }
        let current = self.current;
        let runnable = std::mem::take(&mut self.runnable_buf);
        let timeoutable = std::mem::take(&mut self.timeoutable_buf);
        let choice = self.policy.choose(&ChoicePoint {
            current,
            runnable: &runnable,
            timeoutable: &timeoutable,
        });
        self.runnable_buf = runnable;
        self.timeoutable_buf = timeoutable;
        match choice {
            Choice::Run(next) => {
                debug_assert!(
                    matches!(self.tasks[next].state, TaskState::Runnable),
                    "policy chose non-runnable task {next}"
                );
                self.current = next;
            }
            Choice::FireTimeout(next) => {
                let slot = &mut self.tasks[next];
                if let TaskState::Blocked {
                    deadline: Some(deadline),
                    key,
                } = slot.state
                {
                    // Virtual time jumps to the deadline: the wait
                    // returns no earlier than requested, and later
                    // `Instant::now()` reads stay consistent.
                    self.clock = self.clock.max(deadline);
                    slot.state = TaskState::Runnable;
                    slot.woke_by_timeout = true;
                    self.record(next, op::CHAN_TIMEOUT, key, deadline);
                } else {
                    debug_assert!(false, "policy fired timeout on non-timed task {next}");
                }
                self.current = next;
            }
        }
        true
    }
}

/// Ends the execution from inside the state lock: mark aborted (when
/// `fail` is set), wake every OS thread.
fn finish(exec: &Exec, state: &mut MutexGuard<'_, ExecState>) {
    state.aborted = true;
    exec.cv.notify_all();
}

/// One yield point: record `ev`, let the policy reschedule, and wait
/// until this task holds the baton again. No-op when the calling
/// thread is not a modeled task.
pub(crate) fn yield_point(op_name: &'static str, object: ObjectId, aux: u64) {
    let Some((exec, task)) = context() else {
        return;
    };
    let mut state = lock_state(&exec);
    if state.aborted {
        return;
    }
    state.record(task, op_name, object, aux);
    if !state.schedule() {
        finish(&exec, &mut state);
        return;
    }
    if state.current != task {
        exec.cv.notify_all();
        while state.current != task && !state.aborted {
            state = exec.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Blocks the calling task on `key` until [`wake_key`] (or a fired
/// timeout / abort). `deadline` is virtual-time absolute.
pub(crate) fn block_on(key: ObjectId, deadline: Option<u64>) -> BlockResult {
    let Some((exec, task)) = context() else {
        // No controller: a modeled block outside an execution can
        // never be woken — fail loudly instead of hanging the tests.
        panic!(
            "magnon_core::sync (mcheck): blocking wait on obj{key} outside a model-checked \
             execution — run the code under magnon_check::explore/replay"
        );
    };
    let mut state = lock_state(&exec);
    if state.aborted {
        return BlockResult::Aborted;
    }
    state.record(task, op::BLOCK, key, deadline.unwrap_or(0));
    state.tasks[task].state = TaskState::Blocked { key, deadline };
    state.tasks[task].woke_by_timeout = false;
    if !state.schedule() {
        finish(&exec, &mut state);
        return BlockResult::Aborted;
    }
    exec.cv.notify_all();
    loop {
        if state.aborted {
            return BlockResult::Aborted;
        }
        if state.current == task && matches!(state.tasks[task].state, TaskState::Runnable) {
            break;
        }
        state = exec.cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
    if std::mem::take(&mut state.tasks[task].woke_by_timeout) {
        BlockResult::TimedOut
    } else {
        BlockResult::Woken
    }
}

pub(crate) enum BlockResult {
    Woken,
    TimedOut,
    Aborted,
}

/// Marks every task blocked on `key` runnable (they compete for the
/// baton at the next scheduling point — no thundering-herd wake order
/// to model, the policy decides).
pub(crate) fn wake_key(key: ObjectId) {
    let Some((exec, task)) = context() else {
        return;
    };
    let mut state = lock_state(&exec);
    let mut woke = 0u64;
    for slot in state.tasks.iter_mut() {
        if matches!(slot.state, TaskState::Blocked { key: k, .. } if k == key) {
            slot.state = TaskState::Runnable;
            slot.woke_by_timeout = false;
            woke += 1;
        }
    }
    if woke > 0 {
        state.record(task, op::WAKE, key, woke);
    }
}

/// Allocates an id for a new instrumented object.
pub(crate) fn new_object_id() -> ObjectId {
    match active() {
        Some(exec) => {
            let mut state = lock_state(&exec);
            state.next_object += 1;
            state.next_object
        }
        // ordering: Relaxed — ids only need uniqueness, there is no
        // execution to order against in offline mode.
        None => OFFLINE_OBJECTS.fetch_add(1, Ordering::Relaxed),
    }
}

/// Whether the calling thread is a modeled task of an active
/// execution (shim blocking ops use real std waits otherwise).
pub(crate) fn modeled() -> bool {
    context().is_some()
}

/// The calling thread's task id within the active execution, if any.
pub(crate) fn current_task_id() -> Option<TaskId> {
    if active().is_some() {
        current_task()
    } else {
        None
    }
}

/// Virtual `Instant::now()` in nanoseconds: the execution clock when
/// modeled, real monotonic time otherwise.
pub(crate) fn now_nanos() -> u64 {
    if let Some((exec, _)) = context() {
        return lock_state(&exec).clock;
    }
    let epoch = OFFLINE_EPOCH.get_or_init(std::time::Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Advances the virtual clock by `nanos` (models `thread::sleep`
/// without ever blocking: time is the controller's to spend).
pub(crate) fn advance_clock(nanos: u64) {
    if let Some((exec, _)) = context() {
        let mut state = lock_state(&exec);
        state.clock = state.clock.saturating_add(nanos);
    }
}

/// Registers a newly spawned OS thread as a modeled task and parks it
/// until the controller grants it the baton for the first time.
/// Returns the new task's id.
pub(crate) fn register_task() -> Option<TaskId> {
    let (exec, parent) = context()?;
    let mut state = lock_state(&exec);
    let id = state.tasks.len();
    state.tasks.push(TaskSlot {
        state: TaskState::Runnable,
        woke_by_timeout: false,
        park_token: false,
    });
    state.record(parent, op::SPAWN, 0, id as u64);
    Some(id)
}

/// Binds the calling OS thread to task `id` and waits for its first
/// baton grant.
pub(crate) fn enter_task(id: TaskId) {
    let Some(exec) = active() else { return };
    TASK_ID.with(|t| t.set(Some(id)));
    let mut state = lock_state(&exec);
    while state.current != id && !state.aborted {
        state = exec.cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
}

/// Marks the calling task finished and hands the baton on. Safe to
/// call during unwinding.
pub(crate) fn exit_task() {
    let Some((exec, task)) = context() else {
        return;
    };
    TASK_ID.with(|t| t.set(None));
    let mut state = lock_state(&exec);
    state.tasks[task].state = TaskState::Finished;
    state.record(task, op::EXIT, 0, 0);
    // A join waiting on this task blocks on key = JOIN_KEY_BASE + id.
    let key = join_key(task);
    for slot in state.tasks.iter_mut() {
        if matches!(slot.state, TaskState::Blocked { key: k, .. } if k == key) {
            slot.state = TaskState::Runnable;
            slot.woke_by_timeout = false;
        }
    }
    if !state.schedule() {
        finish(&exec, &mut state);
        return;
    }
    exec.cv.notify_all();
}

/// The blocking key a joiner of task `id` waits on.
pub(crate) fn join_key(id: TaskId) -> ObjectId {
    (1 << 61) + id as u64
}

/// The park-token key of task `id`.
pub(crate) fn park_key(id: TaskId) -> ObjectId {
    (1 << 60) + id as u64
}

/// Whether task `id` has finished (for `JoinHandle::is_finished` and
/// join loops).
pub(crate) fn task_finished(id: TaskId) -> bool {
    match active() {
        Some(exec) => matches!(lock_state(&exec).tasks[id].state, TaskState::Finished),
        None => true,
    }
}

/// Takes the calling task's park token, if set.
pub(crate) fn take_park_token() -> bool {
    let Some((exec, task)) = context() else {
        return false;
    };
    let mut state = lock_state(&exec);
    std::mem::take(&mut state.tasks[task].park_token)
}

/// Sets task `id`'s park token and wakes it if parked.
pub(crate) fn set_park_token(id: TaskId) {
    let Some((exec, caller)) = context() else {
        return;
    };
    let mut state = lock_state(&exec);
    state.tasks[id].park_token = true;
    state.record(caller, op::UNPARK, park_key(id), 0);
    let key = park_key(id);
    for slot in state.tasks.iter_mut() {
        if matches!(slot.state, TaskState::Blocked { key: k, .. } if k == key) {
            slot.state = TaskState::Runnable;
            slot.woke_by_timeout = false;
        }
    }
}

/// The virtual deadline `timeout` from now, for timed waits.
pub(crate) fn deadline_after(timeout: std::time::Duration) -> Option<u64> {
    Some(now_nanos().saturating_add(timeout.as_nanos().min(u64::MAX as u128) as u64))
}

/// Runs `body` as the root task of a fresh execution under `policy`.
///
/// The body runs on a dedicated OS thread (so the harness thread can
/// supervise); every thread it spawns through the façade joins the
/// execution. Returns once every modeled task finished or the
/// execution aborted (deadlock/step limit) — aborted executions
/// release blocked tasks by failing their waits, then wait for the
/// unwinding threads to exit.
///
/// # Panics
///
/// Panics when called while another execution is active on this
/// process (executions are global; serialize them with a harness
/// lock).
pub fn run_execution<F>(policy: Box<dyn Policy>, step_limit: u64, body: F) -> RunOutcome
where
    F: FnOnce() + Send + 'static,
{
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState {
            tasks: vec![TaskSlot {
                state: TaskState::Runnable,
                woke_by_timeout: false,
                park_token: false,
            }],
            current: 0,
            policy,
            trace: Trace::default(),
            // Virtual time starts at a fixed origin: replaying a
            // schedule must reproduce the trace byte-for-byte, clock
            // column included. (A nonzero origin keeps modeled
            // Instants away from the zero-underflow edge.)
            clock: 1_000,
            steps: 0,
            step_limit,
            next_object: 0,
            failure: None,
            aborted: false,
            runnable_buf: Vec::new(),
            timeoutable_buf: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    {
        let mut slot = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            slot.is_none(),
            "an mcheck execution is already active — serialize explorations"
        );
        *slot = Some(Arc::clone(&exec));
    }
    let root = std::thread::Builder::new()
        .name("mcheck-root".into())
        .spawn({
            let exec = Arc::clone(&exec);
            move || {
                TASK_ID.with(|t| t.set(Some(0)));
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                // Mark finished while still bound to the task so the
                // trace records the exit.
                let panic_msg = result.err().map(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic payload>")
                        .to_string()
                });
                TASK_ID.with(|t| t.set(Some(0)));
                {
                    let mut state = lock_state(&exec);
                    state.tasks[0].state = TaskState::Finished;
                    state.record(0, op::EXIT, 0, 0);
                    let key = join_key(0);
                    for slot in state.tasks.iter_mut() {
                        if matches!(slot.state, TaskState::Blocked { key: k, .. } if k == key) {
                            slot.state = TaskState::Runnable;
                            slot.woke_by_timeout = false;
                        }
                    }
                    if !state.schedule() {
                        finish(&exec, &mut state);
                    } else {
                        exec.cv.notify_all();
                    }
                }
                TASK_ID.with(|t| t.set(None));
                panic_msg
            }
        })
        .expect("spawn mcheck root thread");
    // Supervise: wait until the execution completes or aborts. The
    // root thread's join below synchronizes with every modeled task
    // having exited (tasks the body spawned are joined by the body or
    // detached — detached tasks keep running until they finish or the
    // abort releases them; give them a bounded real-time grace).
    let root_panic = root.join().unwrap_or(Some("<root thread died>".into()));
    // Wait (bounded) for detached tasks to finish so the next
    // execution starts clean.
    let grace = std::time::Instant::now();
    loop {
        let state = lock_state(&exec);
        let live = state
            .tasks
            .iter()
            .any(|t| !matches!(t.state, TaskState::Finished));
        if !live || state.aborted {
            break;
        }
        drop(state);
        if grace.elapsed() > std::time::Duration::from_secs(10) {
            break;
        }
        std::thread::yield_now();
    }
    let (trace, failure, steps) = {
        let mut state = lock_state(&exec);
        state.aborted = true;
        exec.cv.notify_all();
        (
            std::mem::take(&mut state.trace),
            state.failure.clone(),
            state.steps,
        )
    };
    *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    RunOutcome {
        trace,
        failure,
        root_panic,
        steps,
    }
}

/// Offline (non-modeled) blocking ops need a real condvar per object
/// so façade code still *works* outside executions (single-threaded
/// unit tests, incidental uses). Kept in a side table keyed by object
/// id.
pub(crate) struct OfflineWaiters {
    inner: Mutex<Option<HashMap<ObjectId, Arc<Condvar>>>>,
}

pub(crate) static OFFLINE_WAITERS: OfflineWaiters = OfflineWaiters {
    inner: Mutex::new(None),
};

impl OfflineWaiters {
    pub fn condvar(&self, id: ObjectId) -> Arc<Condvar> {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.get_or_insert_with(HashMap::new)
                .entry(id)
                .or_insert_with(|| Arc::new(Condvar::new())),
        )
    }

    pub fn notify(&self, id: ObjectId) {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cv) = map.as_ref().and_then(|m| m.get(&id)) {
            cv.notify_all();
        }
    }
}
