//! Subset shim for `criterion` (offline build environment).
//!
//! Implements the macro/benchmark-group surface the workspace benches
//! use, measuring wall-clock medians with `std::time::Instant`. No
//! statistical regression machinery — each bench prints
//! `<name>  time: <median> (<iters> iters x <samples> samples)` so
//! relative comparisons between benches in one run remain meaningful.
//!
//! # Machine-readable results
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! bench result is additionally merged into that file as one entry of
//! a JSON array (`label`, `median_s`, `iters`, `samples`, optional
//! throughput rate, unix timestamp). Multiple bench binaries append to
//! the same file, so a whole `cargo bench` run accumulates one
//! trajectory. Pass an **absolute** path — cargo runs bench binaries
//! from the package directory, so a relative path lands next to the
//! bench crate instead of the workspace root. The workspace convention
//! is `BENCH_JSON=$(pwd)/results/BENCH_serve.json` for the serving
//! benches.

use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` (the workspace
/// mostly uses `std::hint::black_box` directly).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// measured iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation printed alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Overrides the default sample count for subsequent benches.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_bench(&id.into(), sample_size, measurement_time, None, f);
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time per bench.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates subsequent benches with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each bench closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration inputs built by `setup`
    /// (setup time excluded from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: time one iteration, then pick an iteration count that
    // makes each sample last measurement_time / sample_size.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let per_sample = measurement_time / sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.3e} elem/s)", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", n as f64 / median),
        None => String::new(),
    };
    println!(
        "  {label:<48} time: {}{rate}  [{iters} iters x {sample_size} samples]",
        format_time(median)
    );
    record_json(label, median, iters, sample_size, throughput);
}

/// Merges one bench result into the JSON array named by `BENCH_JSON`
/// (no-op when unset). The file is maintained by string surgery — the
/// shim has no JSON parser — so anything that is not already an array
/// is overwritten with a fresh one.
fn record_json(
    label: &str,
    median_s: f64,
    iters: u64,
    samples: usize,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let (kind, per_s) = match throughput {
        Some(Throughput::Elements(n)) => ("elem", Some(n as f64 / median_s)),
        Some(Throughput::Bytes(n)) => ("bytes", Some(n as f64 / median_s)),
        None => ("none", None),
    };
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let entry = format!(
        "{{\"label\":{label:?},\"median_s\":{median_s:e},\"iters\":{iters},\
         \"samples\":{samples},\"throughput_kind\":\"{kind}\",\"throughput_per_s\":{},\
         \"unix_ts\":{unix_ts}}}",
        per_s.map_or("null".into(), |v| format!("{v:.6e}")),
    );
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if trimmed.starts_with('[') => {
                    let body = head.trim_end();
                    if body == "[" {
                        format!("[\n{entry}\n]\n")
                    } else {
                        format!("{body},\n{entry}\n]\n")
                    }
                }
                _ => format!("[\n{entry}\n]\n"),
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Temp-file + rename (the lut_store pattern): an interrupted run
    // can never truncate the accumulated trajectory mid-write.
    let tmp = format!("{path}.tmp.{}", std::process::id());
    if std::fs::write(&tmp, merged).is_ok() && std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2.0e-3).ends_with(" ms"));
        assert!(format_time(2.0e-6).ends_with(" us"));
        assert!(format_time(2.0e-9).ends_with(" ns"));
    }
}
