//! Adaptive serving under hot-waveguide skew: watch the placement
//! table, linger windows and fusion counters react to load.
//!
//! Four majority gates of identical design sit on four waveguides that
//! all statically hash onto ONE shard of two — then 80 % of the
//! traffic hammers the first one. The adaptive runtime notices the
//! skew, migrates the co-tenant waveguides to the idle shard, fuses
//! the background requests across waveguides, and stretches/shrinks
//! each worker's linger window to fit its arrival rate:
//!
//! ```text
//! cargo run --release --example serve_adaptive
//! ```

use spinwave_parallel::core::backend::{BackendChoice, OperandSet};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{AdaptiveConfig, GateId, SchedulerBuilder, ServeConfig};
use std::time::{Duration, Instant};

/// All four ids statically hash to the same shard of 2 — the worst
/// case the rebalancer exists for.
const WAVEGUIDES: [u64; 4] = [1, 2, 3, 6];
const ROUNDS: usize = 4;
const BURST: usize = 256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: 128,
        linger: Duration::from_micros(100),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig {
            rebalance_interval: 32,
            rebalance_ratio: 1.5,
            fusion_threshold: 8,
            ..AdaptiveConfig::default()
        },
    });
    let guide = Waveguide::paper_default()?;
    let mut ids: Vec<GateId> = Vec::new();
    for &wg in &WAVEGUIDES {
        ids.push(
            builder.register(
                format!("maj3_wg{wg}"),
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(3)
                    .on_waveguide(WaveguideId(wg))
                    .build()?,
                BackendChoice::Cached,
            )?,
        );
    }
    let scheduler = builder.build()?;

    println!("initial placement (all four waveguides statically co-tenant):");
    for &id in &ids {
        println!(
            "  {} -> shard {}",
            scheduler.gate_name(id).unwrap_or("?"),
            scheduler.shard_of(id).unwrap_or(usize::MAX),
        );
    }

    // Skewed bursts: 80 % of requests on the hot waveguide.
    let start = Instant::now();
    for round in 0..ROUNDS {
        let burst: Vec<(GateId, OperandSet)> = (0..BURST)
            .map(|i| {
                let id = if i % 5 != 4 {
                    ids[0]
                } else {
                    ids[1 + (i / 5) % (ids.len() - 1)]
                };
                let seed = (round * BURST + i) as u64;
                (
                    id,
                    OperandSet::new(vec![
                        Word::from_u8((seed * 37) as u8),
                        Word::from_u8((seed * 59) as u8),
                        Word::from_u8((seed * 83) as u8),
                    ]),
                )
            })
            .collect();
        let outputs = scheduler.evaluate_many(&burst)?;

        // Spot-check a request against its sequential reference.
        let (check_id, check_set) = &burst[7];
        let reference = scheduler
            .gate(*check_id)
            .expect("registered")
            .evaluate(check_set.words())?;
        assert_eq!(outputs[7].word(), reference.word());

        let telemetry = scheduler.telemetry();
        println!(
            "round {round}: {} served, {} rebalance move(s) so far, per-shard lingers {:?}",
            outputs.len(),
            telemetry.rebalances,
            telemetry
                .shards
                .iter()
                .map(|s| s.linger)
                .collect::<Vec<_>>(),
        );
    }
    let elapsed = start.elapsed();

    let stats = scheduler.stats();
    let telemetry = scheduler.telemetry();
    println!(
        "served {} skewed requests in {elapsed:?} ({:.0} req/s)",
        stats.completed,
        stats.completed as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "coalescing: {} drains, mean {:.1} req/drain, max {}, {} requests fused across waveguides",
        stats.drain_passes,
        stats.mean_drain(),
        stats.max_drain,
        stats.fused_requests,
    );
    println!("final placement and per-lane load:");
    for lane in &telemetry.lanes {
        println!(
            "  {} {} -> shard {} ({} recent requests, {} served)",
            lane.id, lane.lane, lane.shard, lane.recent_requests, lane.served,
        );
    }
    println!(
        "per-shard drained: {:?} (static placement would leave one shard at 0)",
        telemetry
            .shards
            .iter()
            .map(|s| s.drained)
            .collect::<Vec<_>>(),
    );
    assert_eq!(stats.failed, 0);
    scheduler.shutdown()?;
    Ok(())
}
