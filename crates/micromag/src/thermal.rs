//! Stochastic thermal field (Brown's fluctuating field).
//!
//! Finite temperature enters the LLG equation as a Gaussian random
//! field with variance set by the fluctuation–dissipation theorem
//! (W. F. Brown, Phys. Rev. 130, 1677 (1963)):
//!
//! ```text
//! <H_i(t) H_j(t')> = (2 α k_B T / (γ μ₀² Ms V)) δ_ij δ(t − t')
//! ```
//!
//! Discretised with time step `dt`, each cell receives an independent
//! field with standard deviation `σ = sqrt(2 α k_B T / (γ μ₀² Ms V dt))`
//! per component. The paper's simulations are at 0 K; this term enables
//! the failure-injection studies in `magnon-core::robustness` — how hot
//! can the gate run before majority votes start flipping?

use crate::error::SimError;
use crate::field::FieldTerm;
use crate::mesh::Mesh;
use magnon_math::constants::{GAMMA_E, K_B, MU_0};
use magnon_math::Vec3;
use magnon_physics::material::Material;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// A stochastic thermal field term.
///
/// The field is resampled whenever the solver time advances past the
/// last sampled step (the same noise realisation is reused within one
/// RK4 step's substages, which keeps the integrator consistent).
///
/// # Examples
///
/// ```
/// use magnon_micromag::thermal::ThermalField;
/// use magnon_micromag::mesh::Mesh;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(100.0e-9, 2.0e-9, 50.0e-9, 1.0e-9)?;
/// let thermal = ThermalField::new(&Material::fe_co_b(), &mesh, 300.0, 1.0e-14, 42)?;
/// assert!(thermal.sigma() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct ThermalField {
    sigma: f64,
    dt: f64,
    state: Mutex<ThermalState>,
}

struct ThermalState {
    rng: StdRng,
    fields: Vec<Vec3>,
    last_step: i64,
}

impl std::fmt::Debug for ThermalField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThermalField")
            .field("sigma", &self.sigma)
            .field("dt", &self.dt)
            .finish()
    }
}

impl ThermalField {
    /// Creates a thermal field for `material` on `mesh` at temperature
    /// `temperature` (K), matched to the solver step `dt` (s), seeded
    /// deterministically with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a negative temperature
    /// or non-positive `dt`.
    pub fn new(
        material: &Material,
        mesh: &Mesh,
        temperature: f64,
        dt: f64,
        seed: u64,
    ) -> Result<Self, SimError> {
        if !(temperature.is_finite() && temperature >= 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "temperature",
                value: temperature,
            });
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "dt",
                value: dt,
            });
        }
        let volume = mesh.cell_volume();
        let sigma = (2.0 * material.gilbert_damping() * K_B * temperature
            / (GAMMA_E * MU_0 * MU_0 * material.saturation_magnetization() * volume * dt))
            .sqrt();
        Ok(ThermalField {
            sigma,
            dt,
            state: Mutex::new(ThermalState {
                rng: StdRng::seed_from_u64(seed),
                fields: vec![Vec3::ZERO; mesh.cell_count()],
                last_step: -1,
            }),
        })
    }

    /// Per-component field standard deviation in A/m.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    fn gaussian(rng: &mut StdRng) -> f64 {
        // Box–Muller transform.
        loop {
            let u1: f64 = rng.gen::<f64>();
            if u1 > 1e-300 {
                let u2: f64 = rng.gen::<f64>();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

impl FieldTerm for ThermalField {
    fn add_field(&self, _mesh: &Mesh, _m: &[Vec3], t: f64, h: &mut [Vec3]) {
        let mut state = self.state.lock().expect("thermal state lock");
        let step = (t / self.dt).floor() as i64;
        if step != state.last_step {
            state.last_step = step;
            let sigma = self.sigma;
            // Split borrow: sample into a scratch variable per cell.
            let ThermalState { rng, fields, .. } = &mut *state;
            for f in fields.iter_mut() {
                *f = Vec3::new(
                    sigma * Self::gaussian(rng),
                    sigma * Self::gaussian(rng),
                    sigma * Self::gaussian(rng),
                );
            }
        }
        for (hi, fi) in h.iter_mut().zip(&state.fields) {
            *hi += *fi;
        }
    }

    fn name(&self) -> &'static str {
        "thermal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::NM;

    fn mesh() -> Mesh {
        Mesh::line(100.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap()
    }

    #[test]
    fn zero_temperature_is_silent() {
        let t = ThermalField::new(&Material::fe_co_b(), &mesh(), 0.0, 1e-14, 1).unwrap();
        assert_eq!(t.sigma(), 0.0);
        let m = vec![Vec3::Z; mesh().cell_count()];
        let mut h = vec![Vec3::ZERO; mesh().cell_count()];
        t.add_field(&mesh(), &m, 0.0, &mut h);
        assert!(h.iter().all(|v| v.norm() == 0.0));
    }

    #[test]
    fn sigma_scales_with_sqrt_temperature() {
        let mat = Material::fe_co_b();
        let t100 = ThermalField::new(&mat, &mesh(), 100.0, 1e-14, 1).unwrap();
        let t400 = ThermalField::new(&mat, &mesh(), 400.0, 1e-14, 1).unwrap();
        assert!((t400.sigma() / t100.sigma() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_scales_inverse_sqrt_volume_and_dt() {
        let mat = Material::fe_co_b();
        let fine = Mesh::line(100.0 * NM, 1.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let coarse = mesh();
        let s_fine = ThermalField::new(&mat, &fine, 300.0, 1e-14, 1)
            .unwrap()
            .sigma();
        let s_coarse = ThermalField::new(&mat, &coarse, 300.0, 1e-14, 1)
            .unwrap()
            .sigma();
        // Half the cell volume -> sqrt(2) larger sigma.
        assert!((s_fine / s_coarse - 2.0f64.sqrt()).abs() < 1e-12);
        let s_dt = ThermalField::new(&mat, &coarse, 300.0, 4e-14, 1)
            .unwrap()
            .sigma();
        assert!((s_coarse / s_dt - 2.0).abs() < 1e-12);
    }

    #[test]
    fn field_statistics_match_sigma() {
        let mat = Material::fe_co_b();
        let mesh = mesh();
        let t = ThermalField::new(&mat, &mesh, 300.0, 1e-14, 7).unwrap();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for step in 0..200 {
            let mut h = vec![Vec3::ZERO; mesh.cell_count()];
            t.add_field(&mesh, &m, step as f64 * 1e-14, &mut h);
            for v in &h {
                for comp in [v.x, v.y, v.z] {
                    sum += comp;
                    sum_sq += comp * comp;
                    count += 1;
                }
            }
        }
        let mean = sum / count as f64;
        let std = (sum_sq / count as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.05 * t.sigma(), "biased noise: mean = {mean}");
        assert!(
            (std / t.sigma() - 1.0).abs() < 0.05,
            "std = {std}, sigma = {}",
            t.sigma()
        );
    }

    #[test]
    fn same_step_reuses_realisation() {
        let mat = Material::fe_co_b();
        let mesh = mesh();
        let t = ThermalField::new(&mat, &mesh, 300.0, 1e-14, 9).unwrap();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h1 = vec![Vec3::ZERO; mesh.cell_count()];
        let mut h2 = vec![Vec3::ZERO; mesh.cell_count()];
        // Two calls within the same step (RK4 substages) see the same field.
        t.add_field(&mesh, &m, 1.0e-14, &mut h1);
        t.add_field(&mesh, &m, 1.4e-14, &mut h2);
        assert_eq!(h1, h2);
        // A later step resamples.
        let mut h3 = vec![Vec3::ZERO; mesh.cell_count()];
        t.add_field(&mesh, &m, 2.5e-14, &mut h3);
        assert_ne!(h1, h3);
    }

    #[test]
    fn deterministic_under_seed() {
        let mat = Material::fe_co_b();
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h_a = vec![Vec3::ZERO; mesh.cell_count()];
        let mut h_b = vec![Vec3::ZERO; mesh.cell_count()];
        ThermalField::new(&mat, &mesh, 300.0, 1e-14, 123)
            .unwrap()
            .add_field(&mesh, &m, 0.0, &mut h_a);
        ThermalField::new(&mat, &mesh, 300.0, 1e-14, 123)
            .unwrap()
            .add_field(&mesh, &m, 0.0, &mut h_b);
        assert_eq!(h_a, h_b);
    }

    #[test]
    fn validation() {
        let mat = Material::fe_co_b();
        assert!(ThermalField::new(&mat, &mesh(), -1.0, 1e-14, 0).is_err());
        assert!(ThermalField::new(&mat, &mesh(), 300.0, 0.0, 0).is_err());
    }

    #[test]
    fn room_temperature_magnitude() {
        // For a 2x50x1 nm FeCoB cell at 300 K and dt = 10 fs the thermal
        // field is in the kA/m range — strong on the nanoscale, which is
        // why the robustness study matters.
        let t = ThermalField::new(&Material::fe_co_b(), &mesh(), 300.0, 1e-14, 0).unwrap();
        assert!(
            t.sigma() > 1.0e2 && t.sigma() < 1.0e6,
            "sigma = {}",
            t.sigma()
        );
    }
}
