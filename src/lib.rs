//! # spinwave-parallel
//!
//! A comprehensive Rust reproduction of *"n-bit Data Parallel Spin Wave
//! Logic Gate"* (Mahmoud, Vanderveken, Ciubotaru, Adelmann, Cotofana,
//! Hamdioui — DATE 2020, arXiv:2109.05229).
//!
//! Spin waves of different frequencies coexist in one waveguide and only
//! interfere with their own frequency. This umbrella crate re-exports
//! the whole workspace:
//!
//! * [`math`] — FFT, Goertzel, ODE integrators, root finding,
//! * [`physics`] — materials, demagnetizing factors, dispersion, damping,
//! * [`micromag`] — finite-difference LLG simulator (the OOMMF-class
//!   substrate used for validation),
//! * [`core`] — the paper's contribution: `n`-bit data-parallel
//!   multi-frequency in-line logic gates (majority, XOR) with analytic
//!   and micromagnetic evaluation,
//! * [`cost`] — area/delay/energy models and the scalar-vs-parallel
//!   comparison of the paper's §V.B,
//! * [`circuits`] — word-level circuits (full adders, parity trees)
//!   composed from data-parallel gates.
//!
//! # Quickstart
//!
//! Build a byte-wide (8-channel) 3-input majority gate and evaluate all
//! eight data sets at once:
//!
//! ```
//! use spinwave_parallel::core::prelude::*;
//! use spinwave_parallel::physics::waveguide::Waveguide;
//! use spinwave_parallel::physics::material::Material;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let guide = Waveguide::paper_default()?;
//! let gate = ParallelGateBuilder::new(guide)
//!     .channels(8)
//!     .inputs(3)
//!     .function(LogicFunction::Majority)
//!     .build()?;
//!
//! let a = Word::from_u8(0b1010_1010);
//! let b = Word::from_u8(0b1100_1100);
//! let c = Word::from_u8(0b1111_0000);
//! let out = gate.evaluate(&[a, b, c])?;
//! assert_eq!(out.word().to_u8(), (0b1010_1010u8 & 0b1100_1100)
//!     | (0b1010_1010u8 & 0b1111_0000)
//!     | (0b1100_1100u8 & 0b1111_0000));
//! # let _ = Material::fe_co_b();
//! # Ok(())
//! # }
//! ```

pub use magnon_circuits as circuits;
pub use magnon_core as core;
pub use magnon_cost as cost;
pub use magnon_math as math;
pub use magnon_micromag as micromag;
pub use magnon_physics as physics;
