//! Area, delay and energy models for spin-wave logic implementations.
//!
//! Reproduces the paper's §V.B comparison: a byte-wide data-parallel
//! gate against (a) eight replicated scalar gates and (b) one scalar
//! gate reused serially over eight time slots. Following the paper, the
//! excitation/detection transducers (10 nm × 50 nm ME cells) dominate
//! delay and energy, so the two implementation styles differ in **area
//! only** — the data-parallel gate packs all 24 sources and 8 detectors
//! into a single waveguide.
//!
//! # Examples
//!
//! ```
//! use magnon_core::prelude::*;
//! use magnon_cost::{CostModel, Transducer};
//! use magnon_physics::waveguide::Waveguide;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
//!     .channels(8).inputs(3).build()?;
//! let comparison = CostModel::new(Transducer::paper_default()).compare(&gate)?;
//! // The paper reports 4.16x area with equal delay and energy.
//! assert!(comparison.area_ratio() > 2.5);
//! assert!((comparison.energy_ratio() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod compare;
pub mod report;
pub mod sweep;
pub mod transducer;

pub use compare::{Comparison, CostModel};
pub use report::CostReport;
pub use transducer::Transducer;
