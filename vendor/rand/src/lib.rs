//! Subset shim for `rand` 0.8 (offline build environment).
//!
//! Implements exactly the surface the workspace uses: a seedable
//! [`rngs::StdRng`] plus [`Rng::gen`] / [`Rng::gen_range`]. The
//! generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for Monte-Carlo tests, though the streams differ from upstream
//! `rand`'s ChaCha-based `StdRng` (all workspace tests assert properties,
//! not exact sequences).

use std::ops::{Range, RangeInclusive};

/// Types constructible from a single `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable uniformly from the generator's full output range
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut rngs::StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by rejection-free modular reduction.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The generator methods the workspace calls.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from its full range (`Standard`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsMutStdRng,
    {
        T::draw(self.as_mut_std())
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsMutStdRng,
    {
        range.sample(self.as_mut_std())
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsMutStdRng,
    {
        f64::draw(self.as_mut_std()) < p
    }
}

/// Helper supertrait so distribution impls can stay concrete over
/// [`rngs::StdRng`] (the only generator in this shim).
pub trait AsMutStdRng {
    /// The concrete generator.
    fn as_mut_std(&mut self) -> &mut rngs::StdRng;
}

pub mod rngs {
    //! Concrete generators.

    /// xoshiro256** generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Advances the state and returns 64 random bits.
        pub fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl super::AsMutStdRng for StdRng {
        fn as_mut_std(&mut self) -> &mut StdRng {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let u: usize = rng.gen_range(1..=64);
            assert!((1..=64).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let v: u8 = rng.gen();
            counts[(v / 64) as usize] += 1;
        }
        for c in counts {
            assert!(c > 700, "bucket badly unbalanced: {counts:?}");
        }
    }
}
