//! Small-sample statistics for signal post-processing.

use crate::error::MathError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// use magnon_math::stats::mean;
/// # fn main() -> Result<(), magnon_math::MathError> {
/// assert_eq!(mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(xs: &[f64]) -> Result<f64, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn variance(xs: &[f64]) -> Result<f64, MathError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64, MathError> {
    Ok(variance(xs)?.sqrt())
}

/// Root mean square.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn rms(xs: &[f64]) -> Result<f64, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    Ok((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Index and value of the maximum element (ties resolve to the first).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn argmax(xs: &[f64]) -> Result<(usize, f64), MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mut best = (0usize, xs[0]);
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > best.1 {
            best = (i, x);
        }
    }
    Ok(best)
}

/// Largest absolute value in the slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn max_abs(xs: &[f64]) -> Result<f64, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    Ok(xs.iter().fold(0.0f64, |acc, &x| acc.max(x.abs())))
}

/// Relative difference `|a - b| / max(|a|, |b|)`, or zero when both are
/// (near) zero. Symmetric in its arguments; used by tests and the
/// experiment harness to compare paper vs measured values.
///
/// # Examples
///
/// ```
/// use magnon_math::stats::relative_difference;
/// assert!(relative_difference(100.0, 104.0) < 0.05);
/// assert_eq!(relative_difference(0.0, 0.0), 0.0);
/// ```
pub fn relative_difference(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale < 1e-300 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(mean(&[]), Err(MathError::EmptyInput));
        assert_eq!(variance(&[]), Err(MathError::EmptyInput));
        assert_eq!(rms(&[]), Err(MathError::EmptyInput));
        assert_eq!(argmax(&[]), Err(MathError::EmptyInput));
        assert_eq!(max_abs(&[]), Err(MathError::EmptyInput));
    }

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert_eq!(std_dev(&xs).unwrap(), 2.0);
    }

    #[test]
    fn rms_of_constant() {
        assert_eq!(rms(&[-3.0, -3.0, -3.0]).unwrap(), 3.0);
    }

    #[test]
    fn argmax_first_tie() {
        let (i, v) = argmax(&[1.0, 5.0, 5.0, 2.0]).unwrap();
        assert_eq!(i, 1);
        assert_eq!(v, 5.0);
    }

    #[test]
    fn max_abs_mixed_signs() {
        assert_eq!(max_abs(&[1.0, -7.0, 3.0]).unwrap(), 7.0);
    }

    #[test]
    fn relative_difference_properties() {
        assert_eq!(relative_difference(1.0, 1.0), 0.0);
        assert!((relative_difference(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_difference(3.0, 5.0), relative_difference(5.0, 3.0));
    }

    #[test]
    fn single_element() {
        assert_eq!(mean(&[42.0]).unwrap(), 42.0);
        assert_eq!(variance(&[42.0]).unwrap(), 0.0);
        assert_eq!(argmax(&[42.0]).unwrap(), (0, 42.0));
    }
}
