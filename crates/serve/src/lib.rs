//! Sharded serving runtime for data-parallel spin-wave gates.
//!
//! The source paper evaluates `n` operand sets per pass inside one
//! waveguide; its companion (*Multi-frequency Data Parallel Spin Wave
//! Logic Gates*, arXiv:2008.12220) extends the idea across gates
//! sharing a medium. This crate turns both into a serving runtime on
//! top of [`magnon_core::backend::GateSession`]:
//!
//! * [`Scheduler`] — accepts tagged evaluation requests on bounded
//!   per-shard queues, coalesces them under a batch-size/linger policy
//!   and answers through [`Ticket`]s;
//! * **waveguide-aware sharding** — requests route by their gate's
//!   [`magnon_core::gate::WaveguideId`], so gates sharing a waveguide
//!   land on one shard and batch *across gates* in a single drain
//!   cycle, while `N` workers each own independent backend splits
//!   ([`magnon_core::backend::SpinWaveBackend::split`]);
//! * **load-adaptive policies** ([`AdaptiveConfig`], fed by the
//!   lock-free [`telemetry`] counters) — per-worker linger windows that
//!   shrink under light load and stretch under bursts, a placement
//!   table that moves co-tenant waveguides off hot shards, and fusion
//!   of design-compatible requests across *different* waveguides into
//!   one batch when drains run deep;
//! * [`ScheduledBank`] — plugs the scheduler into circuit evaluation
//!   ([`magnon_circuits::netlist::GateDispatcher`]), so adders, ALUs
//!   and parity trees ride the same coalescing;
//! * [`CircuitExecutor`] — runs compiled circuit plans
//!   ([`magnon_compiler::CompiledCircuit`]) through the scheduler with
//!   dependency-aware pipelined submission: each gate node's request
//!   goes out the moment its operands complete, so independent
//!   subgraphs (and different operand sets) interleave across shards
//!   instead of marching level by level;
//! * **LUT persistence** — with [`ServeConfig::lut_dir`] set, cached
//!   backends save their truth-table LUTs on
//!   [`Scheduler::shutdown`] and reload them on
//!   [`SchedulerBuilder::build`], making warm restarts recomputation-
//!   free (format: [`magnon_core::lut_store`]).
//!
//! # Example
//!
//! ```
//! use magnon_core::backend::{BackendChoice, OperandSet};
//! use magnon_core::prelude::*;
//! use magnon_physics::waveguide::Waveguide;
//! use magnon_serve::{ScheduledBank, SchedulerBuilder, ServeConfig};
//! use magnon_circuits::adder::RippleCarryAdder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = SchedulerBuilder::new(ServeConfig::default());
//! let (maj3, xor2) = builder.register_circuit_gates(
//!     Waveguide::paper_default()?,
//!     WaveguideId(0),
//!     8,
//!     BackendChoice::Cached,
//! )?;
//! let scheduler = builder.build()?;
//!
//! // Raw gate traffic…
//! let ticket = scheduler.submit(maj3, OperandSet::new(vec![
//!     Word::from_u8(0x0F), Word::from_u8(0x33), Word::from_u8(0x55),
//! ]))?;
//! assert_eq!(ticket.wait()?.word().to_u8(), 0x17);
//!
//! // …and whole circuits share the same shards and batches.
//! let adder = RippleCarryAdder::new(8, 8)?;
//! let mut bank = ScheduledBank::new(&scheduler, maj3, xor2)?;
//! let sums = adder.add_many_on(
//!     &mut bank,
//!     &[100, 200, 15, 0, 255, 1, 77, 128],
//!     &[27, 55, 240, 0, 1, 255, 23, 127],
//! )?;
//! assert_eq!(sums[0], 127);
//! scheduler.shutdown()?;
//! # Ok(())
//! # }
//! ```

pub mod dispatch;
pub mod error;
pub mod pipeline;
pub mod request;
pub mod scheduler;
pub mod telemetry;

pub use dispatch::ScheduledBank;
pub use error::ServeError;
pub use pipeline::{register_compiled, CircuitExecutor, CompiledGates};
pub use request::{GateId, SchedulerStats, Ticket};
pub use scheduler::{Scheduler, SchedulerBuilder, ServeConfig, ShutdownReport};
pub use telemetry::{AdaptiveConfig, LaneTelemetry, ShardTelemetry, TelemetrySnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_core::backend::{BackendChoice, OperandSet};
    use magnon_core::gate::{ParallelGateBuilder, WaveguideId};
    use magnon_core::truth::LogicFunction;
    use magnon_core::word::Word;
    use magnon_physics::waveguide::Waveguide;
    use std::time::Duration;

    fn quick_config(workers: usize) -> ServeConfig {
        ServeConfig {
            keep_readouts: false,
            workers,
            max_batch: 64,
            linger: Duration::from_micros(100),
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig::default(),
        }
    }

    fn byte_majority() -> magnon_core::gate::ParallelGate {
        ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .build()
            .unwrap()
    }

    fn sample_sets(count: usize, inputs: usize) -> Vec<OperandSet> {
        (0..count as u64)
            .map(|i| {
                let seed = 0x9E37_79B9u64.wrapping_mul(i + 1);
                OperandSet::new(
                    (0..inputs as u64)
                        .map(|j| Word::from_u8((seed >> (8 * j)) as u8))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn scheduler_answers_match_direct_evaluation() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(quick_config(2));
        let id = builder
            .register("maj3", gate.clone(), BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        let sets = sample_sets(32, 3);
        let tickets: Vec<Ticket> = sets
            .iter()
            .map(|set| scheduler.submit(id, set.clone()).unwrap())
            .collect();
        // Redeem in reverse: completions are tag-routed, not positional.
        for (ticket, set) in tickets.into_iter().rev().zip(sets.iter().rev()) {
            assert_eq!(
                ticket.wait().unwrap().word(),
                gate.evaluate(set.words()).unwrap().word()
            );
        }
        let stats = scheduler.stats();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.failed, 0);
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn gates_sharing_a_waveguide_share_a_shard() {
        let guide = Waveguide::paper_default().unwrap();
        let mut builder = SchedulerBuilder::new(quick_config(4));
        let shared_a = builder
            .register(
                "maj_wg1",
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(3)
                    .on_waveguide(WaveguideId(1))
                    .build()
                    .unwrap(),
                BackendChoice::Analytic,
            )
            .unwrap();
        let shared_b = builder
            .register(
                "xor_wg1",
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(2)
                    .function(LogicFunction::Xor)
                    .on_waveguide(WaveguideId(1))
                    .build()
                    .unwrap(),
                BackendChoice::Analytic,
            )
            .unwrap();
        let elsewhere = builder
            .register(
                "maj_wg2",
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(3)
                    .on_waveguide(WaveguideId(2))
                    .build()
                    .unwrap(),
                BackendChoice::Analytic,
            )
            .unwrap();
        let scheduler = builder.build().unwrap();
        assert_eq!(scheduler.shard_of(shared_a), scheduler.shard_of(shared_b));
        assert_ne!(scheduler.shard_of(shared_a), scheduler.shard_of(elsewhere));
        assert_eq!(scheduler.worker_count(), 4);
        assert_eq!(scheduler.gate_count(), 3);
        assert_eq!(scheduler.gate_name(shared_a), Some("maj_wg1"));

        // Mixed traffic across both co-located gates stays correct.
        let maj_sets = sample_sets(8, 3);
        let xor_sets = sample_sets(8, 2);
        let mut requests = Vec::new();
        for (m, x) in maj_sets.iter().zip(&xor_sets) {
            requests.push((shared_a, m.clone()));
            requests.push((shared_b, x.clone()));
        }
        let outputs = scheduler.evaluate_many(&requests).unwrap();
        let maj_gate = scheduler.gate(shared_a).unwrap().clone();
        let xor_gate = scheduler.gate(shared_b).unwrap().clone();
        for (k, output) in outputs.iter().enumerate() {
            let (gate, set) = if k % 2 == 0 {
                (&maj_gate, &maj_sets[k / 2])
            } else {
                (&xor_gate, &xor_sets[k / 2])
            };
            assert_eq!(output.word(), gate.evaluate(set.words()).unwrap().word());
        }
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn errors_land_on_the_offending_request_only() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(quick_config(1));
        let id = builder
            .register("maj3", gate.clone(), BackendChoice::Analytic)
            .unwrap();
        let scheduler = builder.build().unwrap();
        let good = OperandSet::new(vec![Word::from_u8(1), Word::from_u8(2), Word::from_u8(3)]);
        let bad = OperandSet::new(vec![Word::from_u8(1)]);
        let t_good = scheduler.submit(id, good.clone()).unwrap();
        let t_bad = scheduler.submit(id, bad).unwrap();
        let t_good2 = scheduler.submit(id, good.clone()).unwrap();
        assert!(t_good.wait().is_ok());
        assert!(matches!(t_bad.wait(), Err(ServeError::Gate(_))));
        assert!(t_good2.wait().is_ok());
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn unknown_gate_and_duplicate_names_rejected() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(quick_config(1));
        builder
            .register("maj3", gate.clone(), BackendChoice::Analytic)
            .unwrap();
        assert!(matches!(
            builder.register("maj3", gate.clone(), BackendChoice::Analytic),
            Err(ServeError::Gate(_))
        ));
        let scheduler = builder.build().unwrap();
        let bogus = GateId(7);
        assert!(matches!(
            scheduler.submit(bogus, sample_sets(1, 3).pop().unwrap()),
            Err(ServeError::UnknownGate { index: 7 })
        ));
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn coalescing_shows_up_in_stats_under_batched_load() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            linger: Duration::from_millis(2),
            ..quick_config(1)
        });
        let id = builder
            .register("maj3", gate, BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        let requests: Vec<(GateId, OperandSet)> = sample_sets(48, 3)
            .into_iter()
            .map(|set| (id, set))
            .collect();
        scheduler.evaluate_many(&requests).unwrap();
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 48);
        assert!(
            stats.drain_passes < 48,
            "48 requests should not need 48 drain cycles (got {})",
            stats.drain_passes
        );
        assert!(stats.coalesced_requests > 0);
        assert!(stats.max_drain > 1);
        assert!(stats.mean_drain() > 1.0);
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn scheduled_bank_runs_circuits_through_the_runtime() {
        use magnon_circuits::alu::{Alu, AluOp};
        let mut builder = SchedulerBuilder::new(quick_config(2));
        let (maj3, xor2) = builder
            .register_circuit_gates(
                Waveguide::paper_default().unwrap(),
                WaveguideId(0),
                8,
                BackendChoice::Cached,
            )
            .unwrap();
        let scheduler = builder.build().unwrap();
        let alu = Alu::new(8, 8).unwrap();
        let a = [200u64, 15, 255, 0, 77, 128, 33, 1];
        let b = [55u64, 15, 1, 0, 12, 127, 3, 254];
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor] {
            let mut bank = ScheduledBank::new(&scheduler, maj3, xor2).unwrap();
            let served = alu.execute_on(&mut bank, op, &a, &b).unwrap();
            assert_eq!(served, alu.execute(op, &a, &b).unwrap(), "{op:?}");
        }
        // Slot validation: swapped ids are rejected.
        assert!(ScheduledBank::new(&scheduler, xor2, maj3).is_err());
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn try_submit_reports_a_full_queue() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            max_batch: 4,
            linger: Duration::from_millis(50),
            queue_depth: 1,
            lut_dir: None,
            adaptive: AdaptiveConfig::default(),
        });
        let id = builder
            .register("maj3", gate, BackendChoice::Analytic)
            .unwrap();
        let scheduler = builder.build().unwrap();
        // Flood a depth-1 queue; at least one try_submit must bounce.
        let mut bounced = false;
        let mut tickets = Vec::new();
        for set in sample_sets(64, 3) {
            match scheduler.try_submit(id, set) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull { shard: 0 }) => bounced = true,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(bounced, "a depth-1 queue under flood must report QueueFull");
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn queue_gauge_stays_bounded_under_blocking_backpressure() {
        // The gauge counts a submission from just before its `send`
        // (never after: counting post-send races the worker's drain
        // decrement and can dip the gauge negative — the model
        // checker's gauge invariant pinned that down). The bound under
        // backpressure is therefore "everything submitted and not yet
        // drained": queue_depth in the channel, plus max_batch
        // mid-collection, plus at most one parked submitter per
        // submitting thread (here: one). The gauge must also never
        // read negative and must return to zero once traffic drains.
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            max_batch: 1,
            linger: Duration::ZERO,
            queue_depth: 1,
            lut_dir: None,
            adaptive: AdaptiveConfig::off(),
        });
        let id = builder
            .register("maj3", gate, BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        let done = std::sync::atomic::AtomicBool::new(false);
        let mut max_seen = 0u64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Flood through the blocking path: with queue_depth 1
                // and serial drains, most of these submissions park.
                let tickets: Vec<Ticket> = sample_sets(64, 3)
                    .into_iter()
                    .map(|set| scheduler.submit(id, set).unwrap())
                    .collect();
                for ticket in tickets {
                    ticket.wait().unwrap();
                }
                done.store(true, std::sync::atomic::Ordering::Release);
            });
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                max_seen = max_seen.max(scheduler.telemetry().shards[0].queued);
                std::thread::yield_now();
            }
        });
        assert!(
            max_seen <= 3,
            "queued gauge must stay within depth 1 + one mid-collection job \
             + one parked submitter = 3, saw {max_seen}"
        );
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 64);
        assert_eq!(scheduler.telemetry().shards[0].queued, 0);
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn zero_max_batch_is_rejected_at_build() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            max_batch: 0,
            ..quick_config(1)
        });
        builder
            .register("maj3", gate, BackendChoice::Analytic)
            .unwrap();
        match builder.build() {
            Err(ServeError::Config { reason }) => {
                assert!(reason.contains("max_batch"), "got: {reason}")
            }
            other => panic!("max_batch: 0 must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn inverted_adaptive_linger_bounds_are_rejected_at_build() {
        let gate = byte_majority();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            adaptive: AdaptiveConfig {
                min_linger: Duration::from_millis(5),
                max_linger: Duration::from_micros(5),
                ..AdaptiveConfig::default()
            },
            ..quick_config(1)
        });
        builder
            .register("maj3", gate, BackendChoice::Analytic)
            .unwrap();
        assert!(matches!(builder.build(), Err(ServeError::Config { .. })));
    }

    #[test]
    fn static_placement_spreads_even_waveguide_ids_over_two_shards() {
        let guide = Waveguide::paper_default().unwrap();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            adaptive: AdaptiveConfig::off(),
            ..quick_config(2)
        });
        let ids: Vec<GateId> = [0u64, 2, 4, 6]
            .iter()
            .map(|&wg| {
                builder
                    .register(
                        format!("maj_wg{wg}"),
                        ParallelGateBuilder::new(guide)
                            .channels(8)
                            .inputs(3)
                            .on_waveguide(WaveguideId(wg))
                            .build()
                            .unwrap(),
                        BackendChoice::Analytic,
                    )
                    .unwrap()
            })
            .collect();
        let scheduler = builder.build().unwrap();
        let shards: std::collections::BTreeSet<usize> = ids
            .iter()
            .map(|&id| scheduler.shard_of(id).unwrap())
            .collect();
        assert_eq!(
            shards.len(),
            2,
            "all-even waveguide ids must use both shards (raw modulo would pin shard 0)"
        );
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn rebalancing_moves_the_cotenant_off_a_hot_shard() {
        let guide = Waveguide::paper_default().unwrap();
        // Waveguides 0 and 4 statically hash to the same shard of 2.
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 2,
            adaptive: AdaptiveConfig {
                rebalance: true,
                rebalance_interval: 8,
                rebalance_ratio: 1.5,
                fusion: false,
                ..AdaptiveConfig::default()
            },
            ..quick_config(2)
        });
        let make = |wg: u64| {
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(3)
                .on_waveguide(WaveguideId(wg))
                .build()
                .unwrap()
        };
        let hot = builder
            .register("maj_hot", make(0), BackendChoice::Cached)
            .unwrap();
        let cold = builder
            .register("maj_cold", make(4), BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        assert_eq!(
            scheduler.shard_of(hot),
            scheduler.shard_of(cold),
            "precondition: both waveguides start co-tenant"
        );
        // 7/8 of the traffic hammers the hot waveguide.
        let sets = sample_sets(64, 3);
        let requests: Vec<(GateId, OperandSet)> = sets
            .iter()
            .enumerate()
            .map(|(i, set)| (if i % 8 == 7 { cold } else { hot }, set.clone()))
            .collect();
        let outputs = scheduler.evaluate_many(&requests).unwrap();
        for ((id, set), output) in requests.iter().zip(&outputs) {
            let reference = scheduler.gate(*id).unwrap().evaluate(set.words()).unwrap();
            assert_eq!(output.word(), reference.word());
        }
        let telemetry = scheduler.telemetry();
        assert!(
            telemetry.rebalances >= 1,
            "skewed traffic must trigger a placement move: {telemetry:?}"
        );
        assert_ne!(
            scheduler.shard_of(hot),
            scheduler.shard_of(cold),
            "the cold co-tenant must move off the hot shard: {telemetry:?}"
        );
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn distinct_designs_on_separate_lanes_coalesce_into_one_multi_lane_drain() {
        use magnon_core::gate::LaneId;
        // The FDM acceptance shape: a majority gate on waveguide 0 lane
        // 0 (the paper's 10–80 GHz band) and an XOR on the SAME
        // waveguide, lane 1 (100 GHz band). Fingerprint fusion is off —
        // the designs differ anyway — so any coalescing across the two
        // gates can only come from multi-lane FDM stacking.
        let guide = Waveguide::paper_default().unwrap();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            max_batch: 64,
            linger: Duration::from_millis(2),
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig::off(),
        });
        let maj = builder
            .register("maj_lane0", byte_majority(), BackendChoice::Cached)
            .unwrap();
        let xor = builder
            .register(
                "xor_lane1",
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(2)
                    .function(LogicFunction::Xor)
                    .base_frequency(100e9)
                    .on_waveguide(WaveguideId(0))
                    .on_lane(LaneId(1))
                    .build()
                    .unwrap(),
                BackendChoice::Cached,
            )
            .unwrap();
        let scheduler = builder.build().unwrap();
        // Both lanes of waveguide 0 start co-resident on the one shard.
        assert_eq!(scheduler.shard_of(maj), scheduler.shard_of(xor));
        let maj_sets = sample_sets(16, 3);
        let xor_sets = sample_sets(16, 2);
        let mut requests = Vec::new();
        for (m, x) in maj_sets.iter().zip(&xor_sets) {
            requests.push((maj, m.clone()));
            requests.push((xor, x.clone()));
        }
        let outputs = scheduler.evaluate_many(&requests).unwrap();
        for ((id, set), output) in requests.iter().zip(&outputs) {
            let reference = scheduler.gate(*id).unwrap().evaluate(set.words()).unwrap();
            assert_eq!(output.word(), reference.word());
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.fused_batches, 0, "no fingerprint fusion here");
        assert!(
            stats.fdm_batches >= 1 && stats.fdm_lanes >= 2 && stats.fdm_requests > 0,
            "two lanes of one waveguide must stack into a multi-lane drain: {stats:?}"
        );
        let telemetry = scheduler.telemetry();
        assert!(
            telemetry.shards[0].fdm_passes >= 1 && telemetry.shards[0].fdm_lanes >= 2,
            "the shard must report its FDM passes: {telemetry:?}"
        );
        let lane0 = telemetry
            .lanes
            .iter()
            .find(|l| l.lane == LaneId(0))
            .expect("lane 0 slot");
        let lane1 = telemetry
            .lanes
            .iter()
            .find(|l| l.lane == LaneId(1))
            .expect("lane 1 slot");
        assert_eq!(lane0.id, lane1.id, "one waveguide, two lanes");
        assert_eq!(lane0.served, 16, "per-lane served counters: {telemetry:?}");
        assert_eq!(lane1.served, 16, "per-lane served counters: {telemetry:?}");
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn overlapping_bands_on_distinct_lanes_are_rejected_at_build() {
        use magnon_core::gate::LaneId;
        // Two gates claim distinct lanes of waveguide 0 but both sit on
        // the default 10–80 GHz band: a stacked "single excitation"
        // over colliding spectra is physically impossible, so the
        // builder must refuse instead of serving it silently.
        let mut builder = SchedulerBuilder::new(quick_config(1));
        builder
            .register("lane0", byte_majority(), BackendChoice::Cached)
            .unwrap();
        builder
            .register(
                "lane1_same_band",
                ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
                    .channels(8)
                    .inputs(3)
                    .on_lane(LaneId(1))
                    .build()
                    .unwrap(),
                BackendChoice::Cached,
            )
            .unwrap();
        match builder.build() {
            Err(ServeError::Config { reason }) => {
                assert!(reason.contains("overlap"), "got: {reason}")
            }
            other => panic!("colliding lane bands must be rejected, got {other:?}"),
        }
        // Same band on the SAME lane stays legal (pre-FDM cross-gate
        // serving), as does the same design on another waveguide.
        let mut builder = SchedulerBuilder::new(quick_config(1));
        builder
            .register("a", byte_majority(), BackendChoice::Cached)
            .unwrap();
        builder
            .register(
                "b",
                ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
                    .channels(8)
                    .inputs(2)
                    .function(LogicFunction::Xor)
                    .build()
                    .unwrap(),
                BackendChoice::Cached,
            )
            .unwrap();
        builder
            .register(
                "c",
                ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
                    .channels(8)
                    .inputs(3)
                    .on_waveguide(WaveguideId(1))
                    .on_lane(LaneId(1))
                    .build()
                    .unwrap(),
                BackendChoice::Cached,
            )
            .unwrap();
        builder.build().unwrap().shutdown().unwrap();
    }

    #[test]
    fn single_lane_traffic_never_reports_fdm_passes() {
        // Pre-FDM shape: two designs sharing waveguide 0 on the SAME
        // lane must keep the old per-gate batches (no stacked pass).
        let guide = Waveguide::paper_default().unwrap();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            linger: Duration::from_millis(2),
            ..quick_config(1)
        });
        let maj = builder
            .register("maj", byte_majority(), BackendChoice::Cached)
            .unwrap();
        let xor = builder
            .register(
                "xor",
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(2)
                    .function(LogicFunction::Xor)
                    .build()
                    .unwrap(),
                BackendChoice::Cached,
            )
            .unwrap();
        let scheduler = builder.build().unwrap();
        let mut requests = Vec::new();
        for (m, x) in sample_sets(8, 3).iter().zip(&sample_sets(8, 2)) {
            requests.push((maj, m.clone()));
            requests.push((xor, x.clone()));
        }
        scheduler.evaluate_many(&requests).unwrap();
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 16);
        assert_eq!(
            stats.fdm_batches, 0,
            "same-lane gates must not stack: {stats:?}"
        );
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn deep_drains_fuse_compatible_gates_across_waveguides() {
        let guide = Waveguide::paper_default().unwrap();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            max_batch: 64,
            linger: Duration::from_millis(2),
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig {
                fusion: true,
                fusion_threshold: 2,
                rebalance: false,
                ..AdaptiveConfig::default()
            },
        });
        let make = |wg: u64| {
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(3)
                .on_waveguide(WaveguideId(wg))
                .build()
                .unwrap()
        };
        let a = builder
            .register("maj_wg0", make(0), BackendChoice::Cached)
            .unwrap();
        let b = builder
            .register("maj_wg1", make(1), BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        let sets = sample_sets(32, 3);
        let requests: Vec<(GateId, OperandSet)> = sets
            .iter()
            .enumerate()
            .map(|(i, set)| (if i % 2 == 0 { a } else { b }, set.clone()))
            .collect();
        let outputs = scheduler.evaluate_many(&requests).unwrap();
        for ((id, set), output) in requests.iter().zip(&outputs) {
            let reference = scheduler.gate(*id).unwrap().evaluate(set.words()).unwrap();
            assert_eq!(output.word(), reference.word());
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.failed, 0);
        assert!(
            stats.fused_batches >= 1 && stats.fused_requests > 0,
            "interleaved same-design traffic on one shard must fuse: {stats:?}"
        );
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn incompatible_gates_never_fuse() {
        let guide = Waveguide::paper_default().unwrap();
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            max_batch: 64,
            linger: Duration::from_millis(2),
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig {
                fusion: true,
                fusion_threshold: 2,
                rebalance: false,
                ..AdaptiveConfig::default()
            },
        });
        let maj = builder
            .register("maj3", byte_majority(), BackendChoice::Cached)
            .unwrap();
        let xor = builder
            .register(
                "xor2",
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(2)
                    .function(LogicFunction::Xor)
                    .build()
                    .unwrap(),
                BackendChoice::Cached,
            )
            .unwrap();
        let scheduler = builder.build().unwrap();
        let maj_sets = sample_sets(16, 3);
        let xor_sets = sample_sets(16, 2);
        let mut requests = Vec::new();
        for (m, x) in maj_sets.iter().zip(&xor_sets) {
            requests.push((maj, m.clone()));
            requests.push((xor, x.clone()));
        }
        let outputs = scheduler.evaluate_many(&requests).unwrap();
        for ((id, set), output) in requests.iter().zip(&outputs) {
            let reference = scheduler.gate(*id).unwrap().evaluate(set.words()).unwrap();
            assert_eq!(output.word(), reference.word());
        }
        let stats = scheduler.stats();
        assert_eq!(
            stats.fused_batches, 0,
            "MAJ and XOR must not fuse: {stats:?}"
        );
        assert_eq!(stats.failed, 0);
        scheduler.shutdown().unwrap();
    }

    #[test]
    fn adaptive_linger_shrinks_under_sequential_load() {
        let gate = byte_majority();
        let base = Duration::from_micros(400);
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            workers: 1,
            max_batch: 64,
            linger: base,
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig {
                adaptive_linger: true,
                min_linger: Duration::from_micros(10),
                max_linger: Duration::from_millis(2),
                rebalance: false,
                fusion: false,
                ..AdaptiveConfig::default()
            },
        });
        let id = builder
            .register("maj3", gate, BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();
        // Strictly sequential submit→wait: every drain serves one
        // request, so the window must walk down toward min_linger.
        for set in sample_sets(8, 3) {
            scheduler.submit(id, set).unwrap().wait().unwrap();
        }
        let telemetry = scheduler.telemetry();
        let shard = &telemetry.shards[0];
        assert!(shard.drain_cycles >= 8);
        assert_eq!(shard.queued, 0);
        assert!(
            shard.linger < base && shard.linger >= Duration::from_micros(10),
            "light load must shrink the window below the {base:?} base: {telemetry:?}"
        );
        scheduler.shutdown().unwrap();
    }
}
