//! Integration and property tests for the sharded serving runtime:
//! scheduler output must equal sequential evaluation for randomized
//! interleaved multi-gate request streams, and the persisted LUT format
//! must round-trip (and reject corruption) through a full
//! shutdown→restart cycle.

use proptest::prelude::*;
use spinwave_parallel::core::backend::{BackendChoice, OperandSet};
use spinwave_parallel::core::lut_store::{load_lut, LutSnapshot};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::truth::LogicFunction;
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{
    AdaptiveConfig, ScheduledBank, SchedulerBuilder, ServeConfig, ServeError, Ticket,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn quick_config(workers: usize) -> ServeConfig {
    ServeConfig {
        keep_readouts: false,
        workers,
        max_batch: 64,
        linger: Duration::from_micros(50),
        queue_depth: 256,
        lut_dir: None,
        adaptive: AdaptiveConfig::default(),
    }
}

/// The three gate designs the interleaved streams mix: byte-wide MAJ-3
/// and XOR-2 sharing waveguide 0, and a 5-input majority alone on
/// waveguide 1.
fn stream_gates() -> Vec<ParallelGate> {
    let guide = Waveguide::paper_default().unwrap();
    vec![
        ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(3)
            .on_waveguide(WaveguideId(0))
            .build()
            .unwrap(),
        ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(2)
            .function(LogicFunction::Xor)
            .on_waveguide(WaveguideId(0))
            .build()
            .unwrap(),
        ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(5)
            .on_waveguide(WaveguideId(1))
            .build()
            .unwrap(),
    ]
}

/// Derives one request from a stream seed: which gate, and its operand
/// words.
fn request_from_seed(gates: &[ParallelGate], seed: u64) -> (usize, OperandSet) {
    let which = (seed % gates.len() as u64) as usize;
    let gate = &gates[which];
    let words: Vec<Word> = (0..gate.input_count() as u64)
        .map(|j| {
            Word::from_u8(
                (seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(j as u32 * 9)
                    >> 16) as u8,
            )
        })
        .collect();
    (which, OperandSet::new(words))
}

/// A directory unique to this test invocation under the system temp
/// dir.
fn scratch_dir(label: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "magnon_serve_test_{}_{label}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scheduler-served answers equal sequential `ParallelGate::evaluate`
    /// for randomized interleaved multi-gate streams, with every tag
    /// preserved and completions redeemable in any order.
    #[test]
    fn scheduler_matches_sequential_for_interleaved_streams(
        seeds in proptest::collection::vec(0u64..u64::MAX, 4..48),
        workers in 1usize..5,
    ) {
        let gates = stream_gates();
        let mut builder = SchedulerBuilder::new(quick_config(workers));
        let ids = [
            builder.register("maj3", gates[0].clone(), BackendChoice::Cached).unwrap(),
            builder.register("xor2", gates[1].clone(), BackendChoice::Analytic).unwrap(),
            builder.register("maj5", gates[2].clone(), BackendChoice::Cached).unwrap(),
        ];
        let scheduler = builder.build().unwrap();

        let requests: Vec<(usize, OperandSet)> = seeds
            .iter()
            .map(|&s| request_from_seed(&gates, s))
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|(which, set)| scheduler.submit(ids[*which], set.clone()).unwrap())
            .collect();

        // Tags are unique across the stream.
        let mut tags: Vec<u64> = tickets.iter().map(Ticket::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), tickets.len());

        // Redeem out of submission order (reversed): each completion
        // must still match ITS request's sequential evaluation.
        for (ticket, (which, set)) in
            tickets.into_iter().rev().zip(requests.iter().rev())
        {
            let served = ticket.wait().unwrap();
            let reference = gates[*which].evaluate(set.words()).unwrap();
            prop_assert_eq!(served.word(), reference.word());
        }

        let stats = scheduler.stats();
        prop_assert_eq!(stats.completed, seeds.len() as u64);
        prop_assert_eq!(stats.failed, 0);
        scheduler.shutdown().unwrap();
    }

    /// With every adaptive policy enabled and aggressive thresholds
    /// (rebalancing every 8 submissions, fusion from 4 pending jobs,
    /// linger walking between 10 µs and 1 ms), a hot-waveguide skewed
    /// stream — ~80 % of requests hammering waveguide 0, the rest
    /// spread over three co-registered waveguides of the same gate
    /// design plus an XOR sharing the hot waveguide — must stay
    /// output-equivalent to sequential `ParallelGate::evaluate`,
    /// whatever placement moves and fused batches happen underneath.
    #[test]
    fn adaptive_scheduler_matches_sequential_under_hot_waveguide_skew(
        seeds in proptest::collection::vec(0u64..u64::MAX, 16..96),
        workers in 1usize..5,
    ) {
        let guide = Waveguide::paper_default().unwrap();
        let mut gates: Vec<ParallelGate> = (0..4u64)
            .map(|wg| {
                ParallelGateBuilder::new(guide)
                    .channels(8)
                    .inputs(3)
                    .on_waveguide(WaveguideId(wg))
                    .build()
                    .unwrap()
            })
            .collect();
        gates.push(
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(2)
                .function(LogicFunction::Xor)
                .on_waveguide(WaveguideId(0))
                .build()
                .unwrap(),
        );
        let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
            workers,
            max_batch: 32,
            linger: Duration::from_micros(50),
            queue_depth: 512,
            lut_dir: None,
            adaptive: AdaptiveConfig {
                adaptive_linger: true,
                min_linger: Duration::from_micros(10),
                max_linger: Duration::from_millis(1),
                rebalance: true,
                rebalance_interval: 8,
                rebalance_ratio: 1.5,
                fusion: true,
                fusion_threshold: 4,
            },
        });
        let ids: Vec<_> = gates
            .iter()
            .enumerate()
            .map(|(k, gate)| {
                builder
                    .register(format!("gate{k}"), gate.clone(), BackendChoice::Cached)
                    .unwrap()
            })
            .collect();
        let scheduler = builder.build().unwrap();

        // Skew: seeds ending 0..=7 hit the hot waveguide-0 gates
        // (majority or XOR), 8..=9 land on waveguides 1..=2; the
        // waveguide-3 gate stays registered but idle, so placement
        // reviews also see a zero-traffic resident.
        let requests: Vec<(usize, OperandSet)> = seeds
            .iter()
            .map(|&seed| {
                let which = match seed % 10 {
                    0..=6 => 0,            // hot maj3 on waveguide 0
                    7 => 4,                // hot xor2 on waveguide 0
                    d => (d - 7) as usize, // cold maj3 on waveguides 1..=2
                };
                let gate = &gates[which];
                let words: Vec<Word> = (0..gate.input_count() as u64)
                    .map(|j| {
                        Word::from_u8(
                            (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(j as u32 * 9)
                                >> 16) as u8,
                        )
                    })
                    .collect();
                (which, OperandSet::new(words))
            })
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|(which, set)| scheduler.submit(ids[*which], set.clone()).unwrap())
            .collect();
        // Redeem out of submission order: adaptivity must not break
        // tag routing.
        for (ticket, (which, set)) in tickets.into_iter().rev().zip(requests.iter().rev()) {
            let served = ticket.wait().unwrap();
            let reference = gates[*which].evaluate(set.words()).unwrap();
            prop_assert_eq!(served.word(), reference.word());
        }

        let stats = scheduler.stats();
        prop_assert_eq!(stats.completed, seeds.len() as u64);
        prop_assert_eq!(stats.failed, 0);
        let telemetry = scheduler.telemetry();
        prop_assert_eq!(telemetry.shards.len(), workers);
        // The placement table never points outside the shard range,
        // however many moves happened.
        for lane in &telemetry.lanes {
            prop_assert!(lane.shard < workers);
        }
        let queued: u64 = telemetry.shards.iter().map(|s| s.queued).sum();
        prop_assert_eq!(queued, 0, "all queues drained after completion");
        scheduler.shutdown().unwrap();
    }

    /// FDM scheduling is output-equivalent to sequential per-lane
    /// evaluation: randomized interleaved streams across three
    /// frequency lanes of ONE waveguide (distinct designs on disjoint
    /// bands) plus a second waveguide must decode exactly as each
    /// gate's own `ParallelGate::evaluate`, however the drains stacked
    /// the lanes into multi-lane passes underneath.
    #[test]
    fn fdm_scheduler_matches_sequential_per_lane_evaluation(
        seeds in proptest::collection::vec(0u64..u64::MAX, 8..64),
        workers in 1usize..4,
    ) {
        let guide = Waveguide::paper_default().unwrap();
        // Three lanes of waveguide 0 on the disjoint bands probed by
        // the core lane tests, plus a lane-0 gate alone on waveguide 1.
        let gates: Vec<ParallelGate> = vec![
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(3)
                .on_waveguide(WaveguideId(0))
                .on_lane(LaneId(0))
                .build()
                .unwrap(),
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(2)
                .function(LogicFunction::Xor)
                .base_frequency(100e9)
                .on_waveguide(WaveguideId(0))
                .on_lane(LaneId(1))
                .build()
                .unwrap(),
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(5)
                .base_frequency(190e9)
                .on_waveguide(WaveguideId(0))
                .on_lane(LaneId(2))
                .build()
                .unwrap(),
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(3)
                .on_waveguide(WaveguideId(1))
                .build()
                .unwrap(),
        ];
        // Every lane pair on waveguide 0 stays disjoint — the property
        // stream is a physically valid FDM assignment.
        for i in 0..3 {
            for j in i + 1..3 {
                prop_assert!(!gates[i]
                    .frequency_lane()
                    .overlaps(gates[j].frequency_lane()));
            }
        }
        let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
            linger: Duration::from_micros(200),
            ..quick_config(workers)
        });
        let ids: Vec<_> = gates
            .iter()
            .enumerate()
            .map(|(k, gate)| {
                // Mixed backends: cached and analytic lanes may share a
                // stacked pass.
                let choice = if k % 2 == 0 {
                    BackendChoice::Cached
                } else {
                    BackendChoice::Analytic
                };
                builder
                    .register(format!("lane_gate{k}"), gate.clone(), choice)
                    .unwrap()
            })
            .collect();
        let scheduler = builder.build().unwrap();

        let requests: Vec<(usize, OperandSet)> = seeds
            .iter()
            .map(|&s| request_from_seed(&gates, s))
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|(which, set)| scheduler.submit(ids[*which], set.clone()).unwrap())
            .collect();
        // Redeem out of submission order: FDM stacking must not break
        // tag routing.
        for (ticket, (which, set)) in tickets.into_iter().rev().zip(requests.iter().rev()) {
            let served = ticket.wait().unwrap();
            let reference = gates[*which].evaluate(set.words()).unwrap();
            prop_assert_eq!(served.word(), reference.word());
        }

        let stats = scheduler.stats();
        prop_assert_eq!(stats.completed, seeds.len() as u64);
        prop_assert_eq!(stats.failed, 0);
        // FDM bookkeeping stays consistent whatever actually stacked:
        // every stacked pass carries ≥ 2 lanes and its requests are a
        // subset of the total.
        prop_assert!(stats.fdm_requests <= stats.completed);
        prop_assert!(stats.fdm_lanes >= 2 * stats.fdm_batches);
        let telemetry = scheduler.telemetry();
        let served: u64 = telemetry.lanes.iter().map(|l| l.served).sum();
        prop_assert_eq!(served, seeds.len() as u64, "per-lane served counters must cover the stream");
        let fdm_passes: u64 = telemetry.shards.iter().map(|s| s.fdm_passes).sum();
        prop_assert_eq!(fdm_passes, stats.fdm_batches);
        scheduler.shutdown().unwrap();
    }

    /// `evaluate_many` preserves request order regardless of how shards
    /// batched the work.
    #[test]
    fn evaluate_many_is_order_preserving(
        seeds in proptest::collection::vec(0u64..u64::MAX, 2..32),
    ) {
        let gates = stream_gates();
        let mut builder = SchedulerBuilder::new(quick_config(2));
        let ids = [
            builder.register("maj3", gates[0].clone(), BackendChoice::Cached).unwrap(),
            builder.register("xor2", gates[1].clone(), BackendChoice::Cached).unwrap(),
            builder.register("maj5", gates[2].clone(), BackendChoice::Cached).unwrap(),
        ];
        let scheduler = builder.build().unwrap();
        let requests: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let (which, set) = request_from_seed(&gates, s);
                (ids[which], set)
            })
            .collect();
        let outputs = scheduler.evaluate_many(&requests).unwrap();
        prop_assert_eq!(outputs.len(), seeds.len());
        for (output, &seed) in outputs.iter().zip(&seeds) {
            let (which, set) = request_from_seed(&gates, seed);
            prop_assert_eq!(
                output.word(),
                gates[which].evaluate(set.words()).unwrap().word()
            );
        }
        scheduler.shutdown().unwrap();
    }

    /// Circuits routed through the scheduler agree with their boolean
    /// reference, whatever the operands.
    #[test]
    fn scheduled_adder_matches_reference(
        a in proptest::collection::vec(0u64..256, 8),
        b in proptest::collection::vec(0u64..256, 8),
    ) {
        use spinwave_parallel::circuits::adder::RippleCarryAdder;
        let mut builder = SchedulerBuilder::new(quick_config(2));
        let (maj3, xor2) = builder
            .register_circuit_gates(
                Waveguide::paper_default().unwrap(),
                WaveguideId(0),
                8,
                BackendChoice::Cached,
            )
            .unwrap();
        let scheduler = builder.build().unwrap();
        let adder = RippleCarryAdder::new(8, 8).unwrap();
        let mut bank = ScheduledBank::new(&scheduler, maj3, xor2).unwrap();
        let served = adder.add_many_on(&mut bank, &a, &b).unwrap();
        prop_assert_eq!(served, adder.add_many(&a, &b).unwrap());
        scheduler.shutdown().unwrap();
    }
}

#[test]
fn shutdown_then_restart_roundtrips_the_lut() {
    let dir = scratch_dir("roundtrip");
    let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(8)
        .inputs(3)
        .build()
        .unwrap();
    let sets: Vec<OperandSet> = (0..24u64)
        .map(|i| request_from_seed(std::slice::from_ref(&gate), i * 3).1)
        .collect();

    // Cold run: serve, then persist at shutdown.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        lut_dir: Some(dir.clone()),
        ..quick_config(2)
    });
    let id = builder
        .register("maj3", gate.clone(), BackendChoice::Cached)
        .unwrap();
    let scheduler = builder.build().unwrap();
    assert_eq!(scheduler.lut_entries_loaded(), 0, "cold start");
    let requests: Vec<_> = sets.iter().map(|s| (id, s.clone())).collect();
    let cold_outputs = scheduler.evaluate_many(&requests).unwrap();
    let report = scheduler.shutdown().unwrap();
    assert_eq!(report.lut_files.len(), 1);
    assert!(report.lut_entries_saved > 0);

    // The file on disk is a valid snapshot for this gate.
    let snapshot = load_lut(&report.lut_files[0]).unwrap();
    assert!(snapshot.matches_gate(&gate).is_ok());
    assert_eq!(snapshot.entry_count(), report.lut_entries_saved);

    // Warm restart: entries load, outputs are identical.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        lut_dir: Some(dir.clone()),
        ..quick_config(2)
    });
    let id = builder
        .register("maj3", gate.clone(), BackendChoice::Cached)
        .unwrap();
    let scheduler = builder.build().unwrap();
    assert_eq!(
        scheduler.lut_entries_loaded(),
        report.lut_entries_saved,
        "warm restart adopts every persisted entry"
    );
    let requests: Vec<_> = sets.iter().map(|s| (id, s.clone())).collect();
    let warm_outputs = scheduler.evaluate_many(&requests).unwrap();
    for (cold, warm) in cold_outputs.iter().zip(&warm_outputs) {
        assert_eq!(cold.word(), warm.word());
    }
    scheduler.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_or_mismatched_lut_files_are_rejected_at_build() {
    let dir = scratch_dir("corrupt");
    let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(8)
        .inputs(3)
        .build()
        .unwrap();

    // Produce a valid file first.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        lut_dir: Some(dir.clone()),
        ..quick_config(1)
    });
    let id = builder
        .register("maj3", gate.clone(), BackendChoice::Cached)
        .unwrap();
    let scheduler = builder.build().unwrap();
    scheduler
        .submit(
            id,
            OperandSet::new(vec![
                Word::from_u8(0x0F),
                Word::from_u8(0x33),
                Word::from_u8(0x55),
            ]),
        )
        .unwrap()
        .wait()
        .unwrap();
    let report = scheduler.shutdown().unwrap();
    let path = report.lut_files[0].clone();
    let good = std::fs::read(&path).unwrap();

    let rebuild = |dir: std::path::PathBuf, gate: ParallelGate| {
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts: false,
            lut_dir: Some(dir),
            ..quick_config(1)
        });
        builder
            .register("maj3", gate, BackendChoice::Cached)
            .unwrap();
        builder.build()
    };

    // Corrupted payload byte → checksum failure at build.
    let mut corrupt = good.clone();
    corrupt[18] ^= 0xA5;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        rebuild(dir.clone(), gate.clone()),
        Err(ServeError::Gate(GateError::Persistence { .. }))
    ));

    // Wrong version → rejected with a version message.
    let mut wrong_version = good.clone();
    wrong_version[4] = 0xFE;
    std::fs::write(&path, &wrong_version).unwrap();
    match rebuild(dir.clone(), gate.clone()) {
        Err(ServeError::Gate(GateError::Persistence { reason })) => {
            assert!(reason.contains("version"), "got: {reason}")
        }
        other => panic!("expected a version rejection, got {other:?}"),
    }

    // Truncated file → rejected.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    assert!(rebuild(dir.clone(), gate.clone()).is_err());

    // A valid file for a DIFFERENT gate design → fingerprint rejection.
    std::fs::write(&path, &good).unwrap();
    let narrower = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(4)
        .inputs(3)
        .build()
        .unwrap();
    assert!(matches!(
        rebuild(dir.clone(), narrower),
        Err(ServeError::Gate(GateError::Persistence { .. }))
    ));

    // The original pairing still builds after restoring the file.
    let scheduler = rebuild(dir.clone(), gate).unwrap();
    assert!(scheduler.lut_entries_loaded() > 0);
    scheduler.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_decode_matches_module_docs() {
    // The file is self-describing: decode without knowing the gate.
    let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(4)
        .inputs(2)
        .function(LogicFunction::Xor)
        .build()
        .unwrap();
    let mut session = gate.session(BackendChoice::Cached).unwrap();
    session
        .evaluate(&[
            Word::from_bits(0b0011, 4).unwrap(),
            Word::from_bits(0b0101, 4).unwrap(),
        ])
        .unwrap();
    let snapshot = session.lut_snapshot().unwrap();
    let decoded = LutSnapshot::decode(&snapshot.encode()).unwrap();
    assert_eq!(decoded.function(), LogicFunction::Xor);
    assert_eq!(decoded.input_count(), 2);
    assert_eq!(decoded.word_width(), 4);
    assert_eq!(decoded.entry_count(), snapshot.entry_count());
}
