//! The TCP serving front-end over [`magnon_serve::Scheduler`].
//!
//! # Architecture
//!
//! ```text
//!            accept loop (one thread, non-blocking + stop flag)
//!                 │ spawns per connection
//!      ┌──────────┴─────────────┐
//!      ▼                        ▼
//!  reader thread            writer pump (one per connection)
//!  read_frame →             owns the outbound half: answers arrive
//!  Scheduler::try_submit →  out of order by tag as tickets complete
//!  ticket to writer pump    (Ticket::try_wait poll + per-ticket
//!                           deadline — never parks forever on a
//!                           lost completion)
//! ```
//!
//! Backpressure: the reader uses [`Scheduler::try_submit`], so a full
//! shard queue becomes a [`Frame::RetryAfter`] on the wire instead of a
//! blocked reader — the client re-submits after the hint and the TCP
//! connection keeps draining completions the whole time.
//!
//! Failure isolation: a malformed frame, a bad hello or a version
//! mismatch draws one diagnostic [`Frame::Error`] and closes *that*
//! connection; the listener and every other connection keep serving.

use crate::error::{NetError, WireErrorCode};
use crate::protocol::{write_frame, Frame, FrameReader, GateInfo, NET_VERSION};
use magnon_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use magnon_core::sync::mpsc::{self, RecvTimeoutError};
use magnon_core::sync::thread::{self, JoinHandle};
use magnon_core::sync::time::{Duration, Instant};
use magnon_core::sync::{Arc, Mutex};
use magnon_serve::{Scheduler, ServeError, Ticket};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// How long the writer pump waits for a submitted request's
    /// completion before answering a timeout error — the bound that
    /// keeps a lost completion from wedging the connection.
    pub completion_timeout: Duration,
    /// Backoff hint carried on retry-after frames.
    pub retry_hint: Duration,
    /// Writer-pump poll cadence while completions are pending.
    pub poll_interval: Duration,
    /// Socket read timeout on connection readers, so they notice the
    /// stop flag while idle.
    pub read_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            completion_timeout: Duration::from_secs(5),
            retry_hint: Duration::from_micros(200),
            poll_interval: Duration::from_micros(100),
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// Lock-free counters shared by all connection threads.
#[derive(Debug, Default)]
struct SharedNetStats {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    submits: AtomicU64,
    responses: AtomicU64,
    retry_afters: AtomicU64,
    request_errors: AtomicU64,
    timeouts: AtomicU64,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetServerStats {
    /// Connections that completed the hello handshake.
    pub connections_accepted: u64,
    /// Connections dropped for a bad hello, version mismatch or a
    /// framing violation mid-stream.
    pub connections_rejected: u64,
    /// Submit frames decoded.
    pub submits: u64,
    /// Response frames written.
    pub responses: u64,
    /// Retry-after frames written (scheduler backpressure reaching the
    /// wire).
    pub retry_afters: u64,
    /// Error frames written for per-request failures.
    pub request_errors: u64,
    /// Completions that missed the writer pump's deadline.
    pub timeouts: u64,
}

impl SharedNetStats {
    fn snapshot(&self) -> NetServerStats {
        NetServerStats {
            // ordering: Relaxed throughout — point-in-time stats
            // snapshot; each counter is read independently, nothing
            // synchronizes through them.
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            submits: self.submits.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            retry_afters: self.retry_afters.load(Ordering::Relaxed),
            request_errors: self.request_errors.load(Ordering::Relaxed),
            // ordering: Relaxed — same snapshot contract as above.
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// Bound of the per-connection reader → writer-pump queue. When a
/// client stops reading its responses the pump stalls, this fills, and
/// the reader blocks instead of buffering unboundedly.
const OUTBOUND_QUEUE_DEPTH: usize = 1024;

/// A submitted request awaiting its completion in the writer pump.
struct PendingReply {
    tag: u64,
    ticket: Ticket,
    deadline: Instant,
}

/// What the reader hands the writer pump.
enum Outbound {
    /// Write this frame now (retry-after, immediate errors).
    Ready(Frame),
    /// A submitted request: deliver its completion when it lands.
    Pending(PendingReply),
}

/// The running TCP front-end. Bind with [`NetServer::bind`], stop with
/// [`NetServer::shutdown`] (dropping also stops it, less gracefully).
///
/// The server shares the scheduler through an [`Arc`]: shut the server
/// down first, then recover the scheduler (e.g. via
/// [`Arc::try_unwrap`]) for its LUT-persisting shutdown.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<SharedNetStats>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts the accept loop over
    /// `scheduler`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when binding or configuring the listener fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        scheduler: Arc<Scheduler>,
        config: NetServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::io("bind listener", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("read bound address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("configure listener", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(SharedNetStats::default());
        // The gate directory is immutable after the scheduler builds:
        // encode the hello-ack once and every handshake just writes the
        // bytes.
        let gates: Vec<GateInfo> = (0..scheduler.gate_count())
            .map(|index| {
                let id = scheduler.gate_id(index).expect("index < gate_count");
                let gate = scheduler.gate(id).expect("registered gate");
                GateInfo {
                    name: scheduler.gate_name(id).unwrap_or("?").to_string(),
                    input_count: gate.input_count() as u8,
                    word_width: gate.word_width() as u8,
                    waveguide: gate.waveguide_id().0,
                    lane: gate.lane_id().0,
                }
            })
            .collect();
        let hello_ack: Arc<Vec<u8>> = Arc::new(
            Frame::HelloAck {
                version: NET_VERSION,
                gates,
            }
            .encode(),
        );
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let stats = Arc::clone(&stats);
            thread::Builder::new()
                .name("magnon-net-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        scheduler,
                        config,
                        hello_ack,
                        stop,
                        connections,
                        stats,
                    )
                })
                .map_err(|e| NetError::io("spawn accept thread", std::io::Error::other(e)))?
        };
        Ok(NetServer {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            connections,
            stats,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, waits for every connection to finish its
    /// in-flight work, and returns the final counters.
    pub fn shutdown(mut self) -> NetServerStats {
        self.stop_and_join();
        self.stats.snapshot()
    }

    fn stop_and_join(&mut self) {
        // ordering: Release pairs with the Acquire loads in the accept
        // and reader loops; whatever the closer wrote before stopping
        // is visible to a thread that observes the flag.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    config: NetServerConfig,
    hello_ack: Arc<Vec<u8>>,
    stop: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<SharedNetStats>,
) {
    let mut next_conn = 0u64;
    // ordering: Acquire pairs with the Release store in stop_and_join.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let scheduler = Arc::clone(&scheduler);
                let config = config.clone();
                let hello_ack = Arc::clone(&hello_ack);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let conn_id = next_conn;
                next_conn += 1;
                let handle = thread::Builder::new()
                    .name(format!("magnon-net-conn-{conn_id}"))
                    .spawn(move || {
                        serve_connection(stream, scheduler, config, hello_ack, stop, stats)
                    });
                // Reap finished connections as churn comes in, so a
                // long-running server does not accumulate one dead
                // JoinHandle per client it ever served. The handles are
                // collected under the registry lock but joined after it
                // is released: join() can block on a connection that is
                // mid-teardown, and holding `conn_registry` there would
                // stall shutdown's take() behind an arbitrary client.
                let finished = {
                    let mut registry = connections.lock().unwrap_or_else(|e| e.into_inner());
                    let finished = reap_finished(&mut registry);
                    // A spawn failure (out of threads) simply sheds the
                    // connection: the stream moved into the closure
                    // either way and drops with the failed builder.
                    if let Ok(handle) = handle {
                        registry.push(handle);
                    }
                    finished
                };
                for handle in finished {
                    let _ = handle.join();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Removes every finished connection handle from the registry and
/// returns them for the caller to join. Joining must happen *after*
/// the registry guard is dropped — `join()` blocks on the connection
/// thread's teardown, and holding the registry lock there would stall
/// every new accept and the shutdown path behind one slow client. The
/// lock-order pass (`cargo run -p magnon-analyze`) enforces that split;
/// `magnon-check`'s `net_reap_outside_lock` scenario exercises it.
pub fn reap_finished(registry: &mut Vec<JoinHandle<()>>) -> Vec<JoinHandle<()>> {
    let mut finished = Vec::new();
    let mut i = 0;
    while i < registry.len() {
        if registry[i].is_finished() {
            finished.push(registry.swap_remove(i));
        } else {
            i += 1;
        }
    }
    finished
}

/// `true` for the error kinds a socket read timeout produces.
fn is_timeout(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Io { source, .. } if matches!(
            source.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

/// `true` when the peer closed the socket cleanly (EOF at a frame
/// boundary).
fn is_eof(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Io { source, .. } if source.kind() == std::io::ErrorKind::UnexpectedEof
    )
}

fn serve_connection(
    mut stream: TcpStream,
    scheduler: Arc<Scheduler>,
    config: NetServerConfig,
    hello_ack: Arc<Vec<u8>>,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedNetStats>,
) {
    let _ = stream.set_nodelay(true);
    // The read timeout doubles as the stop-flag poll cadence. A timeout
    // that fires mid-frame is harmless: the FrameReader buffers
    // partial frames, so the next call resumes where the bytes
    // stopped. The write timeout bounds how long a stuck client (one
    // that stops reading its responses) can park the writer pump.
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.completion_timeout));
    let mut frames = FrameReader::new();

    // Handshake: first frame must be a version-matched hello.
    let hello = loop {
        // ordering: Acquire pairs with the Release in stop_and_join.
        if stop.load(Ordering::Acquire) {
            return;
        }
        match frames.read_frame(&mut stream) {
            Ok(frame) => break frame,
            Err(ref e) if is_timeout(e) => {}
            Err(ref e) if is_eof(e) => return, // probe connect, no bytes
            Err(e) => {
                // ordering: Relaxed — monotonic stat counter.
                stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                reject(&mut stream, format!("handshake failed: {e}"));
                return;
            }
        }
    };
    match hello {
        Frame::Hello { version } if version == NET_VERSION => {}
        Frame::Hello { version } => {
            // ordering: Relaxed — monotonic stat counter.
            stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
            reject(
                &mut stream,
                format!("unsupported protocol version {version} (server speaks {NET_VERSION})"),
            );
            return;
        }
        other => {
            // ordering: Relaxed — monotonic stat counter.
            stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
            reject(
                &mut stream,
                format!("expected a hello frame, got {other:?}"),
            );
            return;
        }
    }
    // The directory was encoded once at bind time.
    if stream.write_all(&hello_ack).is_err() {
        return;
    }
    // ordering: Relaxed — monotonic stat counter.
    stats.connections_accepted.fetch_add(1, Ordering::Relaxed);

    // Split the connection: this thread keeps reading, a writer pump
    // owns the outbound half and delivers completions by tag.
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Bounded: a client that submits without ever reading its
    // responses blocks the reader here (natural TCP backpressure —
    // we stop reading from it) instead of growing server memory
    // without limit. The pump's socket write timeout bounds the worst
    // case before the channel disconnects and unblocks the reader.
    let (out_tx, out_rx) = mpsc::sync_channel::<Outbound>(OUTBOUND_QUEUE_DEPTH);
    let pump = {
        let stats = Arc::clone(&stats);
        let config = config.clone();
        thread::Builder::new()
            .name("magnon-net-writer".into())
            .spawn(move || writer_pump(write_half, out_rx, config, stats))
    };

    // Reader loop: decode submits, route backpressure to the wire.
    // The stop flag is checked once per frame as well as on idle
    // timeouts, so shutdown is not held hostage by a client that keeps
    // frames flowing.
    loop {
        // ordering: Acquire pairs with the Release in stop_and_join.
        if stop.load(Ordering::Acquire) {
            break;
        }
        let frame = match frames.read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(ref e) if is_timeout(e) => continue,
            // A clean close at a frame boundary; an EOF mid-frame is a
            // Protocol error (truncated frame) and takes the arm below.
            Err(ref e) if is_eof(e) => break,
            Err(e) => {
                // Framing is lost: one diagnostic, then close. The
                // listener and other connections are unaffected.
                // ordering: Relaxed — monotonic stat counter.
                stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Outbound::Ready(Frame::Error {
                    tag: 0,
                    code: WireErrorCode::Protocol,
                    message: e.to_string(),
                }));
                break;
            }
        };
        let Frame::Submit {
            tag,
            gate,
            lane,
            operands,
        } = frame
        else {
            // ordering: Relaxed — monotonic stat counter.
            stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = out_tx.send(Outbound::Ready(Frame::Error {
                tag: 0,
                code: WireErrorCode::Protocol,
                message: "only submit frames are valid after the handshake".into(),
            }));
            break;
        };
        // ordering: Relaxed — monotonic stat counters (here and the
        // error bump below); the scheduler channel is the handoff.
        stats.submits.fetch_add(1, Ordering::Relaxed);
        let Some(id) = scheduler.gate_id(gate as usize) else {
            stats.request_errors.fetch_add(1, Ordering::Relaxed);
            let _ = out_tx.send(Outbound::Ready(Frame::Error {
                tag,
                code: WireErrorCode::UnknownGate,
                message: format!("gate index {gate} is not in the directory"),
            }));
            continue;
        };
        // A lane-pinned submit (v2) only serves when the directory slot
        // still occupies that frequency lane.
        if let Some(expected) = lane {
            let actual = scheduler.gate(id).map(|g| g.lane_id().0);
            if actual != Some(expected) {
                // ordering: Relaxed — monotonic stat counter.
                stats.request_errors.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Outbound::Ready(Frame::Error {
                    tag,
                    code: WireErrorCode::LaneMismatch,
                    message: format!(
                        "gate {gate} rides lane {}, not the pinned lane {expected}",
                        actual.unwrap_or_default()
                    ),
                }));
                continue;
            }
        }
        match scheduler.try_submit(id, magnon_core::backend::OperandSet::new(operands)) {
            Ok(ticket) => {
                let pending = Outbound::Pending(PendingReply {
                    tag,
                    ticket,
                    deadline: Instant::now() + config.completion_timeout,
                });
                if out_tx.send(pending).is_err() {
                    break; // writer died (client hung up)
                }
            }
            Err(ServeError::QueueFull { shard }) => {
                // ordering: Relaxed — monotonic stat counter.
                stats.retry_afters.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Outbound::Ready(Frame::RetryAfter {
                    tag,
                    shard: shard as u32,
                    hint: config.retry_hint,
                }));
            }
            Err(ServeError::Shutdown) => {
                // ordering: Relaxed — monotonic stat counter.
                stats.request_errors.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Outbound::Ready(Frame::Error {
                    tag,
                    code: WireErrorCode::Shutdown,
                    message: "the serving runtime has shut down".into(),
                }));
                break;
            }
            Err(e) => {
                // ordering: Relaxed — monotonic stat counter.
                stats.request_errors.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Outbound::Ready(Frame::Error {
                    tag,
                    code: WireErrorCode::Gate,
                    message: e.to_string(),
                }));
            }
        }
    }
    // Closing the channel lets the pump drain its pendings and exit.
    drop(out_tx);
    if let Ok(handle) = pump {
        let _ = handle.join();
    }
}

/// Best-effort diagnostic before closing a rejected connection.
fn reject(stream: &mut TcpStream, message: String) {
    let _ = write_frame(
        stream,
        &Frame::Error {
            tag: 0,
            code: WireErrorCode::Protocol,
            message,
        },
    );
    let _ = stream.flush();
}

/// The per-connection writer pump: delivers completions out of order
/// by tag as their tickets resolve, bounded by per-ticket deadlines so
/// a lost completion can never park the pump forever.
fn writer_pump(
    stream: TcpStream,
    rx: mpsc::Receiver<Outbound>,
    config: NetServerConfig,
    stats: Arc<SharedNetStats>,
) {
    // Buffer the outbound half: a sweep answering N tickets becomes
    // one syscall (and, with nodelay set, one segment) at the
    // per-iteration flush instead of N.
    let mut stream = std::io::BufWriter::new(stream);
    let mut pending: Vec<PendingReply> = Vec::new();
    let mut reader_gone = false;
    'pump: loop {
        if reader_gone {
            // No more inbound work can arrive: just pace the sweep.
            // (recv_timeout on a disconnected channel returns
            // immediately — polling it here would busy-spin and starve
            // the workers producing the very completions we wait for.)
            thread::sleep(config.poll_interval);
        } else {
            // Pull new work. With nothing pending we can block until
            // the reader sends more; otherwise poll so completions
            // keep moving.
            let first = if pending.is_empty() {
                rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
            } else {
                rx.recv_timeout(config.poll_interval)
            };
            match first {
                Ok(msg) => {
                    let mut queue = vec![msg];
                    while let Ok(more) = rx.try_recv() {
                        queue.push(more);
                    }
                    for msg in queue {
                        match msg {
                            Outbound::Ready(frame) => {
                                if write_frame(&mut stream, &frame).is_err() {
                                    break 'pump;
                                }
                            }
                            Outbound::Pending(reply) => pending.push(reply),
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    if pending.is_empty() {
                        break;
                    }
                    reader_gone = true;
                }
            }
        }
        // Sweep: answer every resolved ticket, time out the expired.
        let now = Instant::now();
        let mut write_failed = false;
        pending.retain(|entry| {
            if write_failed {
                return false;
            }
            let frame = match entry.ticket.try_wait() {
                Ok(None) => {
                    if now < entry.deadline {
                        return true; // still in flight
                    }
                    // ordering: Relaxed — monotonic stat counters
                    // (these and the arms below); the ticket channel
                    // already delivered the result.
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    Frame::Error {
                        tag: entry.tag,
                        code: WireErrorCode::Timeout,
                        message: format!("no completion within {:?}", config.completion_timeout),
                    }
                }
                Ok(Some(output)) => {
                    // ordering: Relaxed — monotonic stat counter.
                    stats.responses.fetch_add(1, Ordering::Relaxed);
                    Frame::Response {
                        tag: entry.tag,
                        word: output.word(),
                    }
                }
                Err(ServeError::Gate(e)) => {
                    // ordering: Relaxed — monotonic stat counter.
                    stats.request_errors.fetch_add(1, Ordering::Relaxed);
                    Frame::Error {
                        tag: entry.tag,
                        code: WireErrorCode::Gate,
                        message: e.to_string(),
                    }
                }
                Err(_) => {
                    // ordering: Relaxed — monotonic stat counter.
                    stats.request_errors.fetch_add(1, Ordering::Relaxed);
                    Frame::Error {
                        tag: entry.tag,
                        code: WireErrorCode::Shutdown,
                        message: "the worker owning this request went away".into(),
                    }
                }
            };
            write_failed = write_frame(&mut stream, &frame).is_err();
            false
        });
        if write_failed {
            break;
        }
        let _ = stream.flush();
        if reader_gone && pending.is_empty() {
            break;
        }
    }
    let _ = stream.flush();
}
