//! BATCH bench: single-shot vs batched vs cached evaluation throughput
//! at widths 8/16/32 — the perf baseline for the backend/session API.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_bench::random_operand_sets;
use magnon_core::backend::BackendChoice;
use magnon_core::gate::{ParallelGate, ParallelGateBuilder};
use magnon_math::constants::GHZ;
use magnon_physics::waveguide::Waveguide;
use std::hint::black_box;

const BATCH: usize = 256;

fn gate_with_width(n: usize) -> ParallelGate {
    // 32 channels at 10 GHz spacing would pass 320 GHz; pack at 4 GHz
    // so all three widths share one frequency plan style.
    ParallelGateBuilder::new(Waveguide::paper_default().expect("waveguide"))
        .channels(n)
        .inputs(3)
        .base_frequency(10.0 * GHZ)
        .frequency_step(4.0 * GHZ)
        .build()
        .expect("gate")
}

fn bench_batch(c: &mut Criterion) {
    for n in [8usize, 16, 32] {
        let gate = gate_with_width(n);
        let sets = random_operand_sets(&gate, BATCH).expect("operand sets");
        let mut group = c.benchmark_group(format!("batch_w{n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((BATCH * n) as u64));

        // N independent single-shot calls through the public wrapper,
        // collecting all outputs (what a caller replacing a batch call
        // would actually do).
        group.bench_function("single_shot_x256", |b| {
            b.iter(|| {
                sets.iter()
                    .map(|set| gate.evaluate(black_box(set.words())).expect("evaluate"))
                    .collect::<Vec<_>>()
            })
        });

        // One batched call through an analytic session.
        let mut analytic = gate.session(BackendChoice::Analytic).expect("session");
        group.bench_function("analytic_batch_256", |b| {
            b.iter(|| black_box(analytic.evaluate_batch(black_box(&sets)).expect("batch")))
        });

        // One batched call through a precompiled-LUT session.
        let mut cached = gate.session(BackendChoice::Cached).expect("session");
        cached.evaluate_batch(&sets).expect("warm the LUT");
        group.bench_function("cached_batch_256", |b| {
            b.iter(|| black_box(cached.evaluate_batch(black_box(&sets)).expect("batch")))
        });

        // Logic-only bit-sliced kernel on an eagerly densified LUT:
        // 64 operand sets advance per boolean word-op, and no
        // per-channel analog readouts are materialized.
        let mut sliced = gate.session(BackendChoice::Cached).expect("session");
        sliced.warm_all();
        group.bench_function("sliced_batch_256", |b| {
            b.iter(|| {
                black_box(
                    sliced
                        .evaluate_batch_logic(black_box(&sets))
                        .expect("batch"),
                )
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
