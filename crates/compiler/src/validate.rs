//! Validation: widths, the FDM lane grid, and cascade feasibility.
//!
//! The validator answers three questions before any placement work
//! happens:
//!
//! * does the circuit's word width fit a buildable channel plan on the
//!   target waveguide (one probe gate on the packed grid)?
//! * does the [`fdm_lane_base`] grid the placer packs into actually
//!   keep its bands disjoint with the promised guard band, for every
//!   lane the configuration may use?
//! * if the circuit's majority gates were chained *without*
//!   re-transduction (the paper's §III cascade option, modelled by
//!   [`magnon_core::cascade`]), would the weakest vote still arrive
//!   with usable amplitude after the deepest MAJ chain?

use crate::{CompileError, CompilerConfig};
use magnon_circuits::netlist::{
    fdm_lane_base, fdm_lane_guard_band, packed_frequency_step, Circuit, GateCounts, NodeKind,
};
use magnon_core::cascade::Cascade;
use magnon_core::channel::{ChannelPlan, DispersionModel};
use magnon_core::gate::ParallelGateBuilder;
use magnon_core::truth::LogicFunction;
use magnon_physics::waveguide::Waveguide;

/// What the validation pass established about a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Word width every wire carries.
    pub width: usize,
    /// Gate population of the circuit.
    pub gate_counts: GateCounts,
    /// Longest run of consecutive majority gates (inversions are
    /// transparent; XORs, inputs and constants break the run) — the
    /// depth the cascade probe is run at.
    pub maj_chain_depth: usize,
    /// Worst per-channel output amplitude of the cascade probe (units
    /// of one nominal source wave); `1.0` when no chain of two or more
    /// majority stages exists.
    pub cascade_min_amplitude: f64,
    /// Guard band (Hz) the lane grid keeps between consecutive lanes at
    /// this width.
    pub lane_grid_guard_band: f64,
    /// How many lanes of the grid were probed as buildable on the
    /// target waveguide (bounded by the configuration's lane cap).
    pub buildable_lanes: u16,
}

/// Runs the validation pass.
///
/// # Errors
///
/// * [`CompileError::Validation`] — no outputs, an unusable lane grid,
///   or a cascade-infeasible majority chain.
/// * [`CompileError::Gate`] — the width/waveguide combination cannot
///   build a gate at all.
pub fn validate(
    circuit: &Circuit,
    waveguide: &Waveguide,
    config: &CompilerConfig,
) -> Result<ValidationReport, CompileError> {
    if circuit.outputs().is_empty() {
        return Err(CompileError::Validation {
            reason: "the circuit marks no outputs — nothing to execute".into(),
        });
    }
    let width = circuit.width();
    let step = packed_frequency_step(width);

    // Width probe: one majority gate on lane 0 of the packed grid. Its
    // plan and layout double as the cascade geometry below.
    let probe = ParallelGateBuilder::new(*waveguide)
        .channels(width)
        .inputs(3)
        .function(LogicFunction::Majority)
        .frequency_step(step)
        .build()?;

    // Lane-grid check: every lane the placer may use must build a
    // disjoint plan with the grid's guard band. Lanes beyond what the
    // dispersion window supports simply cap the buildable count — the
    // placer will not climb past them.
    let guard = fdm_lane_guard_band(width);
    let mut plans: Vec<ChannelPlan> = Vec::new();
    for lane in 0..config.max_lanes_per_waveguide {
        let Ok(plan) = ChannelPlan::uniform(
            waveguide,
            DispersionModel::Exchange,
            width,
            fdm_lane_base(lane, width),
            step,
        ) else {
            break;
        };
        plans.push(plan);
    }
    if plans.is_empty() {
        return Err(CompileError::Validation {
            reason: format!("lane 0 of the w{width} grid is not buildable on this waveguide"),
        });
    }
    for (i, a) in plans.iter().enumerate() {
        for (j, b) in plans.iter().enumerate().skip(i + 1) {
            if a.overlaps(b) {
                return Err(CompileError::Validation {
                    reason: format!("grid lanes {i} and {j} overlap at width {width}"),
                });
            }
            if a.guard_band_to(b) < guard - 1.0 {
                return Err(CompileError::Validation {
                    reason: format!(
                        "grid lanes {i} and {j} keep only {:.2} GHz of guard band \
                         (the w{width} grid promises {:.2} GHz)",
                        a.guard_band_to(b) / 1e9,
                        guard / 1e9,
                    ),
                });
            }
        }
    }

    // Cascade feasibility: run the weakest-vote chain (a 2-1 split into
    // stage 0, then a cancelling fresh pair per stage, so the carried
    // wave alone decides every later vote while propagation decay eats
    // it) over the deepest consecutive-MAJ run of the circuit.
    let maj_chain_depth = longest_maj_chain(circuit);
    let cascade_min_amplitude = if maj_chain_depth >= 2 {
        let gaps = vec![1usize; width];
        let cascade = Cascade::new(probe.channel_plan(), probe.layout(), &gaps)?;
        let first = vec![vec![true; width], vec![false; width], vec![false; width]];
        let later = vec![vec![vec![true; width], vec![false; width]]; maj_chain_depth - 1];
        let analysis = cascade.run(&first, &later)?;
        let min = analysis
            .min_amplitude_per_stage()
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        if min < config.min_cascade_amplitude {
            return Err(CompileError::Validation {
                reason: format!(
                    "a {maj_chain_depth}-deep majority cascade decays the weakest vote to \
                     {min:.2e} source amplitudes (< {:.2e}) — the chain is not cascade-feasible \
                     without re-transduction",
                    config.min_cascade_amplitude,
                ),
            });
        }
        min
    } else {
        1.0
    };

    Ok(ValidationReport {
        width,
        gate_counts: circuit.gate_counts(),
        maj_chain_depth,
        cascade_min_amplitude,
        lane_grid_guard_band: guard,
        buildable_lanes: plans.len() as u16,
    })
}

/// Longest run of consecutive majority gates. Inversions are
/// transparent (free detector placements carry the wave through);
/// anything else re-transduces and resets the run.
fn longest_maj_chain(circuit: &Circuit) -> usize {
    let kinds = circuit.node_kinds();
    let mut run = vec![0usize; kinds.len()];
    let mut longest = 0;
    for (id, kind) in circuit.node_ids().zip(&kinds) {
        let carried = |op: &magnon_circuits::netlist::NodeId| run[op.index()];
        run[id.index()] = match kind {
            NodeKind::Maj3(..) => 1 + kind.operands().iter().map(carried).max().unwrap_or(0),
            NodeKind::Not(a) => run[a.index()],
            _ => 0,
        };
        longest = longest.max(run[id.index()]);
    }
    longest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maj_chain_sees_through_inversions_and_resets_on_xor() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m1 = c.maj3(a, b, d).unwrap();
        let n = c.not(m1).unwrap();
        let m2 = c.maj3(n, a, b).unwrap();
        let x = c.xor2(m2, a).unwrap();
        let m3 = c.maj3(x, a, b).unwrap();
        c.mark_output(m3).unwrap();
        // m1 -> not -> m2 is a run of 2; the XOR resets, m3 restarts at 1.
        assert_eq!(longest_maj_chain(&c), 2);
    }

    #[test]
    fn shallow_circuits_skip_the_cascade_probe() {
        let guide = Waveguide::paper_default().unwrap();
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let x = c.xor2(a, b).unwrap();
        c.mark_output(x).unwrap();
        let report = validate(&c, &guide, &CompilerConfig::default()).unwrap();
        assert_eq!(report.maj_chain_depth, 0);
        assert_eq!(report.cascade_min_amplitude, 1.0);
        assert!(report.buildable_lanes >= 1);
        assert_eq!(report.lane_grid_guard_band, fdm_lane_guard_band(8));
    }

    #[test]
    fn deep_maj_chains_report_their_cascade_amplitude() {
        let guide = Waveguide::paper_default().unwrap();
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let mut m = c.maj3(a, b, d).unwrap();
        for _ in 0..5 {
            m = c.maj3(m, a, b).unwrap();
        }
        c.mark_output(m).unwrap();
        let report = validate(&c, &guide, &CompilerConfig::default()).unwrap();
        assert_eq!(report.maj_chain_depth, 6);
        assert!(report.cascade_min_amplitude.is_finite());
        assert!(report.cascade_min_amplitude > 0.0);
        assert!(
            report.cascade_min_amplitude < 1.5,
            "a carried weak vote cannot exceed its source amplitude by much: {}",
            report.cascade_min_amplitude
        );
    }
}
