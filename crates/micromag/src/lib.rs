//! Finite-difference Landau–Lifshitz–Gilbert micromagnetic simulator.
//!
//! This crate is the workspace's substitute for OOMMF, the simulator the
//! reproduced paper used for validation. It integrates the LLG equation
//!
//! ```text
//! dm/dt = −γ′/(1+α²) [ m × H_eff + α m × (m × H_eff) ]
//! ```
//!
//! on a regular 1D/2D mesh of cells, with the effective field assembled
//! from pluggable [`field::FieldTerm`]s:
//!
//! * [`field::Exchange`] — discrete Laplacian exchange field,
//! * [`field::UniaxialAnisotropy`] — perpendicular magnetic anisotropy,
//! * [`field::LocalDemag`] — diagonal demagnetizing tensor (thin-film /
//!   waveguide approximation),
//! * [`field::Zeeman`] — static applied field,
//! * [`source::Antenna`] — localized microwave excitation (the ME-cell
//!   transducers of the paper),
//!
//! plus graded-damping [`absorber`] regions that suppress end
//! reflections, [`probe`]s that record `Mx/Ms` time traces, and a
//! [`sim::SimulationBuilder`] that wires a
//! [`magnon_physics::waveguide::Waveguide`] into a ready-to-run
//! simulation.
//!
//! The local-demag model realises exactly the
//! [`magnon_physics::dispersion::ExchangeDispersion`] branch, so gate
//! layouts designed on that dispersion are validated without systematic
//! wavelength error (see `DESIGN.md` §4).
//!
//! # Examples
//!
//! Excite a 20 GHz spin wave in the paper's waveguide and observe it at
//! a probe:
//!
//! ```no_run
//! use magnon_micromag::sim::SimulationBuilder;
//! use magnon_micromag::source::Antenna;
//! use magnon_micromag::probe::Probe;
//! use magnon_physics::waveguide::Waveguide;
//! use magnon_math::constants::{GHZ, NM, NS};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let guide = Waveguide::paper_default()?;
//! let output = SimulationBuilder::new(guide, 800.0 * NM)?
//!     .cell_size(2.0 * NM)?
//!     .add_antenna(Antenna::new(100.0 * NM, 10.0 * NM, 20.0 * GHZ, 1.0e4, 0.0)?)
//!     .add_probe(Probe::point(500.0 * NM))
//!     .duration(1.0 * NS)?
//!     .run()?;
//! let trace = &output.series()[0];
//! assert!(trace.amplitude_at(20.0 * GHZ)? > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod absorber;
pub mod energy;
pub mod error;
pub mod field;
pub mod mesh;
pub mod probe;
pub mod sim;
pub mod snapshot;
pub mod solver;
pub mod source;
pub mod stability;
pub mod thermal;

pub use error::SimError;
