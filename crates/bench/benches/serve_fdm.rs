//! FDM bench: N gates on N waveguides vs the same N gates FDM'd onto
//! ONE waveguide as N frequency lanes.
//!
//! Both sides serve the identical 256-request load (round-robined over
//! the N gates, cached backends, static policies) through
//! `evaluate_many`. The spread side owns N placement slots over the
//! workers; the FDM side packs all N designs onto waveguide 0's lanes,
//! where every whole-waveguide drain stacks into one multi-lane pass —
//! the serving-density axis of arXiv:2008.12220: more concurrent gates
//! per physical channel, not more hardware.
//!
//! The lane designs differ between the two sides only in their carrier
//! bands (the FDM side must occupy disjoint spectrum), so per-request
//! compute is identical once the LUTs are warm.
//!
//! Standing caveat: the container is 1-core, so worker threads
//! time-slice one CPU; re-baseline on a multi-core host before citing
//! absolute throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_bench::random_operand_sets;
use magnon_circuits::netlist::{fdm_lane_base, packed_frequency_step};
use magnon_core::backend::BackendChoice;
use magnon_core::gate::{LaneId, ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_core::truth::LogicFunction;
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{AdaptiveConfig, GateId, Scheduler, SchedulerBuilder, ServeConfig};
use std::hint::black_box;
use std::time::Duration;

const BATCH: usize = 256;
const GATES: u16 = 4;

/// One majority gate on lane `lane`'s band (used for BOTH sides, so
/// the per-request decode work matches exactly).
fn lane_gate(n: usize, lane: u16, waveguide: WaveguideId) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().expect("waveguide"))
        .channels(n)
        .inputs(3)
        .function(LogicFunction::Majority)
        .base_frequency(fdm_lane_base(lane, n))
        .frequency_step(packed_frequency_step(n))
        .on_waveguide(waveguide)
        .on_lane(LaneId(lane))
        .build()
        .expect("gate")
}

fn scheduler_with(gates: Vec<ParallelGate>) -> (Scheduler, Vec<GateId>) {
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: BATCH,
        linger: Duration::from_micros(100),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(),
    });
    let ids = gates
        .into_iter()
        .enumerate()
        .map(|(k, gate)| {
            builder
                .register(format!("maj3_{k}"), gate, BackendChoice::Cached)
                .expect("register")
        })
        .collect();
    (builder.build().expect("scheduler"), ids)
}

fn bench_fdm(c: &mut Criterion) {
    for n in [8usize, 16] {
        let probe = lane_gate(n, 0, WaveguideId(0));
        let sets = random_operand_sets(&probe, BATCH).expect("operand sets");
        let mut group = c.benchmark_group(format!("serve_fdm_w{n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((BATCH * n) as u64));

        // Spread: one gate per waveguide (the pre-FDM serving shape —
        // lane-shifted designs, but each alone on its medium).
        let spread: Vec<ParallelGate> = (0..GATES)
            .map(|k| lane_gate(n, k, WaveguideId(k as u64)))
            .collect();
        let (scheduler, ids) = scheduler_with(spread);
        let routed: Vec<(GateId, _)> = sets
            .iter()
            .enumerate()
            .map(|(i, set)| (ids[i % ids.len()], set.clone()))
            .collect();
        scheduler.evaluate_many(&routed).expect("warm the LUTs");
        group.bench_function(format!("{GATES}_gates_on_{GATES}_waveguides_256"), |b| {
            b.iter(|| black_box(scheduler.evaluate_many(black_box(&routed)).expect("serve")))
        });
        let spread_stats = scheduler.stats();
        scheduler.shutdown().expect("shutdown");

        // FDM: the same designs stacked onto waveguide 0 as N lanes.
        let stacked: Vec<ParallelGate> = (0..GATES)
            .map(|k| lane_gate(n, k, WaveguideId(0)))
            .collect();
        let (scheduler, ids) = scheduler_with(stacked);
        let routed: Vec<(GateId, _)> = sets
            .iter()
            .enumerate()
            .map(|(i, set)| (ids[i % ids.len()], set.clone()))
            .collect();
        scheduler.evaluate_many(&routed).expect("warm the LUTs");
        group.bench_function(format!("{GATES}_gates_fdm_on_1_waveguide_256"), |b| {
            b.iter(|| black_box(scheduler.evaluate_many(black_box(&routed)).expect("serve")))
        });
        let fdm_stats = scheduler.stats();
        println!(
            "  [w{n}] spread: {} drains / {} batches; fdm: {} drains / {} batches, {} stacked passes x {:.1} lanes ({} requests)",
            spread_stats.drain_passes,
            spread_stats.batches,
            fdm_stats.drain_passes,
            fdm_stats.batches,
            fdm_stats.fdm_batches,
            if fdm_stats.fdm_batches == 0 {
                0.0
            } else {
                fdm_stats.fdm_lanes as f64 / fdm_stats.fdm_batches as f64
            },
            fdm_stats.fdm_requests,
        );
        assert!(
            fdm_stats.fdm_batches > 0,
            "the FDM side must actually stack lanes: {fdm_stats:?}"
        );
        scheduler.shutdown().expect("shutdown");
        group.finish();
    }
}

criterion_group!(benches, bench_fdm);
criterion_main!(benches);
