//! Analyzer test suite: parser coverage, fixture crates with planted
//! transitive violations (found / waived / ambiguous), policy parsing,
//! and the workspace-must-be-clean gate mirroring PR 8's lint suite.

use super::*;

fn one_crate(src: &str) -> Vec<SourceFile> {
    vec![SourceFile {
        crate_name: "tcrate".into(),
        rel: "crates/tcrate/src/lib.rs".into(),
        text: src.into(),
    }]
}

fn analyzed(src: &str) -> Analysis {
    let mut a = analyze_sources(&one_crate(src), &[]);
    compute_facts(&mut a, &[]);
    a
}

#[test]
fn parser_extracts_fns_methods_and_inline_mods() {
    let a = analyzed(
        "pub fn free() {}\n\
         pub struct Widget;\n\
         impl Widget {\n\
             pub fn method(&self) {}\n\
         }\n\
         impl std::fmt::Display for Widget {\n\
             fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
         }\n\
         mod inner {\n\
             pub fn nested() {}\n\
         }\n",
    );
    let ids: Vec<&str> = a.fns.iter().map(|f| f.id.as_str()).collect();
    assert!(ids.contains(&"tcrate::free"), "ids: {ids:?}");
    assert!(ids.contains(&"tcrate::Widget::method"));
    assert!(ids.contains(&"tcrate::Widget::fmt"));
    assert!(ids.contains(&"tcrate::inner::nested"));
}

#[test]
fn multi_line_signatures_and_where_clauses_parse() {
    let a = analyzed(
        "pub fn long_sig(\n\
             a: u32,\n\
             b: [u8; 4],\n\
         ) -> u32\n\
         where\n\
             u32: Copy,\n\
         {\n\
             helper(a)\n\
         }\n\
         fn helper(x: u32) -> u32 { x }\n",
    );
    assert_eq!(a.fns.len(), 2);
    let edge = a
        .edges
        .iter()
        .any(|e| a.fns[e.caller].name == "long_sig" && a.fns[e.callee].name == "helper");
    assert!(edge, "bare call in the body must resolve within the crate");
}

#[test]
fn intrinsic_sites_are_detected_and_attributed() {
    let a = analyzed(
        "pub fn risky(v: &[u32]) -> u32 {\n\
             let x = v[0];\n\
             let s = format!(\"{x}\");\n\
             let _ = s;\n\
             std::thread::sleep(std::time::Duration::from_millis(1));\n\
             x\n\
         }\n",
    );
    let f = &a.fns[0];
    assert!(f
        .sites
        .iter()
        .any(|s| s.fact == Fact::Panic && s.token == "slice-index"));
    assert!(f
        .sites
        .iter()
        .any(|s| s.fact == Fact::Alloc && s.token == "format!("));
    assert!(f
        .sites
        .iter()
        .any(|s| s.fact == Fact::Block && s.token == "sleep"));
    assert!(a.can[Fact::Panic.index()][0]);
    assert!(a.can[Fact::Alloc.index()][0]);
    assert!(a.can[Fact::Block.index()][0]);
}

#[test]
fn string_and_comment_tokens_are_invisible() {
    let a = analyzed(
        "pub fn quiet() {\n\
             // mentions .unwrap() and panic!() in prose\n\
             let s = \".unwrap() vec![format!\";\n\
             let _ = s;\n\
         }\n",
    );
    assert!(a.fns[0].sites.is_empty(), "sites: {:?}", a.fns[0].sites);
}

#[test]
fn test_code_is_masked_out() {
    let a = analyzed(
        "pub fn prod() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             pub fn t() { x.unwrap(); }\n\
         }\n",
    );
    assert_eq!(a.fns.len(), 1);
    assert_eq!(a.fns[0].name, "prod");
}

#[test]
fn transitive_panic_propagates_and_explains() {
    let src = "pub fn root() { mid(); }\n\
               fn mid() { deep(); }\n\
               fn deep() { opt().unwrap(); }\n\
               fn opt() -> Option<u32> { None }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(
        a.can[Fact::Panic.index()][root],
        "panic must propagate to root"
    );
    let chain = explain(&a, root, Fact::Panic).expect("chain exists");
    assert_eq!(chain.hops.len(), 3, "root → mid → deep");
    assert_eq!(chain.site_token, ".unwrap()");
    let rendered = render_chain(&a, &chain);
    assert!(rendered.contains("tcrate::root"));
    assert!(rendered.contains("tcrate::deep"));
    assert!(rendered.contains(".unwrap()"));
}

#[test]
fn waived_sites_do_not_seed_propagation() {
    let src = "pub fn root() { helper(); }\n\
               fn helper() {\n\
                   // analyze: allow(can-panic) — invariant: map is pre-filled\n\
                   map().unwrap();\n\
               }\n\
               fn map() -> Option<u32> { Some(1) }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(
        !a.can[Fact::Panic.index()][root],
        "waived site must not propagate"
    );
    assert!(a.waiver_decls.iter().any(|w| w.rule == "can-panic"));
}

#[test]
fn waived_call_edges_cut_propagation() {
    let src = "pub fn root() {\n\
                   // analyze: allow(can-alloc) — cold path: once per session\n\
                   build_cache();\n\
               }\n\
               fn build_cache() { let v = vec![1, 2]; let _ = v; }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(!a.can[Fact::Alloc.index()][root]);
    // The callee itself still carries the fact.
    let callee = a.index_of("tcrate::build_cache").expect("callee parsed");
    assert!(a.can[Fact::Alloc.index()][callee]);
}

#[test]
fn trust_entries_cut_propagation_at_the_boundary() {
    let src = "pub fn root() { audited(); }\n\
               pub fn audited() { inner().unwrap(); }\n\
               fn inner() -> Option<u32> { Some(1) }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let trust = vec![TrustSpec {
        func: "tcrate::audited".into(),
        rules: vec![Fact::Panic],
        reason: "test: audited boundary".into(),
    }];
    let errors = compute_facts(&mut a, &trust);
    assert!(errors.is_empty());
    let root = a.index_of("tcrate::root").expect("root parsed");
    let audited = a.index_of("tcrate::audited").expect("audited parsed");
    assert!(
        a.can[Fact::Panic.index()][audited],
        "trusted fn keeps its own facts"
    );
    assert!(!a.can[Fact::Panic.index()][root], "caller must not inherit");
}

#[test]
fn unknown_trust_fn_is_an_error_not_a_silent_skip() {
    let mut a = analyze_sources(&one_crate("pub fn f() {}\n"), &[]);
    let trust = vec![TrustSpec {
        func: "tcrate::no_such_fn".into(),
        rules: vec![Fact::Panic],
        reason: "typo".into(),
    }];
    let errors = compute_facts(&mut a, &trust);
    assert_eq!(errors.len(), 1);
    assert!(errors[0].contains("no_such_fn"));
}

#[test]
fn cross_crate_calls_resolve_by_path_and_import() {
    let sources = vec![
        SourceFile {
            crate_name: "alpha".into(),
            rel: "crates/alpha/src/lib.rs".into(),
            text: "use beta::helpers::step;\n\
                   pub fn go(x: u32) -> u32 { step(x) + beta::helpers::step(x) }\n"
                .into(),
        },
        SourceFile {
            crate_name: "beta".into(),
            rel: "crates/beta/src/helpers.rs".into(),
            text: "pub fn step(x: u32) -> u32 { x + 1 }\n".into(),
        },
    ];
    let a = analyze_sources(&sources, &[]);
    let go = a.index_of("alpha::go").expect("go parsed");
    let step = a.index_of("beta::helpers::step").expect("step parsed");
    let hits = a
        .edges
        .iter()
        .filter(|e| e.caller == go && e.callee == step)
        .count();
    assert_eq!(
        hits, 2,
        "both the imported and the fully-qualified call resolve"
    );
}

#[test]
fn fn_references_in_higher_order_calls_get_edges() {
    let src = "pub struct Out;\n\
               impl Out {\n\
                   pub fn logic_only(self) -> Out { opt().unwrap() }\n\
               }\n\
               fn opt() -> Option<Out> { None }\n\
               pub fn root(v: Vec<Out>) -> Vec<Out> {\n\
                   v.into_iter().map(Out::logic_only).collect()\n\
               }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(
        a.can[Fact::Panic.index()][root],
        "`map(Out::logic_only)` must carry the callee's facts"
    );
}

#[test]
fn ambiguous_method_calls_are_reported_with_conservative_edges() {
    let sources = vec![
        SourceFile {
            crate_name: "one".into(),
            rel: "crates/one/src/lib.rs".into(),
            text: "pub struct A;\nimpl A { pub fn emit(&self) {} }\n".into(),
        },
        SourceFile {
            crate_name: "two".into(),
            rel: "crates/two/src/lib.rs".into(),
            text: "pub struct B;\nimpl B { pub fn emit(&self) { x().unwrap(); }\n}\n\
                   fn x() -> Option<u32> { None }\n"
                .into(),
        },
        SourceFile {
            crate_name: "caller".into(),
            rel: "crates/caller/src/lib.rs".into(),
            text: "use one::A;\nuse two::B;\npub fn go(a: &A) { a.emit(); }\n".into(),
        },
    ];
    let a = analyzed_multi(sources);
    assert_eq!(a.ambiguities.len(), 1, "the .emit() call is ambiguous");
    assert_eq!(a.ambiguities[0].candidates.len(), 2);
    // Conservative: the caller inherits the worst candidate's facts.
    let go = a.index_of("caller::go").expect("go parsed");
    assert!(a.can[Fact::Panic.index()][go]);
}

fn analyzed_multi(sources: Vec<SourceFile>) -> Analysis {
    let mut a = analyze_sources(&sources, &[]);
    compute_facts(&mut a, &[]);
    a
}

#[test]
fn self_receiver_methods_resolve_unambiguously() {
    let sources = vec![
        SourceFile {
            crate_name: "one".into(),
            rel: "crates/one/src/lib.rs".into(),
            text: "pub struct A;\n\
                   impl A {\n\
                       pub fn run(&self) { self.emit(); }\n\
                       fn emit(&self) {}\n\
                   }\n"
            .into(),
        },
        SourceFile {
            crate_name: "two".into(),
            rel: "crates/two/src/lib.rs".into(),
            text: "pub struct B;\nimpl B { pub fn emit(&self) { panic!(); } }\n".into(),
        },
    ];
    let a = analyzed_multi(sources);
    assert!(
        a.ambiguities.is_empty(),
        "self.emit() resolves to the owner's method: {:?}",
        a.ambiguities
    );
    let run = a.index_of("one::A::run").expect("run parsed");
    assert!(!a.can[Fact::Panic.index()][run]);
}

#[test]
fn ignore_methods_suppress_std_name_collisions() {
    let sources = vec![
        SourceFile {
            crate_name: "one".into(),
            rel: "crates/one/src/lib.rs".into(),
            text: "pub struct Q;\nimpl Q { pub fn push(&mut self, x: u32) { panic!(); } }\n".into(),
        },
        SourceFile {
            crate_name: "caller".into(),
            rel: "crates/caller/src/lib.rs".into(),
            // analyze: allow is absent on purpose: `.push(` is still an
            // intrinsic alloc token even when the call is ignored.
            text: "use one::Q;\npub fn go(v: &mut Vec<u32>) { v.push(1); }\n".into(),
        },
    ];
    let mut a = analyze_sources(&sources, &["push".to_string()]);
    compute_facts(&mut a, &[]);
    let go = a.index_of("caller::go").expect("go parsed");
    assert!(
        !a.can[Fact::Panic.index()][go],
        "ignored method adds no panic edge"
    );
    assert!(
        a.can[Fact::Alloc.index()][go],
        "intrinsic token still fires"
    );
}

#[test]
fn policy_parses_roots_trust_and_ignore() {
    let p = parse_policy(
        "# comment\n\
         [[root]]\n\
         fn = \"a::b\"            # trailing comment\n\
         deny = [\"can-panic\", \"can-alloc\"]\n\
         reason = \"drain must not die\"\n\
         \n\
         [[trust]]\n\
         fn = \"a::c\"\n\
         rules = [\"can-alloc\"]\n\
         reason = \"audited arena\"\n\
         \n\
         [ignore]\n\
         methods = [\n\
             \"push\",\n\
             \"insert\",\n\
         ]\n\
         files = [\"crates/x/src/shim.rs\"]\n",
    )
    .expect("policy parses");
    assert_eq!(p.roots.len(), 1);
    assert_eq!(p.roots[0].deny, vec![Fact::Panic, Fact::Alloc]);
    assert_eq!(p.trust.len(), 1);
    assert_eq!(p.ignore_methods, vec!["push", "insert"]);
    assert_eq!(p.ignore_files, vec!["crates/x/src/shim.rs"]);
}

#[test]
fn policy_rejects_missing_reasons_and_unknown_rules() {
    assert!(parse_policy("[[root]]\nfn = \"a\"\ndeny = [\"can-panic\"]\n").is_err());
    assert!(
        parse_policy("[[root]]\nfn = \"a\"\ndeny = [\"can-explode\"]\nreason = \"x\"\n").is_err()
    );
}

#[test]
fn reasonless_waivers_are_policy_errors() {
    let src = "pub fn root() {\n\
                   // analyze: allow(can-panic)\n\
                   x().unwrap();\n\
               }\n\
               fn x() -> Option<u32> { None }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy = Policy::default();
    let results = check_policy(&mut a, &policy);
    assert!(
        results.errors.iter().any(|e| e.contains("no reason")),
        "errors: {:?}",
        results.errors
    );
}

#[test]
fn unresolved_policy_roots_are_errors() {
    let mut a = analyze_sources(&one_crate("pub fn f() {}\n"), &[]);
    let policy =
        parse_policy("[[root]]\nfn = \"tcrate::ghost\"\ndeny = [\"can-panic\"]\nreason = \"x\"\n")
            .expect("parses");
    let results = check_policy(&mut a, &policy);
    assert!(!results.clean());
    assert!(results.errors.iter().any(|e| e.contains("ghost")));
}

#[test]
fn violation_chains_reach_the_json_report() {
    let src = "pub fn root() { deep(); }\n\
               fn deep() { x().unwrap(); }\n\
               fn x() -> Option<u32> { None }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy =
        parse_policy("[[root]]\nfn = \"tcrate::root\"\ndeny = [\"can-panic\"]\nreason = \"t\"\n")
            .expect("parses");
    let results = check_policy(&mut a, &policy);
    assert!(!results.clean());
    let json = report::render_json(&a, &policy, &results);
    assert!(json.contains("\"status\": \"violated\""));
    assert!(json.contains("tcrate::deep"));
    assert!(json.contains(".unwrap()"));
}

/// The built-in self-test is also a unit test: plant a violation three
/// calls deep, find it, pass the waived one, report the ambiguity.
#[test]
fn self_test_finds_the_planted_violation() {
    let evidence = self_test().expect("self-test passes");
    assert!(evidence.contains("3 calls deep"));
    assert!(evidence.contains("fix_core"));
}

// --- the lock-order & blocking-discipline pass -----------------------------

#[test]
fn lock_policy_round_trips() {
    let p = parse_policy(
        "[[lock]]\n\
         class = \"outer\"\n\
         receivers = [\"queue\", \"jobs\"]\n\
         acquire_fns = [\"a::lock_queue\"]\n\
         crate = \"a\"\n\
         reentrant = false\n\
         before = [\"inner\"]\n\
         reason = \"queue is the outer lock\"\n\
         \n\
         [[lock]]\n\
         class = \"inner\"\n\
         receivers = [\"slots\"]\n\
         reason = \"leaf\"\n\
         \n\
         [locks]\n\
         strict = [\"a\"]\n\
         unbounded_sends = [\"event_tx\"]\n",
    )
    .expect("lock policy parses");
    assert_eq!(p.locks.len(), 2);
    assert_eq!(p.locks[0].class, "outer");
    assert_eq!(p.locks[0].receivers, vec!["queue", "jobs"]);
    assert_eq!(p.locks[0].acquire_fns, vec!["a::lock_queue"]);
    assert_eq!(p.locks[0].crate_scope, "a");
    assert_eq!(p.locks[0].before, vec!["inner"]);
    assert!(!p.locks[0].reentrant);
    assert_eq!(p.lock_config.strict, vec!["a"]);
    assert_eq!(p.lock_config.unbounded_sends, vec!["event_tx"]);
}

#[test]
fn lock_policy_rejects_malformed_entries() {
    // No class name.
    assert!(parse_policy("[[lock]]\nreceivers = [\"q\"]\nreason = \"r\"\n").is_err());
    // Neither receivers nor acquire_fns.
    assert!(parse_policy("[[lock]]\nclass = \"a\"\nreason = \"r\"\n").is_err());
    // No reason.
    assert!(parse_policy("[[lock]]\nclass = \"a\"\nreceivers = [\"q\"]\n").is_err());
    // Duplicate class.
    assert!(parse_policy(
        "[[lock]]\nclass = \"a\"\nreceivers = [\"q\"]\nreason = \"r\"\n\
         [[lock]]\nclass = \"a\"\nreceivers = [\"p\"]\nreason = \"r\"\n"
    )
    .is_err());
    // `before` naming an unknown class.
    assert!(parse_policy(
        "[[lock]]\nclass = \"a\"\nreceivers = [\"q\"]\nbefore = [\"ghost\"]\nreason = \"r\"\n"
    )
    .is_err());
    // Non-boolean reentrant and an unknown key.
    assert!(parse_policy(
        "[[lock]]\nclass = \"a\"\nreceivers = [\"q\"]\nreentrant = \"yes\"\nreason = \"r\"\n"
    )
    .is_err());
    assert!(parse_policy("[[lock]]\nclass = \"a\"\nfrequency = \"2.282 GHz\"\n").is_err());
}

#[test]
fn cyclic_declared_order_is_a_policy_error() {
    let err = parse_policy(
        "[[lock]]\nclass = \"a\"\nreceivers = [\"qa\"]\nbefore = [\"b\"]\nreason = \"r\"\n\
         [[lock]]\nclass = \"b\"\nreceivers = [\"qb\"]\nbefore = [\"c\"]\nreason = \"r\"\n\
         [[lock]]\nclass = \"c\"\nreceivers = [\"qc\"]\nbefore = [\"a\"]\nreason = \"r\"\n",
    )
    .expect_err("a cyclic declared order must be rejected");
    assert!(err.contains("cyclic"), "err: {err}");
    assert!(
        err.contains("a → b → c → a") || err.contains("b → c → a → b"),
        "err: {err}"
    );
}

#[test]
fn reasonless_lock_order_waivers_are_policy_errors() {
    let src = "use std::sync::Mutex;\n\
               pub fn go(q: &Mutex<u32>, p: &Mutex<u32>) {\n\
                   let _a = q.lock().unwrap();\n\
                   // analyze: allow(lock-order)\n\
                   let _b = p.lock().unwrap();\n\
               }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy = Policy::default();
    let results = check_policy(&mut a, &policy);
    assert!(
        results.errors.iter().any(|e| e.contains("no reason")),
        "errors: {:?}",
        results.errors
    );
}

/// The defect shape this PR fixed in `magnon_net`: joining a thread
/// while the registry guard is held. The old accept-loop shape must be
/// flagged as lock-block; the fixed shape (collect under the guard,
/// join after the block closes) must be clean.
#[test]
fn join_under_registry_lock_is_flagged_and_the_fixed_shape_is_clean() {
    let lock_policy = "[[lock]]\n\
                       class = \"registry\"\n\
                       receivers = [\"connections\"]\n\
                       reason = \"test registry\"\n";
    let old_shape = "use std::sync::Mutex;\n\
                     pub fn accept_loop(connections: &Mutex<Vec<u32>>) {\n\
                         let mut registry = connections.lock().unwrap();\n\
                         if let Some(h) = registry.pop() {\n\
                             join_one(h);\n\
                         }\n\
                     }\n\
                     fn join_one(_h: u32) { std::thread::park(); }\n";
    let mut a = analyze_sources(&one_crate(old_shape), &[]);
    let policy = parse_policy(lock_policy).expect("parses");
    let results = check_policy(&mut a, &policy);
    let blocked: Vec<_> = results
        .lock
        .violations
        .iter()
        .filter(|v| v.kind == "lock-block")
        .collect();
    assert_eq!(blocked.len(), 1, "one blocking-under-lock path");
    assert!(
        blocked[0].detail.contains("join_one") && blocked[0].detail.contains("park"),
        "the chain names the hop and the blocking site: {}",
        blocked[0].detail
    );
    assert!(!results.clean());

    let fixed_shape = "use std::sync::Mutex;\n\
                       pub fn accept_loop(connections: &Mutex<Vec<u32>>) {\n\
                           let finished = {\n\
                               let mut registry = connections.lock().unwrap();\n\
                               registry.pop()\n\
                           };\n\
                           if let Some(h) = finished {\n\
                               join_one(h);\n\
                           }\n\
                       }\n\
                       fn join_one(_h: u32) { std::thread::park(); }\n";
    let mut a = analyze_sources(&one_crate(fixed_shape), &[]);
    let results = check_policy(&mut a, &policy);
    assert!(
        results.lock.violations.is_empty(),
        "joining after the guard block closes is clean: {:?}",
        results
            .lock
            .violations
            .iter()
            .map(|v| (v.kind, v.detail.clone()))
            .collect::<Vec<_>>()
    );
}

/// Expression-temporary guards die on their own line: blocking on the
/// next line is *not* under the lock.
#[test]
fn temporary_guards_do_not_cover_following_lines() {
    let src = "use std::sync::Mutex;\n\
               pub fn tick(connections: &Mutex<Vec<u32>>) {\n\
                   let n = connections.lock().unwrap().len();\n\
                   std::thread::park();\n\
                   let _ = n;\n\
               }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy = parse_policy(
        "[[lock]]\nclass = \"registry\"\nreceivers = [\"connections\"]\nreason = \"t\"\n",
    )
    .expect("parses");
    let results = check_policy(&mut a, &policy);
    assert!(
        results.lock.violations.is_empty(),
        "violations: {:?}",
        results
            .lock
            .violations
            .iter()
            .map(|v| v.kind)
            .collect::<Vec<_>>()
    );
}

/// Nesting against the declared order is order-inversion; nesting with
/// no declared cover is order-undeclared. Both carry the witness.
#[test]
fn order_inversion_and_undeclared_nesting_are_flagged() {
    let src = "use std::sync::Mutex;\n\
               pub struct S { queue: Mutex<u32>, slots: Mutex<u32>, aux: Mutex<u32> }\n\
               impl S {\n\
                   pub fn inverted(&self) {\n\
                       let _s = self.slots.lock().unwrap();\n\
                       let _q = self.queue.lock().unwrap();\n\
                   }\n\
                   pub fn undeclared(&self) {\n\
                       let _q = self.queue.lock().unwrap();\n\
                       let _x = self.aux.lock().unwrap();\n\
                   }\n\
               }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy = parse_policy(
        "[[lock]]\nclass = \"queue\"\nreceivers = [\"queue\"]\nbefore = [\"slots\"]\nreason = \"t\"\n\
         [[lock]]\nclass = \"slots\"\nreceivers = [\"slots\"]\nreason = \"t\"\n\
         [[lock]]\nclass = \"aux\"\nreceivers = [\"aux\"]\nreason = \"t\"\n",
    )
    .expect("parses");
    let results = check_policy(&mut a, &policy);
    let kinds: Vec<&str> = results.lock.violations.iter().map(|v| v.kind).collect();
    assert!(kinds.contains(&"order-inversion"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"order-undeclared"), "kinds: {kinds:?}");
    let inv = results
        .lock
        .violations
        .iter()
        .find(|v| v.kind == "order-inversion")
        .unwrap();
    assert_eq!(inv.classes, vec!["slots".to_string(), "queue".to_string()]);
    assert!(inv.detail.contains("inverted"), "detail: {}", inv.detail);
}

/// Strict crates turn unmatched receivers into hard errors; non-strict
/// crates record them as notes.
#[test]
fn strict_crates_reject_unclassified_receivers() {
    let src = "use std::sync::Mutex;\n\
               pub fn f(mystery: &Mutex<u32>) { let _g = mystery.lock().unwrap(); }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let strict = parse_policy(
        "[[lock]]\nclass = \"known\"\nreceivers = [\"other\"]\nreason = \"t\"\n\
         [locks]\nstrict = [\"tcrate\"]\n",
    )
    .expect("parses");
    let results = check_policy(&mut a, &strict);
    assert!(
        results.errors.iter().any(|e| e.contains("mystery")),
        "errors: {:?}",
        results.errors
    );
    let mut a = analyze_sources(&one_crate(src), &[]);
    let lax =
        parse_policy("[[lock]]\nclass = \"known\"\nreceivers = [\"other\"]\nreason = \"t\"\n")
            .expect("parses");
    let results = check_policy(&mut a, &lax);
    assert!(results.errors.is_empty());
    assert_eq!(results.lock.unclassified.len(), 1);
}

/// The computed lock graph reaches the JSON deadlock report with its
/// witness edges and violations.
#[test]
fn lock_edges_and_violations_reach_the_json_report() {
    let src = "use std::sync::Mutex;\n\
               pub struct S { queue: Mutex<u32>, slots: Mutex<u32> }\n\
               impl S {\n\
                   pub fn nested(&self) {\n\
                       let _q = self.queue.lock().unwrap();\n\
                       let _s = self.slots.lock().unwrap();\n\
                   }\n\
               }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy = parse_policy(
        "[[lock]]\nclass = \"queue\"\nreceivers = [\"queue\"]\nreason = \"t\"\n\
         [[lock]]\nclass = \"slots\"\nreceivers = [\"slots\"]\nreason = \"t\"\n",
    )
    .expect("parses");
    let results = check_policy(&mut a, &policy);
    let json = report::render_json(&a, &policy, &results);
    assert!(json.contains("\"locks\""));
    assert!(json.contains("\"from\": \"queue\""));
    assert!(json.contains("\"to\": \"slots\""));
    assert!(json.contains("order-undeclared"));
    assert!(json.contains("\"acyclic\": true"));
}

/// The whole point: the real workspace, under the real policy, is
/// clean. Any future PR that adds a transitive panic/alloc/block to a
/// protected root fails here before CI even runs the binary.
#[test]
fn workspace_is_clean_under_the_checked_in_policy() {
    let root = magnon_lint::workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the analyzer lives inside the workspace");
    let policy_text = std::fs::read_to_string(root.join("analysis-policy.toml"))
        .expect("analysis-policy.toml is checked in");
    let policy = parse_policy(&policy_text).expect("policy parses");
    assert!(!policy.roots.is_empty(), "policy must declare roots");
    let sources = load_workspace(&root, &policy.ignore_files);
    assert!(sources.len() > 20, "the walk must find the crates");
    let mut analysis = analyze_sources(&sources, &policy.ignore_methods);
    let results = check_policy(&mut analysis, &policy);
    let mut rendered = String::new();
    for e in &results.errors {
        rendered.push_str(&format!("error: {e}\n"));
    }
    for r in &results.roots {
        for chain in &r.violations {
            rendered.push_str(&format!(
                "VIOLATION [{}] root {}\n{}",
                chain.fact.id(),
                r.spec.func,
                render_chain(&analysis, chain)
            ));
        }
    }
    for v in &results.lock.violations {
        rendered.push_str(&format!(
            "LOCK VIOLATION [{}] {}\n{}",
            v.kind,
            v.classes.join(" → "),
            v.detail
        ));
    }
    assert!(
        results.clean(),
        "workspace must be analyzer-clean under analysis-policy.toml:\n{rendered}"
    );
    assert!(
        results.lock.acyclic() && results.lock.classified_sites > 0,
        "the checked-in [[lock]] classes must classify the workspace's sites"
    );
}
