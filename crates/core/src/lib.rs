//! n-bit data-parallel spin-wave logic gates — the primary contribution
//! of *"n-bit Data Parallel Spin Wave Logic Gate"* (DATE 2020).
//!
//! Spin waves with different frequencies coexist in one waveguide and
//! interfere only with their own frequency. This crate turns that
//! property into a computing primitive:
//!
//! 1. [`channel`] allocates `n` frequency channels above the waveguide's
//!    FMR (the paper uses 10–80 GHz),
//! 2. [`inline`] places `m × n` excitation transducers and `n` detectors
//!    along a single waveguide, spacing same-frequency sources by integer
//!    multiples of their channel wavelength (Fig. 2 of the paper),
//! 3. [`gate`] wraps this into a [`gate::ParallelGate`] evaluating the
//!    same `m`-input logic function ([`truth::LogicFunction::Majority`]
//!    or [`truth::LogicFunction::Xor`]) on `n` independent data sets
//!    *simultaneously*,
//! 4. [`backend`] evaluates gates through pluggable
//!    [`backend::SpinWaveBackend`]s — the analytic superposition
//!    [`engine`], a precompiled truth-table cache, or
//! 5. [`micromag_bridge`], the full LLG simulator reproducing the
//!    paper's OOMMF methodology, all behind the same interface,
//! 6. [`scalability`] computes the graded input-energy schedules of the
//!    paper's §V scalability discussion, and [`crosstalk`] quantifies
//!    inter-channel isolation.
//!
//! # Quickstart
//!
//! Single-shot evaluation stays one call:
//!
//! ```
//! use magnon_core::prelude::*;
//! use magnon_physics::waveguide::Waveguide;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
//!     .channels(8)
//!     .inputs(3)
//!     .function(LogicFunction::Majority)
//!     .build()?;
//!
//! // Eight 3-input majority votes in one waveguide:
//! let a = Word::from_u8(0b1010_1010);
//! let b = Word::from_u8(0b1100_1100);
//! let c = Word::from_u8(0b1111_0000);
//! let out = gate.evaluate(&[a, b, c])?;
//! assert_eq!(out.word().to_u8(), 0b1110_1000);
//! # Ok(())
//! # }
//! ```
//!
//! For throughput, open a [`backend::GateSession`]: the channel plan,
//! layout, constructive references and equalised amplitudes are
//! compiled once, then batches stream through the chosen backend —
//! analytic, cached (truth-table LUT) or micromagnetic, switchable with
//! one argument:
//!
//! ```
//! use magnon_core::prelude::*;
//! use magnon_physics::waveguide::Waveguide;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
//!     .channels(8)
//!     .inputs(3)
//!     .build()?;
//!
//! // One argument picks the engine: Analytic | Cached | Micromag(_).
//! let mut session = gate.session(BackendChoice::Cached)?;
//! let batch: Vec<OperandSet> = (0u8..32)
//!     .map(|i| OperandSet::new(vec![
//!         Word::from_u8(i.wrapping_mul(37)),
//!         Word::from_u8(i.wrapping_mul(59)),
//!         Word::from_u8(i.wrapping_mul(83)),
//!     ]))
//!     .collect();
//! let outputs = session.evaluate_batch(&batch)?;
//! assert_eq!(outputs.len(), 32);
//! // Batched results are identical to single-shot evaluation:
//! for (set, out) in batch.iter().zip(&outputs) {
//!     assert_eq!(out.word(), gate.evaluate(set.words())?.word());
//! }
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod bitslice;
pub mod cascade;
pub mod channel;
pub mod crosstalk;
pub mod encoding;
pub mod engine;
pub mod error;
pub mod gate;
pub mod inline;
pub mod layout_report;
pub mod lut_store;
pub mod micromag_bridge;
pub mod robustness;
pub mod scalability;
pub mod sync;
pub mod truth;
pub mod word;

pub use error::GateError;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::backend::{
        AnalyticBackend, BackendChoice, CachedBackend, GateSession, LutStats, MicromagBackend,
        OperandSet, SpinWaveBackend,
    };
    pub use crate::channel::{ChannelPlan, FrequencyChannel};
    pub use crate::encoding::ReadoutMode;
    pub use crate::gate::{
        FrequencyLane, GateOutput, LaneId, ParallelGate, ParallelGateBuilder, WaveguideId,
    };
    pub use crate::truth::LogicFunction;
    pub use crate::word::Word;
    pub use crate::GateError;
}
