//! Behavioural transducer (ME cell) model.

use magnon_core::GateError;
use magnon_math::constants::{AJ, NM, NS};
use serde::{Deserialize, Serialize};

/// An excitation/detection transducer.
///
/// The paper assumes 10 nm × 50 nm cells that dominate gate delay and
/// energy; the default delay and energy values are representative
/// magnetoelectric-cell figures from the spin-wave circuit literature
/// and are freely configurable — the comparison depends only on
/// transducer *counts* being equal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transducer {
    width: f64,
    length: f64,
    delay: f64,
    energy: f64,
}

impl Transducer {
    /// Creates a transducer model.
    ///
    /// * `width` — footprint along the waveguide, m.
    /// * `length` — footprint across the waveguide, m.
    /// * `delay` — excitation/detection latency, s.
    /// * `energy` — energy per excitation or detection event, J.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for non-positive values.
    pub fn new(width: f64, length: f64, delay: f64, energy: f64) -> Result<Self, GateError> {
        for (name, v) in [
            ("width", width),
            ("length", length),
            ("delay", delay),
            ("energy", energy),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(GateError::InvalidParameter {
                    parameter: name,
                    value: v,
                });
            }
        }
        Ok(Transducer {
            width,
            length,
            delay,
            energy,
        })
    }

    /// The paper's assumption: 10 nm × 50 nm cells; 0.42 ns and 15 aJ
    /// per event (representative ME-cell figures).
    pub fn paper_default() -> Self {
        Transducer {
            width: 10.0 * NM,
            length: 50.0 * NM,
            delay: 0.42 * NS,
            energy: 15.0 * AJ,
        }
    }

    /// Footprint along the waveguide in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Footprint across the waveguide in metres.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Latency per event in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Energy per event in joules.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Footprint area in m².
    pub fn area(&self) -> f64 {
        self.width * self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_footprint() {
        let t = Transducer::paper_default();
        assert!((t.width() - 10.0 * NM).abs() < 1e-15);
        assert!((t.length() - 50.0 * NM).abs() < 1e-15);
        assert!((t.area() - 500.0 * NM * NM).abs() < 1e-30);
    }

    #[test]
    fn validation() {
        assert!(Transducer::new(0.0, 1e-9, 1e-9, 1e-18).is_err());
        assert!(Transducer::new(1e-9, -1.0, 1e-9, 1e-18).is_err());
        assert!(Transducer::new(1e-9, 1e-9, 0.0, 1e-18).is_err());
        assert!(Transducer::new(1e-9, 1e-9, 1e-9, f64::NAN).is_err());
        assert!(Transducer::new(1e-8, 5e-8, 4e-10, 1.5e-17).is_ok());
    }
}
