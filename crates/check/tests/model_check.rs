//! Model-checker integration tests.
//!
//! Run with the instrumentation on, in release (explorations are many
//! thousands of runs):
//!
//! ```text
//! RUSTFLAGS="--cfg mcheck" cargo test -p magnon-check --release
//! ```
//!
//! Without `--cfg mcheck` only the cfg-reporting test compiles — the
//! rest of this file needs the instrumented façade.

#[test]
fn enabled_reports_the_build_cfg() {
    assert_eq!(magnon_check::enabled(), cfg!(mcheck));
}

#[cfg(mcheck)]
mod mcheck_tests {
    use magnon_check::scenarios::{self, with_quiet_panics};
    use magnon_check::{explore, explore_bounded, replay, ExploreConfig, ReplayToken};

    fn config(seeds: std::ops::Range<u64>) -> ExploreConfig {
        ExploreConfig {
            seeds,
            preempt_percent: 25,
            step_limit: 200_000,
        }
    }

    /// The checker's reason to exist: a planted lost-update bug (racy
    /// load-then-store) must be FOUND within a modest seed budget. The
    /// run-to-block default schedule hides it; only real interleaving
    /// exploration exposes it.
    #[test]
    fn finds_the_planted_racy_counter_bug() {
        let report = with_quiet_panics(|| explore(scenarios::racy_counter, &config(0..200)));
        let failure = report
            .failure
            .expect("the planted racy-counter bug must be found within 200 seeds");
        assert!(
            failure.message.contains("lost update"),
            "the failure must be the planted assert, got: {}",
            failure.message
        );
    }

    /// A failure's replay token reproduces the exact interleaving: the
    /// rerendered trace is byte-identical and the schedule hash
    /// matches, run after run.
    #[test]
    fn failing_seed_replays_byte_identical() {
        let report = with_quiet_panics(|| explore(scenarios::racy_counter, &config(0..200)));
        let failure = report.failure.expect("planted bug found");
        for _ in 0..2 {
            let outcome =
                with_quiet_panics(|| replay(scenarios::racy_counter, &failure.token, 200_000));
            assert_eq!(
                outcome.trace.schedule_hash(),
                failure.schedule_hash,
                "replay must take the recorded schedule"
            );
            assert_eq!(
                outcome.trace.render(),
                failure.trace,
                "replay must reproduce the trace byte-for-byte"
            );
            assert!(
                outcome.root_panic.is_some(),
                "replaying the failing schedule must fail again"
            );
        }
    }

    /// The CI smoke scenario (2 shards × 2 waveguides × small batch):
    /// a broad seed sweep with zero invariant violations. CI drives
    /// the full ≥10,000-interleaving sweep through the binary; this
    /// keeps the test suite a faster regression net over the same
    /// invariants (ticket exactly-once, gauge never negative and
    /// drains to zero, clean shutdown).
    #[test]
    fn serve_smoke_sweep_is_clean() {
        let report = explore(scenarios::serve_exactly_once, &config(0..2_000));
        report.assert_clean("serve-exactly-once");
        assert_eq!(report.runs, 2_000);
        assert!(
            report.distinct_schedules >= 1_900,
            "near-every seed should land a distinct interleaving, got {}",
            report.distinct_schedules
        );
    }

    /// Regression sweep for the submit-path gauge race this PR fixed:
    /// `note_enqueued` used to run *after* `send`, so a worker could
    /// drain the job and decrement before the increment landed,
    /// dipping the raw gauge negative. The smoke scenario samples the
    /// raw gauge at every interleaving; with the old ordering this
    /// sweep fails within the first few hundred seeds.
    #[test]
    fn queue_gauge_ordering_regression() {
        let report = explore(scenarios::serve_exactly_once, &config(10_000..10_500));
        report.assert_clean("serve-exactly-once (gauge regression band)");
    }

    /// Regression sweep for the connection-reap defect the lock-order
    /// pass surfaced in `magnon_net::server::accept_loop`: finished
    /// handles were `join()`ed while the registry lock was held, so a
    /// connection mid-teardown serialized every accept behind it. The
    /// scenario drives the fixed reap-under-guard / join-outside shape
    /// (including a deliberately slow connection) through a pinned
    /// seed band; exactly-once joining and a drained registry must
    /// hold on every interleaving.
    #[test]
    fn net_reap_discipline_regression() {
        let report = explore(scenarios::net_reap_outside_lock, &config(20_000..20_500));
        report.assert_clean("net-reap-outside-lock (lock-discipline regression band)");
        assert_eq!(report.runs, 500);
    }

    /// Every registered scenario stays clean over a seed sweep — the
    /// standing gate for future concurrency PRs.
    #[test]
    fn all_scenarios_sweep_clean() {
        for &(name, body) in scenarios::all() {
            let report = with_quiet_panics(|| explore(body, &config(0..150)));
            report.assert_clean(name);
            assert_eq!(report.runs, 150, "{name} must run every seed");
        }
    }

    /// Bounded-preemption exhaustive mode on the smallest scenario:
    /// the low-preemption schedule space must be fully enumerated
    /// (the explorer terminates on its own, well under the run cap)
    /// with zero violations, and cover a nontrivial schedule count.
    #[test]
    fn bounded_exhaustive_timeout_scenario_is_clean() {
        let report = explore_bounded(scenarios::timed_out_ticket_redeems, 2, 200_000, 5_000);
        report.assert_clean("ticket-timeout-redeem (bounded)");
        assert!(
            report.runs > 50 && report.runs < 5_000,
            "2-preemption space should be enumerated exhaustively below the cap, got {} runs",
            report.runs
        );
    }

    /// Path tokens replay too: rerunning a bounded-mode decision path
    /// reproduces its schedule hash.
    #[test]
    fn path_tokens_replay_deterministically() {
        let token = ReplayToken::Path(vec![0, 0, 3, 1]);
        let a = replay(scenarios::timed_out_ticket_redeems, &token, 200_000);
        let b = replay(scenarios::timed_out_ticket_redeems, &token, 200_000);
        assert!(
            a.failure.is_none() && a.root_panic.is_none(),
            "scenario is clean"
        );
        assert_eq!(a.trace.schedule_hash(), b.trace.schedule_hash());
        assert_eq!(a.trace.render(), b.trace.render());
    }
}
