//! Bracketing root finders.
//!
//! Used to invert spin-wave dispersion relations `f(k) = f_target` when
//! no closed-form inverse exists (the Kalinikos–Slavin branch).

use crate::error::MathError;

/// Result of a successful root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Function value at `x` (residual).
    pub residual: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// # Errors
///
/// * [`MathError::InvalidBracket`] if `f(lo)` and `f(hi)` have the same
///   sign or the interval is degenerate.
/// * [`MathError::NoConvergence`] if `max_iter` is exhausted before the
///   bracket shrinks below `tol`.
///
/// # Examples
///
/// ```
/// use magnon_math::roots::bisect;
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root.x - 2.0f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, MathError> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(Root {
            x: lo,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fhi == 0.0 {
        return Ok(Root {
            x: hi,
            residual: 0.0,
            iterations: 0,
        });
    }
    if flo.signum() == fhi.signum() {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    for it in 1..=max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < tol {
            return Ok(Root {
                x: mid,
                residual: fmid,
                iterations: it,
            });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(MathError::NoConvergence {
        iterations: max_iter,
    })
}

/// Finds a root of `f` in `[lo, hi]` with Brent's method (inverse
/// quadratic interpolation with bisection fallback).
///
/// Converges superlinearly on smooth functions while retaining the
/// robustness of bisection.
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// # Examples
///
/// ```
/// use magnon_math::roots::brent;
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let root = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100)?;
/// assert!((root.x - 0.7390851332151607).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn brent<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, MathError> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;

    for it in 1..=max_iter {
        if fb.abs() < f64::EPSILON || (b - a).abs() < tol {
            return Ok(Root {
                x: b,
                residual: fb,
                iterations: it,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let cond_range = {
            let m = (3.0 * a + b) / 4.0;
            !((m < s && s < b) || (b < s && s < m))
        };
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_dflag = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond_tolm = mflag && (b - c).abs() < tol;
        let cond_told = !mflag && (c - d).abs() < tol;

        if cond_range || cond_mflag || cond_dflag || cond_tolm || cond_told {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(MathError::NoConvergence {
        iterations: max_iter,
    })
}

/// Expands `hi` geometrically from `lo` until `f` changes sign, then
/// returns the bracket. Useful for unbounded monotone functions such as
/// dispersion relations.
///
/// # Errors
///
/// Returns [`MathError::NoConvergence`] if no sign change is found
/// within `max_expansions` doublings.
pub fn expand_bracket<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    mut hi: f64,
    max_expansions: usize,
) -> Result<(f64, f64), MathError> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    let flo = f(lo);
    for i in 0..max_expansions {
        if f(hi).signum() != flo.signum() {
            return Ok((lo, hi));
        }
        hi = lo + (hi - lo) * 2.0;
        if i == max_expansions - 1 {
            break;
        }
    }
    Err(MathError::NoConvergence {
        iterations: max_expansions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(MathError::InvalidBracket { .. })
        ));
        assert!(matches!(
            bisect(|x| x, 1.0, 0.0, 1e-12, 100),
            Err(MathError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn bisect_iteration_budget() {
        assert!(matches!(
            bisect(|x| x - 0.3, 0.0, 1.0, 1e-300, 5),
            Err(MathError::NoConvergence { iterations: 5 })
        ));
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r.x - 0.739_085_133_215_160_7).abs() < 1e-12);
    }

    #[test]
    fn brent_faster_than_bisect() {
        let f = |x: f64| x.exp() - 2.0;
        let rb = brent(f, 0.0, 2.0, 1e-13, 200).unwrap();
        let ri = bisect(f, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((rb.x - 2.0f64.ln()).abs() < 1e-11);
        assert!(rb.iterations < ri.iterations);
    }

    #[test]
    fn brent_rejects_same_sign() {
        assert!(brent(|x| x * x + 1.0, -3.0, 3.0, 1e-12, 50).is_err());
    }

    #[test]
    fn brent_high_curvature() {
        // Root of a steep function.
        let r = brent(|x| (x * 50.0).tanh() - 0.5, 0.0, 1.0, 1e-14, 200).unwrap();
        let expected = 0.5f64.atanh() / 50.0;
        assert!((r.x - expected).abs() < 1e-10);
    }

    #[test]
    fn expand_bracket_finds_sign_change() {
        let (lo, hi) = expand_bracket(|x| x - 100.0, 0.0, 1.0, 20).unwrap();
        assert!(lo < 100.0 && hi > 100.0);
        let r = brent(|x| x - 100.0, lo, hi, 1e-12, 100).unwrap();
        assert!((r.x - 100.0).abs() < 1e-9);
    }

    #[test]
    fn expand_bracket_gives_up() {
        assert!(expand_bracket(|_| 1.0, 0.0, 1.0, 8).is_err());
    }
}
