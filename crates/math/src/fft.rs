//! Radix-2 Cooley–Tukey FFT.
//!
//! The spectra in the paper (Fig. 3) are obtained by Fourier-transforming
//! the simulated `Mx(t)` detector signal; this module provides the
//! transform. Only power-of-two lengths are supported — callers pad with
//! [`next_power_of_two_len`] / zero-extension, which
//! [`crate::spectrum::TimeSeries`] does automatically.

use crate::complex::Complex64;
use crate::error::MathError;

/// Returns the smallest power of two that is `>= n` (and at least 1).
///
/// # Examples
///
/// ```
/// use magnon_math::fft::next_power_of_two_len;
/// assert_eq!(next_power_of_two_len(1000), 1024);
/// assert_eq!(next_power_of_two_len(1024), 1024);
/// assert_eq!(next_power_of_two_len(0), 1);
/// ```
pub fn next_power_of_two_len(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

fn fft_core(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// In-place forward FFT (engineering sign convention, `X_k = Σ x_n e^{-2πi k n / N}`).
///
/// # Errors
///
/// Returns [`MathError::NotPowerOfTwo`] if `data.len()` is not a power of
/// two, and [`MathError::EmptyInput`] for an empty buffer.
///
/// # Examples
///
/// ```
/// use magnon_math::{fft, Complex64};
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// // The FFT of an impulse is flat.
/// let mut data = vec![Complex64::ZERO; 8];
/// data[0] = Complex64::ONE;
/// fft::fft_in_place(&mut data)?;
/// for bin in &data {
///     assert!((bin.re - 1.0).abs() < 1e-12 && bin.im.abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), MathError> {
    validate(data.len())?;
    fft_core(data, false);
    Ok(())
}

/// In-place inverse FFT, normalised by `1/N` so that
/// `ifft(fft(x)) == x`.
///
/// # Errors
///
/// Same conditions as [`fft_in_place`].
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), MathError> {
    validate(data.len())?;
    fft_core(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
    Ok(())
}

fn validate(len: usize) -> Result<(), MathError> {
    if len == 0 {
        return Err(MathError::EmptyInput);
    }
    if !len.is_power_of_two() {
        return Err(MathError::NotPowerOfTwo { len });
    }
    Ok(())
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum (length = padded length).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] when `signal` is empty.
///
/// # Examples
///
/// ```
/// use magnon_math::fft::fft_real;
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let signal: Vec<f64> = (0..64)
///     .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / 64.0).cos())
///     .collect();
/// let spec = fft_real(&signal)?;
/// // Energy concentrates in bins 8 and 64-8.
/// assert!(spec[8].abs() > 30.0);
/// assert!(spec[9].abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex64>, MathError> {
    if signal.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let n = next_power_of_two_len(signal.len());
    let mut data = Vec::with_capacity(n);
    data.extend(signal.iter().map(|&x| Complex64::new(x, 0.0)));
    data.resize(n, Complex64::ZERO);
    fft_in_place(&mut data)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| x[j] * Complex64::cis(-2.0 * PI * (k * j) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex64::ZERO; 12];
        assert_eq!(
            fft_in_place(&mut data),
            Err(MathError::NotPowerOfTwo { len: 12 })
        );
    }

    #[test]
    fn rejects_empty() {
        let mut data: Vec<Complex64> = vec![];
        assert_eq!(fft_in_place(&mut data), Err(MathError::EmptyInput));
        assert_eq!(fft_real(&[]).unwrap_err(), MathError::EmptyInput);
    }

    #[test]
    fn single_element_is_identity() {
        let mut data = vec![Complex64::new(3.0, -1.0)];
        fft_in_place(&mut data).unwrap();
        assert_eq!(data[0], Complex64::new(3.0, -1.0));
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let expected = naive_dft(&x);
        let mut got = x.clone();
        fft_in_place(&mut got).unwrap();
        for (g, e) in got.iter().zip(&expected) {
            assert!((*g - *e).abs() < 1e-9, "fft differs from dft");
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut data = x.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let x: Vec<Complex64> = (0..256)
            .map(|i| Complex64::new((i as f64 * 0.21).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        fft_in_place(&mut spec).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 512;
        let bin = 37;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft_real(&signal).unwrap();
        // sin -> ±i N/2 at bins k and N-k
        assert!((spec[bin].abs() - n as f64 / 2.0).abs() < 1e-6);
        assert!((spec[n - bin].abs() - n as f64 / 2.0).abs() < 1e-6);
        for (k, z) in spec.iter().enumerate() {
            if k != bin && k != n - bin {
                assert!(z.abs() < 1e-6, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn fft_is_linear() {
        let a: Vec<Complex64> = (0..64).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_in_place(&mut fa).unwrap();
        fft_in_place(&mut fb).unwrap();
        fft_in_place(&mut fab).unwrap();
        for i in 0..64 {
            assert!((fab[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let signal: Vec<f64> = (0..128).map(|i| (i as f64 * 0.17).sin() + 0.3).collect();
        let spec = fft_real(&signal).unwrap();
        let n = spec.len();
        for k in 1..n / 2 {
            let diff = spec[k] - spec[n - k].conj();
            assert!(diff.abs() < 1e-9);
        }
    }

    #[test]
    fn zero_padding_applied_for_non_power_of_two_real_input() {
        let signal = vec![1.0; 100];
        let spec = fft_real(&signal).unwrap();
        assert_eq!(spec.len(), 128);
        // DC bin equals the sum of samples.
        assert!((spec[0].re - 100.0).abs() < 1e-9);
    }
}
