//! High-level simulation assembly.
//!
//! [`SimulationBuilder`] wires a [`Waveguide`] into a ready-to-run LLG
//! simulation: it sizes the mesh, installs the exchange + anisotropy +
//! local-demag field stack that realises the waveguide's
//! [`ExchangeDispersion`](magnon_physics::dispersion::ExchangeDispersion),
//! applies absorbing boundaries, and runs antennas and probes to produce
//! analysable time series.

use crate::absorber::Absorber;
use crate::error::SimError;
use crate::field::{Exchange, LocalDemag, UniaxialAnisotropy};
use crate::mesh::Mesh;
use crate::probe::{Probe, Recorder};
use crate::solver::LlgSolver;
use crate::source::Antenna;
use crate::stability;
use magnon_math::spectrum::TimeSeries;
use magnon_math::Vec3;
use magnon_physics::waveguide::Waveguide;

/// Builder for waveguide simulations.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug)]
pub struct SimulationBuilder {
    waveguide: Waveguide,
    length: f64,
    cell_size: f64,
    duration: f64,
    time_step: Option<f64>,
    sample_interval: usize,
    absorber: Option<Absorber>,
    antennas: Vec<Antenna>,
    probes: Vec<Probe>,
    rows: usize,
}

impl SimulationBuilder {
    /// Starts a simulation of `length` metres of `waveguide`.
    ///
    /// Defaults: 1 nm cells, 1 ns duration, automatic stable time step,
    /// sampling every 4 steps, 10% of the length as absorbers at each
    /// end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive length.
    pub fn new(waveguide: Waveguide, length: f64) -> Result<Self, SimError> {
        if !(length.is_finite() && length > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "length",
                value: length,
            });
        }
        Ok(SimulationBuilder {
            waveguide,
            length,
            cell_size: 1.0e-9,
            duration: 1.0e-9,
            time_step: None,
            sample_interval: 4,
            absorber: Some(Absorber::new(length * 0.1, 0.5)?),
            antennas: Vec::new(),
            probes: Vec::new(),
            rows: 1,
        })
    }

    /// Resolves the waveguide width with `rows` cells (default 1, i.e.
    /// a 1D simulation; larger values enable transverse dynamics for
    /// width studies).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero rows.
    pub fn rows(mut self, rows: usize) -> Result<Self, SimError> {
        if rows == 0 {
            return Err(SimError::InvalidParameter {
                parameter: "rows",
                value: 0.0,
            });
        }
        self.rows = rows;
        Ok(self)
    }

    /// Sets the cell size along the guide (default 1 nm).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive value.
    pub fn cell_size(mut self, dx: f64) -> Result<Self, SimError> {
        if !(dx.is_finite() && dx > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "cell_size",
                value: dx,
            });
        }
        self.cell_size = dx;
        Ok(self)
    }

    /// Sets the simulated duration (default 1 ns).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive value.
    pub fn duration(mut self, duration: f64) -> Result<Self, SimError> {
        if !(duration.is_finite() && duration > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "duration",
                value: duration,
            });
        }
        self.duration = duration;
        Ok(self)
    }

    /// Overrides the automatic time step.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive value.
    /// Stability is checked at [`SimulationBuilder::run`].
    pub fn time_step(mut self, dt: f64) -> Result<Self, SimError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "time_step",
                value: dt,
            });
        }
        self.time_step = Some(dt);
        Ok(self)
    }

    /// Sets the probe sampling interval in solver steps (default 4).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero.
    pub fn sample_interval(mut self, interval: usize) -> Result<Self, SimError> {
        if interval == 0 {
            return Err(SimError::InvalidParameter {
                parameter: "sample_interval",
                value: 0.0,
            });
        }
        self.sample_interval = interval;
        Ok(self)
    }

    /// Replaces the default absorbers (pass `None` to disable).
    pub fn absorber(mut self, absorber: Option<Absorber>) -> Self {
        self.absorber = absorber;
        self
    }

    /// Adds a microwave source.
    pub fn add_antenna(mut self, antenna: Antenna) -> Self {
        self.antennas.push(antenna);
        self
    }

    /// Adds a detector probe.
    pub fn add_probe(mut self, probe: Probe) -> Self {
        self.probes.push(probe);
        self
    }

    fn mesh(&self) -> Result<Mesh, SimError> {
        if self.rows == 1 {
            Mesh::line(
                self.length,
                self.cell_size,
                self.waveguide.width(),
                self.waveguide.thickness(),
            )
        } else {
            Mesh::plane(
                self.length,
                self.waveguide.width(),
                self.cell_size,
                self.waveguide.width() / self.rows as f64,
                self.waveguide.thickness(),
            )
        }
    }

    /// Builds the solver (without running). Exposed for callers that
    /// need custom stepping; most users call [`SimulationBuilder::run`].
    ///
    /// # Errors
    ///
    /// Propagates mesh, physics and region-validation errors.
    pub fn build_solver(&self) -> Result<LlgSolver, SimError> {
        let mesh = self.mesh()?;
        let material = *self.waveguide.material();
        // Fail early when the waveguide cannot host FVMSW-like waves.
        let nz = self.waveguide.demag_factor()?;
        self.waveguide.internal_field()?;

        let mut solver = LlgSolver::new(mesh, material)?;
        solver.add_field_term(Box::new(Exchange::new(&material)));
        solver.add_field_term(Box::new(UniaxialAnisotropy::perpendicular(&material)?));
        solver.add_field_term(Box::new(LocalDemag::out_of_plane(&material, nz)?));
        for antenna in &self.antennas {
            antenna.check_fits(solver.mesh())?;
            solver.add_field_term(Box::new(*antenna));
        }
        if let Some(absorber) = &self.absorber {
            let profile = absorber.damping_profile_2d(solver.mesh(), material.gilbert_damping())?;
            solver.set_damping_profile(profile)?;
        }
        solver.set_uniform_magnetization(Vec3::Z);
        Ok(solver)
    }

    /// The time step that [`SimulationBuilder::run`] will use.
    ///
    /// # Errors
    ///
    /// Propagates mesh construction errors.
    pub fn effective_time_step(&self) -> Result<f64, SimError> {
        let mesh = self.mesh()?;
        Ok(self
            .time_step
            .unwrap_or_else(|| stability::suggested_time_step(&mesh, self.waveguide.material())))
    }

    /// Builds and runs the simulation, returning the recorded probe
    /// series.
    ///
    /// # Errors
    ///
    /// * [`SimError::NothingToDo`] when no probes were added.
    /// * Propagates solver and recording errors.
    pub fn run(self) -> Result<SimOutput, SimError> {
        if self.probes.is_empty() {
            return Err(SimError::NothingToDo);
        }
        let dt = self.effective_time_step()?;
        let mut solver = self.build_solver()?;
        let mut recorder = Recorder::new(self.probes.clone(), self.sample_interval, dt)?;
        let steps = solver.run_recorded(self.duration, dt, &mut recorder)?;
        Ok(SimOutput {
            series: recorder.into_series()?,
            final_magnetization: solver.magnetization().to_vec(),
            steps,
            time_step: dt,
        })
    }
}

/// Result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    series: Vec<TimeSeries>,
    final_magnetization: Vec<Vec3>,
    steps: usize,
    time_step: f64,
}

impl SimOutput {
    /// Recorded probe series, in probe insertion order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Consumes the output, returning the probe series.
    pub fn into_series(self) -> Vec<TimeSeries> {
        self.series
    }

    /// Final magnetization state.
    pub fn final_magnetization(&self) -> &[Vec3] {
        &self.final_magnetization
    }

    /// Number of solver steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The time step used, in seconds.
    pub fn time_step(&self) -> f64 {
        self.time_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::{GHZ, NM, NS};

    #[test]
    fn builder_validation() {
        let g = Waveguide::paper_default().unwrap();
        assert!(SimulationBuilder::new(g, 0.0).is_err());
        let b = SimulationBuilder::new(g, 400.0 * NM).unwrap();
        assert!(b.cell_size(0.0).is_err());
        let b = SimulationBuilder::new(g, 400.0 * NM).unwrap();
        assert!(b.duration(-1.0).is_err());
        let b = SimulationBuilder::new(g, 400.0 * NM).unwrap();
        assert!(b.sample_interval(0).is_err());
    }

    #[test]
    fn run_requires_probes() {
        let g = Waveguide::paper_default().unwrap();
        let b = SimulationBuilder::new(g, 400.0 * NM).unwrap();
        assert!(matches!(b.run(), Err(SimError::NothingToDo)));
    }

    #[test]
    fn antenna_must_fit() {
        let g = Waveguide::paper_default().unwrap();
        let sim = SimulationBuilder::new(g, 200.0 * NM)
            .unwrap()
            .add_antenna(Antenna::new(300.0 * NM, 10.0 * NM, 20.0 * GHZ, 1e4, 0.0).unwrap())
            .add_probe(Probe::point(100.0 * NM));
        assert!(matches!(sim.run(), Err(SimError::RegionOutOfBounds { .. })));
    }

    #[test]
    fn short_run_produces_series() {
        let g = Waveguide::paper_default().unwrap();
        let out = SimulationBuilder::new(g, 300.0 * NM)
            .unwrap()
            .cell_size(2.0 * NM)
            .unwrap()
            .add_antenna(Antenna::new(60.0 * NM, 10.0 * NM, 20.0 * GHZ, 2.0e4, 0.0).unwrap())
            .add_probe(Probe::point(150.0 * NM))
            .add_probe(Probe::point(200.0 * NM))
            .duration(0.05 * NS)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.series().len(), 2);
        assert!(out.steps() > 100);
        assert!(out.time_step() > 0.0);
        assert_eq!(out.final_magnetization().len(), 150);
        // Both probes recorded the same number of samples.
        assert_eq!(out.series()[0].len(), out.series()[1].len());
    }

    #[test]
    fn effective_time_step_defaults_to_stability() {
        let g = Waveguide::paper_default().unwrap();
        let b = SimulationBuilder::new(g, 300.0 * NM)
            .unwrap()
            .cell_size(2.0 * NM)
            .unwrap();
        let auto = b.effective_time_step().unwrap();
        assert!(auto > 0.0 && auto < 1e-12);
        let b = SimulationBuilder::new(g, 300.0 * NM)
            .unwrap()
            .time_step(1.23e-14)
            .unwrap();
        assert!((b.effective_time_step().unwrap() - 1.23e-14).abs() < 1e-28);
    }

    #[test]
    fn solver_carries_field_stack() {
        let g = Waveguide::paper_default().unwrap();
        let solver = SimulationBuilder::new(g, 300.0 * NM)
            .unwrap()
            .build_solver()
            .unwrap();
        let names = solver.field_term_names();
        assert_eq!(
            names,
            vec!["exchange", "uniaxial_anisotropy", "local_demag"]
        );
    }
}
