//! Regular finite-difference meshes.

use crate::error::SimError;

/// A regular 1D or 2D mesh of cuboid cells.
///
/// The x axis is the propagation direction of the waveguide; the y axis
/// spans its width (single cell for 1D simulations); z is the film
/// normal, resolved by a single cell of height `thickness`.
///
/// # Examples
///
/// ```
/// use magnon_micromag::mesh::Mesh;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(1.0e-6, 2.0e-9, 50.0e-9, 1.0e-9)?;
/// assert_eq!(mesh.nx(), 500);
/// assert_eq!(mesh.ny(), 1);
/// assert_eq!(mesh.cell_count(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    thickness: f64,
}

impl Mesh {
    /// Creates a 1D mesh (a single row of cells along x) covering
    /// `length` metres with cells of size `dx`; the cross-section is
    /// `width` × `thickness`.
    ///
    /// The cell count is `round(length / dx)`, with a minimum of 2.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive
    /// dimensions or when `dx > length / 2`.
    pub fn line(length: f64, dx: f64, width: f64, thickness: f64) -> Result<Self, SimError> {
        for (name, v) in [
            ("length", length),
            ("dx", dx),
            ("width", width),
            ("thickness", thickness),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SimError::InvalidParameter {
                    parameter: name,
                    value: v,
                });
            }
        }
        if dx > length / 2.0 {
            return Err(SimError::InvalidParameter {
                parameter: "dx",
                value: dx,
            });
        }
        let nx = (length / dx).round().max(2.0) as usize;
        Ok(Mesh {
            nx,
            ny: 1,
            dx,
            dy: width,
            thickness,
        })
    }

    /// Creates a 2D mesh covering `length` × `width` with cells of size
    /// `dx` × `dy`; the film is one cell of `thickness` high.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive
    /// dimensions or degenerate cell counts.
    pub fn plane(
        length: f64,
        width: f64,
        dx: f64,
        dy: f64,
        thickness: f64,
    ) -> Result<Self, SimError> {
        for (name, v) in [
            ("length", length),
            ("width", width),
            ("dx", dx),
            ("dy", dy),
            ("thickness", thickness),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SimError::InvalidParameter {
                    parameter: name,
                    value: v,
                });
            }
        }
        if dx > length / 2.0 {
            return Err(SimError::InvalidParameter {
                parameter: "dx",
                value: dx,
            });
        }
        if dy > width {
            return Err(SimError::InvalidParameter {
                parameter: "dy",
                value: dy,
            });
        }
        let nx = (length / dx).round().max(2.0) as usize;
        let ny = (width / dy).round().max(1.0) as usize;
        Ok(Mesh {
            nx,
            ny,
            dx,
            dy,
            thickness,
        })
    }

    /// Number of cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total cell count.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Cell size along x in metres.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Cell size along y in metres.
    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Film thickness (cell size along z) in metres.
    pub fn thickness(&self) -> f64 {
        self.thickness
    }

    /// Physical length along x in metres.
    pub fn length(&self) -> f64 {
        self.nx as f64 * self.dx
    }

    /// Physical width along y in metres.
    pub fn width(&self) -> f64 {
        self.ny as f64 * self.dy
    }

    /// Volume of one cell in m³.
    pub fn cell_volume(&self) -> f64 {
        self.dx * self.dy * self.thickness
    }

    /// Flat index of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= nx` or `j >= ny`.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        assert!(i < self.nx && j < self.ny, "cell index out of bounds");
        j * self.nx + i
    }

    /// `(i, j)` coordinates of a flat index.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= cell_count()`.
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.cell_count(), "flat index out of bounds");
        (idx % self.nx, idx / self.nx)
    }

    /// x coordinate of the centre of column `i`, in metres.
    #[inline]
    pub fn x_at(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.dx
    }

    /// Column index containing the coordinate `x`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegionOutOfBounds`] when `x` lies outside the
    /// mesh.
    pub fn column_at(&self, x: f64) -> Result<usize, SimError> {
        if !(x.is_finite() && x >= 0.0 && x < self.length()) {
            return Err(SimError::RegionOutOfBounds {
                what: "coordinate",
                requested: x,
                available: self.length(),
            });
        }
        // Nudge coordinates sitting on a cell edge (within fp noise)
        // into the upper cell, so 100 nm / 2 nm lands in column 50.
        Ok(((x / self.dx * (1.0 + 1e-12)) as usize).min(self.nx - 1))
    }

    /// Range of column indices covering `[x_start, x_start + extent)`.
    ///
    /// The range always contains at least one column.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegionOutOfBounds`] when the interval does
    /// not fit inside the mesh.
    pub fn columns_in(
        &self,
        x_start: f64,
        extent: f64,
    ) -> Result<std::ops::Range<usize>, SimError> {
        if !(extent.is_finite() && extent >= 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "extent",
                value: extent,
            });
        }
        let first = self.column_at(x_start)?;
        let x_end = x_start + extent;
        if x_end > self.length() + 1e-15 {
            return Err(SimError::RegionOutOfBounds {
                what: "region end",
                requested: x_end,
                available: self.length(),
            });
        }
        // Guard against floating-point spill past an exact cell edge
        // (e.g. 110 nm / 2 nm evaluating to 55.000000000000007).
        let last_f = (x_end / self.dx * (1.0 - 1e-12)).ceil();
        let last = (last_f as usize).clamp(first + 1, self.nx);
        Ok(first..last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::line(1.0e-6, 2.0e-9, 50.0e-9, 1.0e-9).unwrap()
    }

    #[test]
    fn line_construction() {
        let m = mesh();
        assert_eq!(m.nx(), 500);
        assert_eq!(m.ny(), 1);
        assert_eq!(m.cell_count(), 500);
        assert!((m.length() - 1.0e-6).abs() < 1e-18);
        assert!((m.cell_volume() - 2e-9 * 50e-9 * 1e-9).abs() < 1e-40);
    }

    #[test]
    fn plane_construction() {
        let m = Mesh::plane(200e-9, 50e-9, 2e-9, 5e-9, 1e-9).unwrap();
        assert_eq!(m.nx(), 100);
        assert_eq!(m.ny(), 10);
        assert_eq!(m.cell_count(), 1000);
        assert!((m.width() - 50e-9).abs() < 1e-18);
    }

    #[test]
    fn validation() {
        assert!(Mesh::line(0.0, 1e-9, 1e-9, 1e-9).is_err());
        assert!(Mesh::line(1e-6, -1e-9, 1e-9, 1e-9).is_err());
        assert!(Mesh::line(1e-6, 0.9e-6, 1e-9, 1e-9).is_err());
        assert!(Mesh::plane(1e-6, 50e-9, 2e-9, 60e-9, 1e-9).is_err());
    }

    #[test]
    fn index_coords_roundtrip() {
        let m = Mesh::plane(100e-9, 20e-9, 2e-9, 2e-9, 1e-9).unwrap();
        for idx in [0, 1, 49, 50, 499] {
            let (i, j) = m.coords(idx);
            assert_eq!(m.index(i, j), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_bounds_checked() {
        mesh().index(500, 0);
    }

    #[test]
    fn positions_are_cell_centres() {
        let m = mesh();
        assert!((m.x_at(0) - 1e-9).abs() < 1e-18);
        assert!((m.x_at(1) - 3e-9).abs() < 1e-18);
    }

    #[test]
    fn column_lookup() {
        let m = mesh();
        assert_eq!(m.column_at(0.0).unwrap(), 0);
        assert_eq!(m.column_at(3.9e-9).unwrap(), 1);
        assert!(m.column_at(2e-6).is_err());
        assert!(m.column_at(-1e-9).is_err());
    }

    #[test]
    fn column_ranges() {
        let m = mesh();
        // A 10 nm region starting at 100 nm covers 5 cells of 2 nm.
        let r = m.columns_in(100e-9, 10e-9).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.start, 50);
        // Zero extent still selects one column.
        let r = m.columns_in(100e-9, 0.0).unwrap();
        assert_eq!(r.len(), 1);
        // Region escaping the mesh is rejected.
        assert!(m.columns_in(990e-9, 100e-9).is_err());
    }
}
