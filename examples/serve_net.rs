//! Network serving end to end in one process: a TCP server over the
//! scheduler on a loopback socket, four concurrent clients streaming a
//! mixed adder/ALU workload built from remote MAJ-3/XOR-2 calls, and a
//! pipelined burst phase to show wire-level coalescing.
//!
//! ```text
//! cargo run --release --example serve_net
//! ```

use spinwave_parallel::core::backend::BackendChoice;
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::net::{NetClient, NetServer, NetServerConfig, RemoteGateId};
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{AdaptiveConfig, SchedulerBuilder, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Channel count of the served gates = lanes per data-parallel op.
const WIDTH: usize = 8;
const CLIENTS: usize = 4;
const ROUNDS: usize = 8;

/// Bit-plane packing: word `bit` carries bit `bit` of every lane value,
/// lane `l` on channel `l` — the paper's data-parallel layout, built
/// client-side from plain integers.
fn bit_plane(vals: &[u64], bit: usize) -> Word {
    let mut word = Word::zeros(vals.len()).expect("lane count within 1..=64");
    for (lane, &v) in vals.iter().enumerate() {
        word = word
            .with_bit(lane, (v >> bit) & 1 == 1)
            .expect("lane in range");
    }
    word
}

/// One client's workload: WIDTH-lane ripple-carry additions and ALU
/// ops where every bit-plane op is a remote gate call.
fn run_client(
    addr: std::net::SocketAddr,
    seed: u64,
) -> Result<(u64, spinwave_parallel::net::NetClientStats), Box<dyn std::error::Error + Send + Sync>>
{
    let mut client = NetClient::connect(addr)?;
    // Spread the clients over both served waveguides.
    let wg = seed % 2;
    let maj3 = client
        .gate(&format!("maj3_w{WIDTH}_wg{wg}"))
        .expect("advertised");
    let xor2 = client
        .gate(&format!("xor2_w{WIDTH}_wg{wg}"))
        .expect("advertised");
    let mut gate_calls = 0u64;
    let zeros = Word::zeros(WIDTH).unwrap();
    let ones = Word::ones(WIDTH).unwrap();

    for round in 0..ROUNDS as u64 {
        let a_vals: Vec<u64> = (0..WIDTH as u64)
            .map(|l| (seed * 89 + round * 37 + l * 11) % 256)
            .collect();
        let b_vals: Vec<u64> = (0..WIDTH as u64)
            .map(|l| (seed * 53 + round * 59 + l * 23) % 256)
            .collect();

        // Ripple-carry adder: every bit-plane MAJ/XOR is a remote call
        // (the carry chain serializes, so these round-trips measure
        // request latency, not throughput).
        let mut carry = zeros;
        let mut sum_planes = Vec::with_capacity(8);
        for bit in 0..8 {
            let a = bit_plane(&a_vals, bit);
            let b = bit_plane(&b_vals, bit);
            gate_calls += 3;
            let half = client.eval(xor2, &[a, b])?;
            sum_planes.push(client.eval(xor2, &[half, carry])?);
            carry = client.eval(maj3, &[a, b, carry])?;
        }
        for (lane, (&av, &bv)) in a_vals.iter().zip(&b_vals).enumerate() {
            let mut sum = 0u64;
            for (bit, plane) in sum_planes.iter().enumerate() {
                sum |= (plane.bit(lane).unwrap() as u64) << bit;
            }
            assert_eq!(sum, (av + bv) & 0xFF, "remote adder lane {lane} diverged");
        }

        // ALU ops on the same operands: AND = MAJ(a,b,0), OR =
        // MAJ(a,b,1), XOR directly — verified against plain integers.
        for bit in 0..8 {
            let a = bit_plane(&a_vals, bit);
            let b = bit_plane(&b_vals, bit);
            gate_calls += 3;
            let and = client.eval(maj3, &[a, b, zeros])?;
            let or = client.eval(maj3, &[a, b, ones])?;
            let xor = client.eval(xor2, &[a, b])?;
            for lane in 0..WIDTH {
                let (av, bv) = (a_vals[lane] >> bit & 1, b_vals[lane] >> bit & 1);
                assert_eq!(and.bit(lane).unwrap() as u64, av & bv);
                assert_eq!(or.bit(lane).unwrap() as u64, av | bv);
                assert_eq!(xor.bit(lane).unwrap() as u64, av ^ bv);
            }
        }
    }

    // Burst phase: a pipelined raw stream (submit everything, then
    // redeem) — this is where wire traffic coalesces server-side.
    let burst: Vec<(RemoteGateId, Vec<Word>)> = (0..256u64)
        .map(|i| {
            if i % 2 == 0 {
                (
                    maj3,
                    vec![
                        Word::from_u8((seed * 13 + i * 37) as u8),
                        Word::from_u8((seed * 17 + i * 59) as u8),
                        Word::from_u8((seed * 19 + i * 83) as u8),
                    ],
                )
            } else {
                (
                    xor2,
                    vec![
                        Word::from_u8((seed * 23 + i * 41) as u8),
                        Word::from_u8((seed * 29 + i * 67) as u8),
                    ],
                )
            }
        })
        .collect();
    let outputs = client.eval_many(&burst)?;
    gate_calls += outputs.len() as u64;
    Ok((gate_calls, client.stats()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: 256,
        linger: Duration::from_micros(100),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig::default(),
    });
    for wg in [0u64, 1] {
        builder.register_circuit_gates(
            Waveguide::paper_default()?,
            WaveguideId(wg),
            WIDTH,
            BackendChoice::Cached,
        )?;
    }
    let scheduler = Arc::new(builder.build()?);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&scheduler),
        NetServerConfig::default(),
    )?;
    let addr = server.local_addr();
    println!(
        "serving {} gates on {} shards over tcp://{addr}",
        scheduler.gate_count(),
        scheduler.worker_count(),
    );

    let start = Instant::now();
    let per_client: Vec<(u64, spinwave_parallel::net::NetClientStats)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS as u64)
                .map(|seed| scope.spawn(move || run_client(addr, seed).expect("client stream")))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
    let elapsed = start.elapsed();

    let total_calls: u64 = per_client.iter().map(|(calls, _)| calls).sum();
    let total_retries: u64 = per_client.iter().map(|(_, s)| s.retries).sum();
    println!(
        "{CLIENTS} concurrent clients: {total_calls} remote gate calls in {elapsed:?} \
         ({:.0} req/s over loopback; adder carry chains serialize, bursts pipeline)",
        total_calls as f64 / elapsed.as_secs_f64(),
    );
    let net_stats = server.stats();
    println!(
        "server: {} submits, {} responses, {} retry-afters (client retries: {total_retries}), \
         {} request errors, {} timeouts",
        net_stats.submits,
        net_stats.responses,
        net_stats.retry_afters,
        net_stats.request_errors,
        net_stats.timeouts,
    );
    let sched_stats = scheduler.stats();
    println!(
        "scheduler: {} drain cycles, mean {:.1} requests/drain, max {}, {} cross-gate passes, \
         {} fused",
        sched_stats.drain_passes,
        sched_stats.mean_drain(),
        sched_stats.max_drain,
        sched_stats.cross_gate_passes,
        sched_stats.fused_requests,
    );

    server.shutdown();
    let scheduler = Arc::try_unwrap(scheduler).expect("all client handles released");
    let report = scheduler.shutdown()?;
    println!(
        "shutdown: {} requests served end-to-end, {} failed",
        report.stats.completed, report.stats.failed
    );
    assert_eq!(report.stats.completed, net_stats.responses);
    Ok(())
}
