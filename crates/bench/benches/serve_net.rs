//! NET bench: loopback TCP serving vs the in-process serving baseline.
//!
//! Same load shape as `serve_throughput.rs` (256 requests round-robined
//! over four same-design gates on four distinct waveguides, cached
//! backend) so the numbers compare directly against the PR 2/PR 3
//! baselines. Three modes per width:
//!
//! * `inproc_coalesced_256` — submit-all-then-wait straight on the
//!   scheduler (the no-wire baseline this bench is measuring against);
//! * `loopback_pipelined_256` — the same 256 requests through a
//!   [`NetClient`]: one buffered flush of submit frames, then
//!   tag-matched waits, so the wire cost is framing + two socket
//!   copies, amortized across the batch;
//! * `loopback_sync_x64` — strictly serial submit → wait round-trips
//!   (64 of them): per-request wire latency with no pipelining to hide
//!   it.
//!
//! Standing caveat: the container is 1-core, so server reader/writer
//! threads and scheduler workers time-slice one CPU; re-baseline on a
//! multi-core host before citing absolute throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_bench::random_operand_sets;
use magnon_core::backend::BackendChoice;
use magnon_core::gate::{ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_core::word::Word;
use magnon_math::constants::GHZ;
use magnon_net::{NetClient, NetServer, NetServerConfig, RemoteGateId};
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{AdaptiveConfig, GateId, Scheduler, SchedulerBuilder, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const BATCH: usize = 256;
const SYNC_BATCH: usize = 64;
const WAVEGUIDES: u64 = 4;

fn gate_with_width(n: usize, waveguide: WaveguideId) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().expect("waveguide"))
        .channels(n)
        .inputs(3)
        .base_frequency(10.0 * GHZ)
        .frequency_step(4.0 * GHZ)
        .on_waveguide(waveguide)
        .build()
        .expect("gate")
}

fn scheduler_for(n: usize) -> (Arc<Scheduler>, Vec<GateId>) {
    // Static policies, 2 workers: the serve_throughput comparison
    // configuration.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: BATCH,
        linger: Duration::from_micros(100),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(),
    });
    let ids = (0..WAVEGUIDES)
        .map(|wg| {
            builder
                .register(
                    format!("maj3_wg{wg}"),
                    gate_with_width(n, WaveguideId(wg)),
                    BackendChoice::Cached,
                )
                .expect("register")
        })
        .collect();
    (Arc::new(builder.build().expect("scheduler")), ids)
}

fn bench_net(c: &mut Criterion) {
    for n in [8usize, 16] {
        let gate = gate_with_width(n, WaveguideId(0));
        let sets = random_operand_sets(&gate, BATCH).expect("operand sets");
        let mut group = c.benchmark_group(format!("serve_net_w{n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((BATCH * n) as u64));

        let (scheduler, ids) = scheduler_for(n);
        let routed: Vec<(GateId, _)> = sets
            .iter()
            .enumerate()
            .map(|(i, set)| (ids[i % ids.len()], set.clone()))
            .collect();
        scheduler.evaluate_many(&routed).expect("warm the LUTs");

        // Baseline: the same load with no wire in the way.
        group.bench_function("inproc_coalesced_256", |b| {
            b.iter(|| black_box(scheduler.evaluate_many(black_box(&routed)).expect("serve")))
        });

        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&scheduler),
            NetServerConfig::default(),
        )
        .expect("bind");
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        let remote: Vec<(RemoteGateId, Vec<Word>)> = sets
            .iter()
            .enumerate()
            .map(|(i, set)| {
                (
                    RemoteGateId((i % WAVEGUIDES as usize) as u32),
                    set.words().to_vec(),
                )
            })
            .collect();

        group.bench_function("loopback_pipelined_256", |b| {
            b.iter(|| black_box(client.eval_many(black_box(&remote)).expect("serve")))
        });

        group.throughput(Throughput::Elements((SYNC_BATCH * n) as u64));
        group.bench_function(format!("loopback_sync_x{SYNC_BATCH}"), |b| {
            b.iter(|| {
                for (id, words) in remote.iter().take(SYNC_BATCH) {
                    black_box(client.eval(*id, black_box(words)).expect("round-trip"));
                }
            })
        });

        let net_stats = server.stats();
        println!(
            "  [w{n}] wire: {} submits, {} retry-afters, {} timeouts; client retries {}",
            net_stats.submits,
            net_stats.retry_afters,
            net_stats.timeouts,
            client.stats().retries,
        );
        drop(client);
        server.shutdown();
        Arc::try_unwrap(scheduler)
            .expect("sole owner")
            .shutdown()
            .expect("scheduler shutdown");
        group.finish();
    }
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
