//! Bit-sliced batch kernel smoke: warm, cold and ragged batches
//! through the word-parallel LUT path, checked against the analytic
//! engine set-for-set.
//!
//! A warmed `Cached` session answers a 256-set byte-majority batch
//! with pure dense-LUT lane ops (zero misses); a cold session resolves
//! its combos mid-batch through the analytic fallback and densifies;
//! a 199-set batch exercises the ragged final block (199 % 64 = 7
//! lanes). Any word mismatch panics:
//!
//! ```text
//! cargo run --release --example sliced_batch
//! ```

use spinwave_parallel::core::backend::{BackendChoice, OperandSet};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::waveguide::Waveguide;

fn batch(len: usize) -> Vec<OperandSet> {
    (0..len as u64)
        .map(|s| {
            OperandSet::new(vec![
                Word::from_u8((s.wrapping_mul(37) ^ (s >> 3)) as u8),
                Word::from_u8((s.wrapping_mul(59) ^ (s >> 5)) as u8),
                Word::from_u8((s.wrapping_mul(83) ^ (s >> 2)) as u8),
            ])
        })
        .collect()
}

fn check(label: &str, session: &mut GateSession, gate: &ParallelGate, sets: &[OperandSet]) {
    let words = session.evaluate_batch_logic(sets).expect("sliced batch");
    for (set, word) in sets.iter().zip(&words) {
        let reference = gate.evaluate(set.words()).expect("analytic").word();
        assert_eq!(*word, reference, "{label}: sliced output diverged");
    }
    let stats = session.lut_stats().expect("cached backend");
    println!(
        "{label:>12}: {} sets ok | hits {:>6} misses {:>4} dense {}/{}",
        sets.len(),
        stats.hits,
        stats.misses,
        stats.dense_rows,
        stats.total_rows
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;

    // Warm path: every truth-table row densified before the batch.
    // (`warm_all` records one miss per combo it resolves; serving a
    // warm batch must not add any more.)
    let mut warm = gate.session(BackendChoice::Cached)?;
    warm.warm_all();
    let warmed = warm.lut_stats().expect("cached backend");
    assert_eq!(warmed.dense_rows, 8, "warm_all densifies every row");
    check("warm", &mut warm, &gate, &batch(256));
    let stats = warm.lut_stats().expect("cached backend");
    assert_eq!(stats.misses, warmed.misses, "warm batch must not miss");

    // Cold path: combos resolve through the analytic fallback
    // mid-batch, then the rows densify for the re-run.
    let mut cold = gate.session(BackendChoice::Cached)?;
    check("cold", &mut cold, &gate, &batch(256));
    check("cold rerun", &mut cold, &gate, &batch(256));

    // Ragged tail: the final block carries 7 live lanes of 64.
    check("ragged", &mut warm, &gate, &batch(199));

    println!("sliced batch kernel smoke passed");
    Ok(())
}
