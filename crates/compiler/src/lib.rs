//! Circuit compiler for data-parallel spin-wave netlists.
//!
//! [`magnon_circuits::netlist::Circuit`] gives the IR — typed MAJ/XOR/
//! NOT nodes over `n`-bit words — but its evaluation entry points walk
//! nodes in declaration order and leave every physical decision (which
//! waveguide, which frequency lane, what runs concurrently) to the
//! caller. This crate turns a netlist into a *plan* through four
//! distinct passes:
//!
//! 1. **validate** ([`validate::validate`]) — the circuit has outputs,
//!    its width fits a buildable channel plan on the target waveguide,
//!    the FDM lane grid the placer will pack into keeps its guard
//!    bands, and the deepest majority chain survives analytic
//!    cascading ([`magnon_core::cascade`]) with usable amplitude;
//! 2. **levelize** ([`levelize::levelize`]) — topological wavefronts
//!    with as-soon-as-possible scheduling, so gates of *independent*
//!    subgraphs land in the same level and can run concurrently;
//! 3. **place** ([`place::place`]) — bin-pack gate nodes onto
//!    `(waveguide, lane)` slots. Lanes stack onto one waveguide as
//!    long as their [`magnon_core::channel::ChannelPlan`]s stay
//!    disjoint with the grid's guard band and the
//!    [`magnon_core::crosstalk::LaneIsolationReport`] stays clean; the
//!    per-slot crosstalk penalty is the placement cost function, so
//!    FDM stacking and deep drains happen by construction;
//! 4. **emit** — a [`plan::CompiledCircuit`] bundling the circuit, its
//!    wavefronts, the slot table and a [`plan::CompileReport`].
//!
//! The `magnon-serve` crate executes compiled plans through its
//! scheduler with dependency-aware submission (each node's request
//! goes out the moment its inputs complete), which is where the
//! levelized/placed structure pays off: independent subgraphs
//! interleave across shards and lanes instead of the caller
//! serializing levels.
//!
//! # Examples
//!
//! ```
//! use magnon_circuits::netlist::Circuit;
//! use magnon_compiler::{compile, CompilerConfig};
//! use magnon_physics::waveguide::Waveguide;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new(8)?;
//! let a = c.input();
//! let b = c.input();
//! let cin = c.input();
//! let axb = c.xor2(a, b)?;
//! let sum = c.xor2(axb, cin)?;
//! let carry = c.maj3(a, b, cin)?;
//! c.mark_output(sum)?;
//! c.mark_output(carry)?;
//!
//! let compiled = compile(&c, &Waveguide::paper_default()?, &CompilerConfig::default())?;
//! assert_eq!(compiled.report().depth, 2); // xor2+maj3 share level 0
//! assert_eq!(compiled.report().max_level_width, 2);
//! # Ok(())
//! # }
//! ```

pub mod levelize;
pub mod place;
pub mod plan;
pub mod validate;

pub use levelize::{levelize, Levelized};
pub use place::{place, Placement, SlotSpec};
pub use plan::{CompileReport, CompiledCircuit};
pub use validate::{validate, ValidationReport};

use magnon_circuits::netlist::Circuit;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;
use std::fmt;

/// Tuning knobs of the compilation pipeline.
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// Most physical waveguides the placer may claim.
    pub max_waveguides: usize,
    /// Most FDM lanes the placer may stack on one waveguide (the
    /// isolation criterion below may stop it earlier).
    pub max_lanes_per_waveguide: u16,
    /// Minimum inter-lane isolation (dB, Lorentzian leakage model) a
    /// stacked lane set must keep to be accepted — the crosstalk side
    /// of the placement cost function.
    pub min_isolation_db: f64,
    /// Lorentzian half-width (Hz) of an excited channel's line, set by
    /// Gilbert damping; feeds the leakage estimate.
    pub linewidth: f64,
    /// Smallest per-channel output amplitude (units of one nominal
    /// source wave) the worst-case majority cascade may decay to over
    /// the circuit's deepest MAJ chain before validation rejects the
    /// circuit.
    pub min_cascade_amplitude: f64,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            max_waveguides: 8,
            max_lanes_per_waveguide: 4,
            min_isolation_db: 20.0,
            linewidth: 0.5e9,
            min_cascade_amplitude: 1.0e-3,
        }
    }
}

/// Errors surfaced by the compilation passes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The circuit failed the validation pass.
    Validation {
        /// What the validator rejected.
        reason: String,
    },
    /// The placer could not produce a legal slot assignment.
    Placement {
        /// What the placer ran out of.
        reason: String,
    },
    /// An underlying gate/channel-plan construction failed.
    Gate(GateError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Validation { reason } => write!(f, "circuit validation failed: {reason}"),
            CompileError::Placement { reason } => write!(f, "placement failed: {reason}"),
            CompileError::Gate(e) => write!(f, "gate model error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Gate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GateError> for CompileError {
    fn from(e: GateError) -> Self {
        CompileError::Gate(e)
    }
}

/// Runs the full pipeline — validate, levelize, place, emit — and
/// returns the executable plan.
///
/// # Errors
///
/// * [`CompileError::Validation`] for a circuit the validator rejects
///   (no outputs, infeasible cascade depth, broken lane grid).
/// * [`CompileError::Placement`] when no legal slot assignment exists
///   under `config`'s spectrum budget.
/// * [`CompileError::Gate`] for gate/plan construction failures on
///   `waveguide`.
pub fn compile(
    circuit: &Circuit,
    waveguide: &Waveguide,
    config: &CompilerConfig,
) -> Result<CompiledCircuit, CompileError> {
    let validation = validate(circuit, waveguide, config)?;
    let levelized = levelize(circuit);
    let placement = place(circuit, &levelized, waveguide, config)?;
    Ok(CompiledCircuit::emit(
        circuit.clone(),
        validation,
        levelized,
        placement,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_core::word::Word;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let cin = c.input();
        let axb = c.xor2(a, b).unwrap();
        let sum = c.xor2(axb, cin).unwrap();
        let carry = c.maj3(a, b, cin).unwrap();
        c.mark_output(sum).unwrap();
        c.mark_output(carry).unwrap();
        c
    }

    #[test]
    fn compiles_a_full_adder() {
        let guide = Waveguide::paper_default().unwrap();
        let compiled = compile(&full_adder(), &guide, &CompilerConfig::default()).unwrap();
        let report = compiled.report();
        assert_eq!(report.width, 8);
        assert_eq!(report.gate_counts.maj3, 1);
        assert_eq!(report.gate_counts.xor2, 2);
        // ASAP: xor2(a,b) and maj3(a,b,cin) share level 0.
        assert_eq!(report.depth, 2);
        assert_eq!(report.max_level_width, 2);
        assert_eq!(compiled.levels().len(), 2);
        // Every gate node got a slot; free nodes did not.
        for id in compiled.circuit().node_ids() {
            let is_gate = compiled
                .circuit()
                .node_kind(id)
                .unwrap()
                .gate_shape()
                .is_some();
            assert_eq!(compiled.slot_of(id).is_some(), is_gate, "node {id:?}");
        }
    }

    #[test]
    fn rejects_output_free_circuits() {
        let guide = Waveguide::paper_default().unwrap();
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        c.xor2(a, b).unwrap();
        assert!(matches!(
            compile(&c, &guide, &CompilerConfig::default()),
            Err(CompileError::Validation { .. })
        ));
    }

    #[test]
    fn rejects_infeasible_cascade_depth() {
        let guide = Waveguide::paper_default().unwrap();
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let mut m = c.maj3(a, b, d).unwrap();
        m = c.maj3(m, a, b).unwrap();
        c.mark_output(m).unwrap();
        // An absurd amplitude floor makes any ≥2-deep MAJ chain fail.
        let config = CompilerConfig {
            min_cascade_amplitude: 10.0,
            ..CompilerConfig::default()
        };
        match compile(&c, &guide, &config) {
            Err(CompileError::Validation { reason }) => {
                assert!(reason.contains("cascade"), "{reason}");
            }
            other => panic!("expected a cascade validation error, got {other:?}"),
        }
    }

    #[test]
    fn constant_only_circuits_compile_to_zero_slots() {
        let guide = Waveguide::paper_default().unwrap();
        let mut c = Circuit::new(8).unwrap();
        let k = c.constant(Word::from_u8(0x5A)).unwrap();
        let n = c.not(k).unwrap();
        c.mark_output(n).unwrap();
        let compiled = compile(&c, &guide, &CompilerConfig::default()).unwrap();
        assert_eq!(compiled.report().depth, 0);
        assert!(compiled.slots().is_empty());
        assert_eq!(compiled.report().waveguides_used, 0);
    }
}
