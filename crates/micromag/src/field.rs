//! Effective-field terms.
//!
//! The effective field entering the LLG equation is the sum of
//! independent contributions; each implements [`FieldTerm`] and *adds*
//! its field (in A/m) into the shared accumulation buffer. The set used
//! for the paper's waveguide is: exchange + uniaxial PMA anisotropy +
//! local demagnetizing tensor (+ antenna sources from
//! [`crate::source`]).

use crate::error::SimError;
use crate::mesh::Mesh;
use magnon_math::constants::MU_0;
use magnon_math::Vec3;
use magnon_physics::material::Material;

/// A contribution to the effective field.
///
/// Implementations must **accumulate** into `h` (`h[i] += ...`), never
/// overwrite, so terms compose.
pub trait FieldTerm: Send + Sync {
    /// Adds this term's field (A/m) for magnetization state `m` at time
    /// `t` into `h`.
    fn add_field(&self, mesh: &Mesh, m: &[Vec3], t: f64, h: &mut [Vec3]);

    /// Human-readable name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Heisenberg exchange via the 4-neighbour (2-neighbour in 1D) discrete
/// Laplacian: `H_ex = Ms λ_ex² ∇² m`, free (Neumann) boundaries.
///
/// # Examples
///
/// ```
/// use magnon_micromag::field::{Exchange, FieldTerm};
/// use magnon_micromag::mesh::Mesh;
/// use magnon_math::Vec3;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(20.0e-9, 2.0e-9, 50.0e-9, 1.0e-9)?;
/// let ex = Exchange::new(&Material::fe_co_b());
/// let m = vec![Vec3::Z; mesh.cell_count()];
/// let mut h = vec![Vec3::ZERO; mesh.cell_count()];
/// ex.add_field(&mesh, &m, 0.0, &mut h);
/// // A uniform state has zero exchange field.
/// assert!(h.iter().all(|v| v.norm() < 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Exchange {
    /// Ms λ_ex² in A·m (field = this × ∇²m).
    coeff: f64,
}

impl Exchange {
    /// Builds the exchange term for `material`.
    pub fn new(material: &Material) -> Self {
        Exchange {
            coeff: material.saturation_magnetization() * material.exchange_length_sq(),
        }
    }

    /// The prefactor `Ms λ_ex²` in A·m.
    pub fn coefficient(&self) -> f64 {
        self.coeff
    }
}

impl FieldTerm for Exchange {
    fn add_field(&self, mesh: &Mesh, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        let nx = mesh.nx();
        let ny = mesh.ny();
        let inv_dx2 = self.coeff / (mesh.dx() * mesh.dx());
        let inv_dy2 = self.coeff / (mesh.dy() * mesh.dy());
        for j in 0..ny {
            let row = j * nx;
            for i in 0..nx {
                let idx = row + i;
                let mi = m[idx];
                let mut acc = Vec3::ZERO;
                if i > 0 {
                    acc += (m[idx - 1] - mi) * inv_dx2;
                }
                if i + 1 < nx {
                    acc += (m[idx + 1] - mi) * inv_dx2;
                }
                if ny > 1 {
                    if j > 0 {
                        acc += (m[idx - nx] - mi) * inv_dy2;
                    }
                    if j + 1 < ny {
                        acc += (m[idx + nx] - mi) * inv_dy2;
                    }
                }
                h[idx] += acc;
            }
        }
    }

    fn name(&self) -> &'static str {
        "exchange"
    }
}

/// First-order uniaxial anisotropy:
/// `H_ani = (2 k_ani / μ₀ Ms) (m · u) u`.
#[derive(Debug, Clone, Copy)]
pub struct UniaxialAnisotropy {
    field_scale: f64,
    axis: Vec3,
}

impl UniaxialAnisotropy {
    /// Builds the anisotropy term for `material` with easy axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `axis` is (near)
    /// zero.
    pub fn new(material: &Material, axis: Vec3) -> Result<Self, SimError> {
        let axis = axis.normalized().ok_or(SimError::InvalidParameter {
            parameter: "axis",
            value: 0.0,
        })?;
        Ok(UniaxialAnisotropy {
            field_scale: 2.0 * material.anisotropy_constant()
                / (MU_0 * material.saturation_magnetization()),
            axis,
        })
    }

    /// The paper's configuration: easy axis out of plane (+z).
    ///
    /// # Errors
    ///
    /// Never fails; kept for constructor uniformity.
    pub fn perpendicular(material: &Material) -> Result<Self, SimError> {
        UniaxialAnisotropy::new(material, Vec3::Z)
    }

    /// Peak anisotropy field `2 k_ani / (μ₀ Ms)` in A/m.
    pub fn field_scale(&self) -> f64 {
        self.field_scale
    }
}

impl FieldTerm for UniaxialAnisotropy {
    fn add_field(&self, _mesh: &Mesh, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        for (hi, mi) in h.iter_mut().zip(m) {
            *hi += self.axis * (self.field_scale * mi.dot(self.axis));
        }
    }

    fn name(&self) -> &'static str {
        "uniaxial_anisotropy"
    }
}

/// Local (cell-wise) demagnetizing field with a diagonal tensor:
/// `H_d = −Ms (N_x m_x, N_y m_y, N_z m_z)`.
///
/// For a thin film `N = (0, 0, 1)`; for the paper's waveguide the
/// designer uses `(0, 0, N_z(width, thickness))` so that the simulated
/// dispersion matches
/// [`magnon_physics::dispersion::ExchangeDispersion`] exactly.
#[derive(Debug, Clone, Copy)]
pub struct LocalDemag {
    ms: f64,
    tensor: Vec3,
}

impl LocalDemag {
    /// Builds a local demag term with diagonal `tensor = (Nx, Ny, Nz)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when any factor lies
    /// outside `[0, 1]` or the trace exceeds 1 + 1e-6.
    pub fn new(material: &Material, tensor: Vec3) -> Result<Self, SimError> {
        for v in [tensor.x, tensor.y, tensor.z] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(SimError::InvalidParameter {
                    parameter: "demag_factor",
                    value: v,
                });
            }
        }
        let trace = tensor.x + tensor.y + tensor.z;
        if trace > 1.0 + 1e-6 {
            return Err(SimError::InvalidParameter {
                parameter: "demag_trace",
                value: trace,
            });
        }
        Ok(LocalDemag {
            ms: material.saturation_magnetization(),
            tensor,
        })
    }

    /// Out-of-plane-only tensor `(0, 0, nz)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LocalDemag::new`].
    pub fn out_of_plane(material: &Material, nz: f64) -> Result<Self, SimError> {
        LocalDemag::new(material, Vec3::new(0.0, 0.0, nz))
    }

    /// The diagonal tensor.
    pub fn tensor(&self) -> Vec3 {
        self.tensor
    }
}

impl FieldTerm for LocalDemag {
    fn add_field(&self, _mesh: &Mesh, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        for (hi, mi) in h.iter_mut().zip(m) {
            *hi -= self.tensor.component_mul(*mi) * self.ms;
        }
    }

    fn name(&self) -> &'static str {
        "local_demag"
    }
}

/// Static uniform applied field (A/m).
#[derive(Debug, Clone, Copy)]
pub struct Zeeman {
    field: Vec3,
}

impl Zeeman {
    /// Builds a uniform field term.
    pub fn new(field: Vec3) -> Self {
        Zeeman { field }
    }

    /// The applied field.
    pub fn field(&self) -> Vec3 {
        self.field
    }
}

impl FieldTerm for Zeeman {
    fn add_field(&self, _mesh: &Mesh, _m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        for hi in h.iter_mut() {
            *hi += self.field;
        }
    }

    fn name(&self) -> &'static str {
        "zeeman"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::line(40.0e-9, 2.0e-9, 50.0e-9, 1.0e-9).unwrap()
    }

    #[test]
    fn exchange_zero_for_uniform_state() {
        let mesh = mesh();
        let ex = Exchange::new(&Material::fe_co_b());
        let m = vec![Vec3::new(0.6, 0.0, 0.8); mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ex.add_field(&mesh, &m, 0.0, &mut h);
        assert!(h.iter().all(|v| v.norm() < 1e-9));
    }

    #[test]
    fn exchange_opposes_gradient() {
        let mesh = mesh();
        let ex = Exchange::new(&Material::fe_co_b());
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        // Tilt one cell: its neighbours feel a field pulling toward it,
        // and it feels a field pulling back toward +z.
        m[10] = Vec3::new(0.5, 0.0, 0.866_025).normalized().unwrap();
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ex.add_field(&mesh, &m, 0.0, &mut h);
        assert!(h[10].x < 0.0, "tilted cell pulled back");
        assert!(h[9].x > 0.0, "left neighbour pulled toward tilt");
        assert!(h[11].x > 0.0, "right neighbour pulled toward tilt");
        // Distant cells unaffected.
        assert!(h[0].norm() < 1e-9);
    }

    #[test]
    fn exchange_laplacian_quantitative() {
        // For m_x(x) = ε sin(kx) the exchange field is −Ms λ² k² m_x.
        let mesh = Mesh::line(400.0e-9, 1.0e-9, 50.0e-9, 1.0e-9).unwrap();
        let mat = Material::fe_co_b();
        let ex = Exchange::new(&mat);
        let k = 2.0 * std::f64::consts::PI / 100.0e-9;
        let eps = 1e-4;
        let m: Vec<Vec3> = (0..mesh.cell_count())
            .map(|i| Vec3::new(eps * (k * mesh.x_at(i)).sin(), 0.0, 1.0))
            .collect();
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ex.add_field(&mesh, &m, 0.0, &mut h);
        // Check an interior cell against the continuum expression.
        let i = 200;
        let expected = -ex.coefficient() * k * k * m[i].x;
        assert!(
            (h[i].x - expected).abs() / expected.abs() < 0.01,
            "h = {}, expected = {expected}",
            h[i].x
        );
    }

    #[test]
    fn exchange_2d_couples_rows() {
        let mesh = Mesh::plane(20e-9, 10e-9, 2e-9, 2e-9, 1e-9).unwrap();
        let ex = Exchange::new(&Material::fe_co_b());
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        let centre = mesh.index(5, 2);
        m[centre] = Vec3::X;
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ex.add_field(&mesh, &m, 0.0, &mut h);
        // All four neighbours must feel the tilt.
        assert!(h[mesh.index(4, 2)].x > 0.0);
        assert!(h[mesh.index(6, 2)].x > 0.0);
        assert!(h[mesh.index(5, 1)].x > 0.0);
        assert!(h[mesh.index(5, 3)].x > 0.0);
    }

    #[test]
    fn anisotropy_field_along_axis() {
        let mat = Material::fe_co_b();
        let ani = UniaxialAnisotropy::perpendicular(&mat).unwrap();
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ani.add_field(&mesh, &m, 0.0, &mut h);
        let expected = mat.anisotropy_field();
        assert!((h[0].z - expected).abs() / expected < 1e-12);
        assert_eq!(h[0].x, 0.0);
    }

    #[test]
    fn anisotropy_projects_tilted_m() {
        let mat = Material::fe_co_b();
        let ani = UniaxialAnisotropy::perpendicular(&mat).unwrap();
        let mesh = mesh();
        let m = vec![Vec3::new(0.6, 0.0, 0.8); mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ani.add_field(&mesh, &m, 0.0, &mut h);
        // H = scale · (m·z) z = scale · 0.8 z.
        assert!((h[0].z - ani.field_scale() * 0.8).abs() < 1e-6);
        assert_eq!(h[0].x, 0.0);
    }

    #[test]
    fn anisotropy_rejects_zero_axis() {
        assert!(UniaxialAnisotropy::new(&Material::fe_co_b(), Vec3::ZERO).is_err());
    }

    #[test]
    fn demag_opposes_magnetization() {
        let mat = Material::fe_co_b();
        let d = LocalDemag::out_of_plane(&mat, 1.0).unwrap();
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        d.add_field(&mesh, &m, 0.0, &mut h);
        assert!((h[0].z + mat.saturation_magnetization()).abs() < 1e-6);
    }

    #[test]
    fn demag_tensor_validation() {
        let mat = Material::fe_co_b();
        assert!(LocalDemag::new(&mat, Vec3::new(0.5, 0.5, 0.5)).is_err()); // trace > 1
        assert!(LocalDemag::new(&mat, Vec3::new(-0.1, 0.0, 0.9)).is_err());
        assert!(LocalDemag::new(&mat, Vec3::new(0.0, 0.1, 0.9)).is_ok());
        assert!(LocalDemag::out_of_plane(&mat, 1.5).is_err());
    }

    #[test]
    fn zeeman_uniform() {
        let z = Zeeman::new(Vec3::new(1e4, 0.0, 2e4));
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        z.add_field(&mesh, &m, 0.0, &mut h);
        assert!(h.iter().all(|v| *v == Vec3::new(1e4, 0.0, 2e4)));
    }

    #[test]
    fn terms_accumulate() {
        // Applying two terms adds their fields.
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        let z1 = Zeeman::new(Vec3::X * 10.0);
        let z2 = Zeeman::new(Vec3::X * 5.0);
        z1.add_field(&mesh, &m, 0.0, &mut h);
        z2.add_field(&mesh, &m, 0.0, &mut h);
        assert!((h[0].x - 15.0).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        let mat = Material::fe_co_b();
        assert_eq!(Exchange::new(&mat).name(), "exchange");
        assert_eq!(
            UniaxialAnisotropy::perpendicular(&mat).unwrap().name(),
            "uniaxial_anisotropy"
        );
        assert_eq!(
            LocalDemag::out_of_plane(&mat, 1.0).unwrap().name(),
            "local_demag"
        );
        assert_eq!(Zeeman::new(Vec3::ZERO).name(), "zeeman");
    }
}
