//! No-op derive shim for `serde_derive` (offline build environment).
//!
//! The workspace derives `Serialize`/`Deserialize` on several plain-data
//! structs but never serializes them yet, so the derives may expand to
//! nothing. The `serde` helper attribute is accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
