//! Property tests for the circuit compiler and its pipelined executor:
//! compiled plans run through the serving scheduler — pipelined or
//! level-by-level, with adaptive rebalancing live — must equal
//! sequential [`Circuit::evaluate_batch`] on randomized DAGs, and
//! every placement must keep its lane bands disjoint.

use proptest::prelude::*;
use spinwave_parallel::circuits::netlist::{fdm_lane_guard_band, Circuit};
use spinwave_parallel::compiler::{compile, CompilerConfig};
use spinwave_parallel::core::backend::BackendChoice;
use spinwave_parallel::core::gate::WaveguideId;
use spinwave_parallel::core::word::Word;
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{
    register_compiled, AdaptiveConfig, CircuitExecutor, SchedulerBuilder, ServeConfig,
};
use std::time::Duration;

const WIDTH: usize = 8;

fn quick_config(workers: usize) -> ServeConfig {
    ServeConfig {
        keep_readouts: false,
        workers,
        max_batch: 64,
        linger: Duration::from_micros(50),
        queue_depth: 256,
        lut_dir: None,
        // Adaptive policies stay ON (default), with a short rebalance
        // interval so placement moves happen inside small test runs —
        // plan execution must be correct while shards shift under it.
        adaptive: AdaptiveConfig {
            rebalance_interval: 8,
            ..AdaptiveConfig::default()
        },
    }
}

/// Splitmix-style step: decorrelates consecutive draws from one seed.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a randomized DAG: mixed MAJ-3 / XOR-2 / NOT / AND-2 / OR-2
/// nodes over earlier nodes (shared fan-out falls out naturally from
/// re-drawing operands), with several marked outputs.
fn random_circuit(mut seed: u64, inputs: usize, gates: usize, outputs: usize) -> Circuit {
    let mut c = Circuit::new(WIDTH).unwrap();
    let mut nodes = Vec::new();
    for _ in 0..inputs {
        nodes.push(c.input());
    }
    for _ in 0..gates {
        let pick = |s: &mut u64, nodes: &[_]| nodes[(next(s) % nodes.len() as u64) as usize];
        let a = pick(&mut seed, &nodes);
        let b = pick(&mut seed, &nodes);
        let id = match next(&mut seed) % 5 {
            0 => c.maj3(a, b, pick(&mut seed, &nodes)).unwrap(),
            1 => c.xor2(a, b).unwrap(),
            2 => c.not(a).unwrap(),
            3 => c.and2(a, b).unwrap(),
            _ => c.or2(a, b).unwrap(),
        };
        nodes.push(id);
    }
    // The newest node is always an output (so the DAG's deepest work is
    // live); further outputs land on random nodes, duplicates allowed.
    c.mark_output(*nodes.last().unwrap()).unwrap();
    for _ in 1..outputs {
        let id = nodes[(next(&mut seed) % nodes.len() as u64) as usize];
        c.mark_output(id).unwrap();
    }
    c
}

fn random_sets(mut seed: u64, inputs: usize, count: usize) -> Vec<Vec<Word>> {
    (0..count)
        .map(|_| {
            (0..inputs)
                .map(|_| Word::from_u8(next(&mut seed) as u8))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Compiled + pipelined execution ≡ sequential reference, on
    /// randomized DAGs with shared fan-out and multiple outputs, under
    /// live adaptive rebalancing. The levelized baseline must agree
    /// too, and every plan's lane grid must honour the guard band the
    /// packed frequency grid promises.
    #[test]
    fn compiled_pipelined_execution_matches_sequential_reference(
        seed in 0u64..u64::MAX,
        inputs in 2usize..6,
        gates in 1usize..14,
        outputs in 1usize..4,
        workers in 1usize..4,
        set_seed in 0u64..u64::MAX,
    ) {
        let circuit = random_circuit(seed, inputs, gates, outputs);
        let guide = Waveguide::paper_default().unwrap();
        // Random chains can nest majorities arbitrarily deep; the
        // equivalence property is about execution, not cascade
        // feasibility, so the amplitude floor is disabled.
        let config = CompilerConfig {
            min_cascade_amplitude: 0.0,
            ..CompilerConfig::default()
        };
        let compiled = compile(&circuit, &guide, &config).unwrap();

        // The placement invariant: co-resident lanes keep at least the
        // guard band the grid derivation promises.
        let report = compiled.report();
        if report.lanes_per_waveguide > 1 && report.slot_count > 1 {
            prop_assert!(
                report.min_guard_band >= fdm_lane_guard_band(WIDTH) - 1.0,
                "lane grid under-spaced: {report:?}"
            );
        }

        let mut builder = SchedulerBuilder::new(quick_config(workers));
        let gate_ids = register_compiled(
            &mut builder,
            &compiled,
            guide,
            WaveguideId(0),
            BackendChoice::Cached,
        )
        .unwrap();
        let scheduler = builder.build().unwrap();
        let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gate_ids).unwrap();

        let sets = random_sets(set_seed, circuit.input_count(), 8);
        let reference = circuit.evaluate_batch(&sets).unwrap();
        let pipelined = executor.run_batch(&sets).unwrap();
        prop_assert_eq!(&pipelined, &reference);
        let levelized = executor.run_batch_levelized(&sets).unwrap();
        prop_assert_eq!(&levelized, &reference);

        let stats = scheduler.stats();
        prop_assert_eq!(stats.failed, 0);
        scheduler.shutdown().unwrap();
    }
}

/// One deterministic deep case: a ripple-style majority chain plus an
/// independent XOR tree, executed pipelined over rebalancing shards.
#[test]
fn deep_mixed_circuit_survives_rebalancing() {
    let mut c = Circuit::new(WIDTH).unwrap();
    let a = c.input();
    let b = c.input();
    let cin = c.input();
    // 4-stage carry chain.
    let mut carry = cin;
    for _ in 0..4 {
        carry = c.maj3(a, b, carry).unwrap();
    }
    // Independent parity tree on separate inputs.
    let x = c.input();
    let y = c.input();
    let z = c.input();
    let p0 = c.xor2(x, y).unwrap();
    let p1 = c.xor2(p0, z).unwrap();
    let np = c.not(p1).unwrap();
    c.mark_output(carry).unwrap();
    c.mark_output(p1).unwrap();
    c.mark_output(np).unwrap();

    let guide = Waveguide::paper_default().unwrap();
    let compiled = compile(&c, &guide, &CompilerConfig::default()).unwrap();
    let mut builder = SchedulerBuilder::new(quick_config(2));
    let gates = register_compiled(
        &mut builder,
        &compiled,
        guide,
        WaveguideId(0),
        BackendChoice::Cached,
    )
    .unwrap();
    let scheduler = builder.build().unwrap();
    let mut executor = CircuitExecutor::new(&scheduler, &compiled, &gates).unwrap();
    let sets = random_sets(7, c.input_count(), 32);
    let reference = c.evaluate_batch(&sets).unwrap();
    assert_eq!(executor.run_batch(&sets).unwrap(), reference);
    assert!(
        executor.peak_in_flight() >= 2,
        "independent subgraphs should overlap in flight"
    );
    scheduler.shutdown().unwrap();
}
