//! Error type shared by the numerical routines.

use std::fmt;

/// Errors produced by the numerical routines in this crate.
///
/// # Examples
///
/// ```
/// use magnon_math::{fft, Complex64, MathError};
///
/// let mut data = vec![Complex64::ZERO; 3]; // not a power of two
/// assert!(matches!(
///     fft::fft_in_place(&mut data),
///     Err(MathError::NotPowerOfTwo { len: 3 })
/// ));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// An FFT was requested on a buffer whose length is not a power of two.
    NotPowerOfTwo {
        /// Offending buffer length.
        len: usize,
    },
    /// An operation that requires a non-empty input received an empty one.
    EmptyInput,
    /// A sampling interval, frequency or other scale parameter was not
    /// strictly positive and finite.
    InvalidScale {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
    },
    /// A requested frequency exceeds the Nyquist frequency of the series.
    AboveNyquist {
        /// Requested frequency in Hz.
        frequency: f64,
        /// Nyquist frequency of the sampled series in Hz.
        nyquist: f64,
    },
    /// A root finder was given a bracket that does not straddle a sign
    /// change.
    InvalidBracket {
        /// Lower bracket edge.
        lo: f64,
        /// Upper bracket edge.
        hi: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// Interpolation abscissae were not strictly increasing.
    NotMonotonic,
    /// Inputs that must have identical lengths did not.
    LengthMismatch {
        /// Length of the first input.
        expected: usize,
        /// Length of the offending input.
        actual: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::NotPowerOfTwo { len } => {
                write!(f, "buffer length {len} is not a power of two")
            }
            MathError::EmptyInput => write!(f, "input is empty"),
            MathError::InvalidScale { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be positive and finite, got {value}"
                )
            }
            MathError::AboveNyquist { frequency, nyquist } => {
                write!(
                    f,
                    "frequency {frequency:.3e} Hz exceeds the Nyquist frequency {nyquist:.3e} Hz"
                )
            }
            MathError::InvalidBracket { lo, hi } => {
                write!(f, "bracket [{lo:.6e}, {hi:.6e}] does not straddle a root")
            }
            MathError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            MathError::NotMonotonic => write!(f, "abscissae are not strictly increasing"),
            MathError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MathError::NotPowerOfTwo { len: 7 };
        let msg = e.to_string();
        assert!(msg.contains('7'));
        assert!(msg.starts_with("buffer"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(MathError::EmptyInput, MathError::EmptyInput);
        assert_ne!(
            MathError::NotPowerOfTwo { len: 3 },
            MathError::NotPowerOfTwo { len: 5 }
        );
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(MathError::EmptyInput);
        assert!(e.source().is_none());
    }
}
