//! Analyzer test suite: parser coverage, fixture crates with planted
//! transitive violations (found / waived / ambiguous), policy parsing,
//! and the workspace-must-be-clean gate mirroring PR 8's lint suite.

use super::*;

fn one_crate(src: &str) -> Vec<SourceFile> {
    vec![SourceFile {
        crate_name: "tcrate".into(),
        rel: "crates/tcrate/src/lib.rs".into(),
        text: src.into(),
    }]
}

fn analyzed(src: &str) -> Analysis {
    let mut a = analyze_sources(&one_crate(src), &[]);
    compute_facts(&mut a, &[]);
    a
}

#[test]
fn parser_extracts_fns_methods_and_inline_mods() {
    let a = analyzed(
        "pub fn free() {}\n\
         pub struct Widget;\n\
         impl Widget {\n\
             pub fn method(&self) {}\n\
         }\n\
         impl std::fmt::Display for Widget {\n\
             fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
         }\n\
         mod inner {\n\
             pub fn nested() {}\n\
         }\n",
    );
    let ids: Vec<&str> = a.fns.iter().map(|f| f.id.as_str()).collect();
    assert!(ids.contains(&"tcrate::free"), "ids: {ids:?}");
    assert!(ids.contains(&"tcrate::Widget::method"));
    assert!(ids.contains(&"tcrate::Widget::fmt"));
    assert!(ids.contains(&"tcrate::inner::nested"));
}

#[test]
fn multi_line_signatures_and_where_clauses_parse() {
    let a = analyzed(
        "pub fn long_sig(\n\
             a: u32,\n\
             b: [u8; 4],\n\
         ) -> u32\n\
         where\n\
             u32: Copy,\n\
         {\n\
             helper(a)\n\
         }\n\
         fn helper(x: u32) -> u32 { x }\n",
    );
    assert_eq!(a.fns.len(), 2);
    let edge = a
        .edges
        .iter()
        .any(|e| a.fns[e.caller].name == "long_sig" && a.fns[e.callee].name == "helper");
    assert!(edge, "bare call in the body must resolve within the crate");
}

#[test]
fn intrinsic_sites_are_detected_and_attributed() {
    let a = analyzed(
        "pub fn risky(v: &[u32]) -> u32 {\n\
             let x = v[0];\n\
             let s = format!(\"{x}\");\n\
             let _ = s;\n\
             std::thread::sleep(std::time::Duration::from_millis(1));\n\
             x\n\
         }\n",
    );
    let f = &a.fns[0];
    assert!(f
        .sites
        .iter()
        .any(|s| s.fact == Fact::Panic && s.token == "slice-index"));
    assert!(f
        .sites
        .iter()
        .any(|s| s.fact == Fact::Alloc && s.token == "format!("));
    assert!(f
        .sites
        .iter()
        .any(|s| s.fact == Fact::Block && s.token == "sleep"));
    assert!(a.can[Fact::Panic.index()][0]);
    assert!(a.can[Fact::Alloc.index()][0]);
    assert!(a.can[Fact::Block.index()][0]);
}

#[test]
fn string_and_comment_tokens_are_invisible() {
    let a = analyzed(
        "pub fn quiet() {\n\
             // mentions .unwrap() and panic!() in prose\n\
             let s = \".unwrap() vec![format!\";\n\
             let _ = s;\n\
         }\n",
    );
    assert!(a.fns[0].sites.is_empty(), "sites: {:?}", a.fns[0].sites);
}

#[test]
fn test_code_is_masked_out() {
    let a = analyzed(
        "pub fn prod() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             pub fn t() { x.unwrap(); }\n\
         }\n",
    );
    assert_eq!(a.fns.len(), 1);
    assert_eq!(a.fns[0].name, "prod");
}

#[test]
fn transitive_panic_propagates_and_explains() {
    let src = "pub fn root() { mid(); }\n\
               fn mid() { deep(); }\n\
               fn deep() { opt().unwrap(); }\n\
               fn opt() -> Option<u32> { None }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(
        a.can[Fact::Panic.index()][root],
        "panic must propagate to root"
    );
    let chain = explain(&a, root, Fact::Panic).expect("chain exists");
    assert_eq!(chain.hops.len(), 3, "root → mid → deep");
    assert_eq!(chain.site_token, ".unwrap()");
    let rendered = render_chain(&a, &chain);
    assert!(rendered.contains("tcrate::root"));
    assert!(rendered.contains("tcrate::deep"));
    assert!(rendered.contains(".unwrap()"));
}

#[test]
fn waived_sites_do_not_seed_propagation() {
    let src = "pub fn root() { helper(); }\n\
               fn helper() {\n\
                   // analyze: allow(can-panic) — invariant: map is pre-filled\n\
                   map().unwrap();\n\
               }\n\
               fn map() -> Option<u32> { Some(1) }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(
        !a.can[Fact::Panic.index()][root],
        "waived site must not propagate"
    );
    assert!(a.waiver_decls.iter().any(|w| w.rule == "can-panic"));
}

#[test]
fn waived_call_edges_cut_propagation() {
    let src = "pub fn root() {\n\
                   // analyze: allow(can-alloc) — cold path: once per session\n\
                   build_cache();\n\
               }\n\
               fn build_cache() { let v = vec![1, 2]; let _ = v; }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(!a.can[Fact::Alloc.index()][root]);
    // The callee itself still carries the fact.
    let callee = a.index_of("tcrate::build_cache").expect("callee parsed");
    assert!(a.can[Fact::Alloc.index()][callee]);
}

#[test]
fn trust_entries_cut_propagation_at_the_boundary() {
    let src = "pub fn root() { audited(); }\n\
               pub fn audited() { inner().unwrap(); }\n\
               fn inner() -> Option<u32> { Some(1) }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let trust = vec![TrustSpec {
        func: "tcrate::audited".into(),
        rules: vec![Fact::Panic],
        reason: "test: audited boundary".into(),
    }];
    let errors = compute_facts(&mut a, &trust);
    assert!(errors.is_empty());
    let root = a.index_of("tcrate::root").expect("root parsed");
    let audited = a.index_of("tcrate::audited").expect("audited parsed");
    assert!(
        a.can[Fact::Panic.index()][audited],
        "trusted fn keeps its own facts"
    );
    assert!(!a.can[Fact::Panic.index()][root], "caller must not inherit");
}

#[test]
fn unknown_trust_fn_is_an_error_not_a_silent_skip() {
    let mut a = analyze_sources(&one_crate("pub fn f() {}\n"), &[]);
    let trust = vec![TrustSpec {
        func: "tcrate::no_such_fn".into(),
        rules: vec![Fact::Panic],
        reason: "typo".into(),
    }];
    let errors = compute_facts(&mut a, &trust);
    assert_eq!(errors.len(), 1);
    assert!(errors[0].contains("no_such_fn"));
}

#[test]
fn cross_crate_calls_resolve_by_path_and_import() {
    let sources = vec![
        SourceFile {
            crate_name: "alpha".into(),
            rel: "crates/alpha/src/lib.rs".into(),
            text: "use beta::helpers::step;\n\
                   pub fn go(x: u32) -> u32 { step(x) + beta::helpers::step(x) }\n"
                .into(),
        },
        SourceFile {
            crate_name: "beta".into(),
            rel: "crates/beta/src/helpers.rs".into(),
            text: "pub fn step(x: u32) -> u32 { x + 1 }\n".into(),
        },
    ];
    let a = analyze_sources(&sources, &[]);
    let go = a.index_of("alpha::go").expect("go parsed");
    let step = a.index_of("beta::helpers::step").expect("step parsed");
    let hits = a
        .edges
        .iter()
        .filter(|e| e.caller == go && e.callee == step)
        .count();
    assert_eq!(
        hits, 2,
        "both the imported and the fully-qualified call resolve"
    );
}

#[test]
fn fn_references_in_higher_order_calls_get_edges() {
    let src = "pub struct Out;\n\
               impl Out {\n\
                   pub fn logic_only(self) -> Out { opt().unwrap() }\n\
               }\n\
               fn opt() -> Option<Out> { None }\n\
               pub fn root(v: Vec<Out>) -> Vec<Out> {\n\
                   v.into_iter().map(Out::logic_only).collect()\n\
               }\n";
    let a = analyzed(src);
    let root = a.index_of("tcrate::root").expect("root parsed");
    assert!(
        a.can[Fact::Panic.index()][root],
        "`map(Out::logic_only)` must carry the callee's facts"
    );
}

#[test]
fn ambiguous_method_calls_are_reported_with_conservative_edges() {
    let sources = vec![
        SourceFile {
            crate_name: "one".into(),
            rel: "crates/one/src/lib.rs".into(),
            text: "pub struct A;\nimpl A { pub fn emit(&self) {} }\n".into(),
        },
        SourceFile {
            crate_name: "two".into(),
            rel: "crates/two/src/lib.rs".into(),
            text: "pub struct B;\nimpl B { pub fn emit(&self) { x().unwrap(); }\n}\n\
                   fn x() -> Option<u32> { None }\n"
                .into(),
        },
        SourceFile {
            crate_name: "caller".into(),
            rel: "crates/caller/src/lib.rs".into(),
            text: "use one::A;\nuse two::B;\npub fn go(a: &A) { a.emit(); }\n".into(),
        },
    ];
    let a = analyzed_multi(sources);
    assert_eq!(a.ambiguities.len(), 1, "the .emit() call is ambiguous");
    assert_eq!(a.ambiguities[0].candidates.len(), 2);
    // Conservative: the caller inherits the worst candidate's facts.
    let go = a.index_of("caller::go").expect("go parsed");
    assert!(a.can[Fact::Panic.index()][go]);
}

fn analyzed_multi(sources: Vec<SourceFile>) -> Analysis {
    let mut a = analyze_sources(&sources, &[]);
    compute_facts(&mut a, &[]);
    a
}

#[test]
fn self_receiver_methods_resolve_unambiguously() {
    let sources = vec![
        SourceFile {
            crate_name: "one".into(),
            rel: "crates/one/src/lib.rs".into(),
            text: "pub struct A;\n\
                   impl A {\n\
                       pub fn run(&self) { self.emit(); }\n\
                       fn emit(&self) {}\n\
                   }\n"
            .into(),
        },
        SourceFile {
            crate_name: "two".into(),
            rel: "crates/two/src/lib.rs".into(),
            text: "pub struct B;\nimpl B { pub fn emit(&self) { panic!(); } }\n".into(),
        },
    ];
    let a = analyzed_multi(sources);
    assert!(
        a.ambiguities.is_empty(),
        "self.emit() resolves to the owner's method: {:?}",
        a.ambiguities
    );
    let run = a.index_of("one::A::run").expect("run parsed");
    assert!(!a.can[Fact::Panic.index()][run]);
}

#[test]
fn ignore_methods_suppress_std_name_collisions() {
    let sources = vec![
        SourceFile {
            crate_name: "one".into(),
            rel: "crates/one/src/lib.rs".into(),
            text: "pub struct Q;\nimpl Q { pub fn push(&mut self, x: u32) { panic!(); } }\n".into(),
        },
        SourceFile {
            crate_name: "caller".into(),
            rel: "crates/caller/src/lib.rs".into(),
            // analyze: allow is absent on purpose: `.push(` is still an
            // intrinsic alloc token even when the call is ignored.
            text: "use one::Q;\npub fn go(v: &mut Vec<u32>) { v.push(1); }\n".into(),
        },
    ];
    let mut a = analyze_sources(&sources, &["push".to_string()]);
    compute_facts(&mut a, &[]);
    let go = a.index_of("caller::go").expect("go parsed");
    assert!(
        !a.can[Fact::Panic.index()][go],
        "ignored method adds no panic edge"
    );
    assert!(
        a.can[Fact::Alloc.index()][go],
        "intrinsic token still fires"
    );
}

#[test]
fn policy_parses_roots_trust_and_ignore() {
    let p = parse_policy(
        "# comment\n\
         [[root]]\n\
         fn = \"a::b\"            # trailing comment\n\
         deny = [\"can-panic\", \"can-alloc\"]\n\
         reason = \"drain must not die\"\n\
         \n\
         [[trust]]\n\
         fn = \"a::c\"\n\
         rules = [\"can-alloc\"]\n\
         reason = \"audited arena\"\n\
         \n\
         [ignore]\n\
         methods = [\n\
             \"push\",\n\
             \"insert\",\n\
         ]\n\
         files = [\"crates/x/src/shim.rs\"]\n",
    )
    .expect("policy parses");
    assert_eq!(p.roots.len(), 1);
    assert_eq!(p.roots[0].deny, vec![Fact::Panic, Fact::Alloc]);
    assert_eq!(p.trust.len(), 1);
    assert_eq!(p.ignore_methods, vec!["push", "insert"]);
    assert_eq!(p.ignore_files, vec!["crates/x/src/shim.rs"]);
}

#[test]
fn policy_rejects_missing_reasons_and_unknown_rules() {
    assert!(parse_policy("[[root]]\nfn = \"a\"\ndeny = [\"can-panic\"]\n").is_err());
    assert!(
        parse_policy("[[root]]\nfn = \"a\"\ndeny = [\"can-explode\"]\nreason = \"x\"\n").is_err()
    );
}

#[test]
fn reasonless_waivers_are_policy_errors() {
    let src = "pub fn root() {\n\
                   // analyze: allow(can-panic)\n\
                   x().unwrap();\n\
               }\n\
               fn x() -> Option<u32> { None }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy = Policy::default();
    let results = check_policy(&mut a, &policy);
    assert!(
        results.errors.iter().any(|e| e.contains("no reason")),
        "errors: {:?}",
        results.errors
    );
}

#[test]
fn unresolved_policy_roots_are_errors() {
    let mut a = analyze_sources(&one_crate("pub fn f() {}\n"), &[]);
    let policy =
        parse_policy("[[root]]\nfn = \"tcrate::ghost\"\ndeny = [\"can-panic\"]\nreason = \"x\"\n")
            .expect("parses");
    let results = check_policy(&mut a, &policy);
    assert!(!results.clean());
    assert!(results.errors.iter().any(|e| e.contains("ghost")));
}

#[test]
fn violation_chains_reach_the_json_report() {
    let src = "pub fn root() { deep(); }\n\
               fn deep() { x().unwrap(); }\n\
               fn x() -> Option<u32> { None }\n";
    let mut a = analyze_sources(&one_crate(src), &[]);
    let policy =
        parse_policy("[[root]]\nfn = \"tcrate::root\"\ndeny = [\"can-panic\"]\nreason = \"t\"\n")
            .expect("parses");
    let results = check_policy(&mut a, &policy);
    assert!(!results.clean());
    let json = report::render_json(&a, &policy, &results);
    assert!(json.contains("\"status\": \"violated\""));
    assert!(json.contains("tcrate::deep"));
    assert!(json.contains(".unwrap()"));
}

/// The built-in self-test is also a unit test: plant a violation three
/// calls deep, find it, pass the waived one, report the ambiguity.
#[test]
fn self_test_finds_the_planted_violation() {
    let evidence = self_test().expect("self-test passes");
    assert!(evidence.contains("3 calls deep"));
    assert!(evidence.contains("fix_core"));
}

/// The whole point: the real workspace, under the real policy, is
/// clean. Any future PR that adds a transitive panic/alloc/block to a
/// protected root fails here before CI even runs the binary.
#[test]
fn workspace_is_clean_under_the_checked_in_policy() {
    let root = magnon_lint::workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the analyzer lives inside the workspace");
    let policy_text = std::fs::read_to_string(root.join("analysis-policy.toml"))
        .expect("analysis-policy.toml is checked in");
    let policy = parse_policy(&policy_text).expect("policy parses");
    assert!(!policy.roots.is_empty(), "policy must declare roots");
    let sources = load_workspace(&root, &policy.ignore_files);
    assert!(sources.len() > 20, "the walk must find the crates");
    let mut analysis = analyze_sources(&sources, &policy.ignore_methods);
    let results = check_policy(&mut analysis, &policy);
    let mut rendered = String::new();
    for e in &results.errors {
        rendered.push_str(&format!("error: {e}\n"));
    }
    for r in &results.roots {
        for chain in &r.violations {
            rendered.push_str(&format!(
                "VIOLATION [{}] root {}\n{}",
                chain.fact.id(),
                r.spec.func,
                render_chain(&analysis, chain)
            ));
        }
    }
    assert!(
        results.clean(),
        "workspace must be analyzer-clean under analysis-policy.toml:\n{rendered}"
    );
}
