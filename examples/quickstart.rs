//! Quickstart: build the paper's byte-wide 3-input majority gate and
//! process eight independent data sets in a single evaluation.
//!
//! Run with: `cargo run --release --example quickstart`

use spinwave_parallel::core::prelude::*;
use spinwave_parallel::cost::{CostModel, Transducer};
use spinwave_parallel::physics::waveguide::Waveguide;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The device of the paper: a 50 nm x 1 nm FeCoB waveguide with
    //    perpendicular magnetic anisotropy (no external field needed).
    let guide = Waveguide::paper_default()?;
    println!(
        "waveguide: FeCoB {:.0}x{:.0} nm, FMR = {:.2} GHz",
        guide.width() * 1e9,
        guide.thickness() * 1e9,
        guide.fmr_frequency()? / 1e9
    );

    // 2. A byte-wide (8-channel) 3-input majority gate. Channels ride on
    //    10..80 GHz spin waves that share the waveguide but only
    //    interfere with their own frequency.
    let gate = ParallelGateBuilder::new(guide)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;
    println!(
        "gate: {} channels, {} transducers, span {:.0} nm",
        gate.word_width(),
        gate.layout().sources().len() + gate.layout().detectors().len(),
        gate.layout().span() * 1e9
    );
    // The in-line structure of the paper's Fig. 2, to scale:
    println!(
        "\n{}",
        spinwave_parallel::core::layout_report::render_layout(
            gate.channel_plan(),
            gate.layout(),
            72
        )
    );

    // 3. Evaluate: eight majority votes at once.
    let a = Word::from_u8(0b1010_1010);
    let b = Word::from_u8(0b1100_1100);
    let c = Word::from_u8(0b1111_0000);
    let out = gate.evaluate(&[a, b, c])?;
    println!("\nMAJ({a}, {b}, {c}) = {}", out.word());
    assert_eq!(out.word().to_u8(), 0b1110_1000);

    // 4. Exhaustive verification and the paper's cost comparison.
    let report = gate.verify_truth_table()?;
    println!(
        "truth table: {}/{} checks passed",
        report.checked - report.failures.len(),
        report.checked
    );
    let comparison = CostModel::new(Transducer::paper_default()).compare(&gate)?;
    println!("\n{comparison}");

    // 5. Serving many operand sets: open a session on a backend (here
    //    the precompiled truth-table cache) and evaluate a batch in one
    //    call. See examples/batch_throughput.rs for the full story.
    let mut session = gate.session(BackendChoice::Cached)?;
    let batch: Vec<OperandSet> = (0u8..16)
        .map(|i| {
            OperandSet::new(vec![
                Word::from_u8(i.wrapping_mul(37)),
                Word::from_u8(i.wrapping_mul(59)),
                Word::from_u8(i.wrapping_mul(83)),
            ])
        })
        .collect();
    let outputs = session.evaluate_batch(&batch)?;
    println!(
        "\nbatched: {} majority words through the `{}` backend",
        outputs.len(),
        session.backend_name()
    );
    Ok(())
}
