//! The paper's §V waveguide-width study from the public API: as the
//! width grows toward 500 nm the out-of-plane demagnetizing factor
//! rises, the internal field falls, and with it the ferromagnetic
//! resonance — while the gate stays functional.
//!
//! Run with: `cargo run --release --example width_scaling`

use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::dispersion::DispersionRelation;
use spinwave_parallel::physics::waveguide::Waveguide;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Waveguide::paper_default()?;
    println!("width(nm)    N_z     FMR(GHz)  lambda@10GHz(nm)  byte-gate truth table");
    let mut previous_fmr = f64::INFINITY;
    for width_nm in (50..=500).step_by(50) {
        let guide = base.with_width(width_nm as f64 * 1e-9)?;
        let fmr = guide.fmr_frequency()?;
        let lambda = guide.exchange_dispersion()?.wavelength(10.0e9)?;
        let gate = ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()?;
        let verdict = gate.verify_truth_table()?;
        println!(
            "{:>8}  {:.4}   {:>8.3}  {:>16.1}  {}",
            width_nm,
            guide.demag_factor()?,
            fmr / 1e9,
            lambda * 1e9,
            if verdict.all_passed() { "PASS" } else { "FAIL" }
        );
        assert!(fmr < previous_fmr, "FMR must decrease with width");
        assert!(verdict.all_passed());
        previous_fmr = fmr;
    }
    println!("\nFMR decreases monotonically with width; gate functional at every width —");
    println!("matching the paper's width-variation observations.");
    Ok(())
}
