//! Micromagnetic validation of parallel gates (the paper's OOMMF
//! methodology).
//!
//! [`MicromagValidator`] turns a [`ParallelGate`] into a full LLG
//! simulation: every source site becomes an [`Antenna`] at its channel
//! frequency with the encoded phase, every detector site a point
//! [`Probe`]. Decoding is differential, as in any phase-readout
//! experiment: a calibration run with all inputs at logic 0 and *direct*
//! detector placement establishes the reference phase per channel; a
//! measurement whose Goertzel phase at the channel frequency deviates by
//! more than π/2 reads logic 1. Inverted detector placements then decode
//! complemented outputs with no software negation — the half-wavelength
//! offset does it physically.

use crate::encoding::{wrap_phase, ReadoutMode};
use crate::error::GateError;
use crate::gate::ParallelGate;
use crate::truth::LogicFunction;
use crate::word::Word;
use magnon_math::constants::NM;
use magnon_math::spectrum::TimeSeries;
use magnon_micromag::absorber::Absorber;
use magnon_micromag::probe::Probe;
use magnon_micromag::sim::SimulationBuilder;
use magnon_micromag::source::Antenna;

/// Tunable simulation parameters for gate validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationSettings {
    /// Mesh cell size along the guide (default: min wavelength / 20,
    /// capped at 2 nm).
    pub cell_size: Option<f64>,
    /// Total simulated time (default: 4 transit times + 1 ns, min 2 ns).
    pub duration: Option<f64>,
    /// Fraction of the duration discarded as transient before spectral
    /// analysis (default 0.5).
    pub analysis_start_fraction: f64,
    /// Peak antenna field in A/m for a unit-amplitude source (default
    /// 5 kA/m — small-signal linear regime).
    pub drive_field: f64,
    /// Absorber length at each waveguide end (default 120 nm).
    pub absorber_length: f64,
    /// Free margin between absorbers and the first/last transducer
    /// (default 40 nm).
    pub margin: f64,
}

impl Default for ValidationSettings {
    fn default() -> Self {
        ValidationSettings {
            cell_size: None,
            duration: None,
            analysis_start_fraction: 0.5,
            drive_field: 5.0e3,
            absorber_length: 120.0 * NM,
            margin: 40.0 * NM,
        }
    }
}

/// One validated reading: the decoded word plus per-channel diagnostics
/// and raw detector traces.
#[derive(Debug, Clone)]
pub struct MicromagReading {
    /// Decoded output word.
    pub word: Word,
    /// Per-channel tone amplitude at the detector (Mx/Ms units).
    pub amplitudes: Vec<f64>,
    /// Per-channel phase difference vs the calibration run, wrapped to
    /// `(-π, π]`.
    pub phase_deltas: Vec<f64>,
    /// Raw detector traces, one per channel.
    pub series: Vec<TimeSeries>,
}

/// Micromagnetic gate validator with cached calibration.
#[derive(Debug, Clone)]
pub struct MicromagValidator<'g> {
    gate: &'g ParallelGate,
    settings: ValidationSettings,
    /// Per-channel calibration: (reference phase, reference amplitude).
    calibration: Option<Vec<(f64, f64)>>,
}

impl<'g> MicromagValidator<'g> {
    /// Creates a validator for `gate` with default settings.
    pub fn new(gate: &'g ParallelGate) -> Self {
        MicromagValidator {
            gate,
            settings: ValidationSettings::default(),
            calibration: None,
        }
    }

    /// Creates a validator with custom settings.
    pub fn with_settings(gate: &'g ParallelGate, settings: ValidationSettings) -> Self {
        MicromagValidator {
            gate,
            settings,
            calibration: None,
        }
    }

    /// The settings in effect.
    pub fn settings(&self) -> &ValidationSettings {
        &self.settings
    }

    /// The cached per-channel calibration `(reference phase, reference
    /// amplitude)`, if [`MicromagValidator::calibrate`] has run.
    ///
    /// Together with [`MicromagValidator::import_calibration`] this lets
    /// an owner (e.g. [`crate::backend::MicromagBackend`]) persist the
    /// expensive all-zeros run across validator instances.
    pub fn export_calibration(&self) -> Option<Vec<(f64, f64)>> {
        self.calibration.clone()
    }

    /// Installs a previously exported calibration, skipping the
    /// calibration simulation.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InputCountMismatch`] when the calibration
    /// does not cover exactly one entry per channel.
    pub fn import_calibration(&mut self, calibration: Vec<(f64, f64)>) -> Result<(), GateError> {
        if calibration.len() != self.gate.word_width() {
            return Err(GateError::InputCountMismatch {
                expected: self.gate.word_width(),
                actual: calibration.len(),
            });
        }
        self.calibration = Some(calibration);
        Ok(())
    }

    fn cell_size(&self) -> f64 {
        self.settings
            .cell_size
            .unwrap_or_else(|| (self.gate.channel_plan().min_wavelength() / 20.0).min(2.0 * NM))
    }

    fn duration(&self) -> f64 {
        self.settings.duration.unwrap_or_else(|| {
            // Slowest transit from first source to last detector.
            let span = self.gate.layout().span();
            let v_min = self
                .gate
                .channel_plan()
                .channels()
                .iter()
                .map(|c| c.group_velocity)
                .fold(f64::INFINITY, f64::min);
            (4.0 * span / v_min + 1.0e-9).max(2.0e-9)
        })
    }

    /// Offset added to every transducer coordinate so the layout sits
    /// between the absorbers.
    fn x_offset(&self) -> f64 {
        self.settings.absorber_length + self.settings.margin - self.gate.layout().start()
    }

    fn sim_length(&self) -> f64 {
        self.gate.layout().span()
            + 2.0 * (self.settings.absorber_length + self.settings.margin)
            + self.gate.layout().spec().transducer_width
    }

    /// Builds and runs one simulation with the given per-(channel,input)
    /// bits; probes at `detector_positions` (already offset).
    fn run_once(
        &self,
        bits: &dyn Fn(usize, usize) -> bool,
        detector_positions: &[f64],
    ) -> Result<Vec<TimeSeries>, GateError> {
        let gate = self.gate;
        let offset = self.x_offset();
        let width = gate.layout().spec().transducer_width;
        let mut builder = SimulationBuilder::new(*gate.waveguide(), self.sim_length())?
            .cell_size(self.cell_size())?
            .duration(self.duration())?
            .absorber(Some(Absorber::new(self.settings.absorber_length, 0.5)?));
        // One antenna per source site; amplitudes follow the gate's
        // energy schedule, phases the encoded bits, with a two-period
        // ramp to soften the switch-on transient.
        for src in gate.layout().sources() {
            let ch = &gate.channel_plan().channels()[src.channel];
            let amplitude = gate.schedule().amplitudes_for_channel(src.channel)[src.input]
                * self.settings.drive_field;
            let phase = crate::encoding::phase_of(bits(src.channel, src.input));
            let antenna = Antenna::new(
                src.position + offset - width / 2.0,
                width,
                ch.frequency,
                amplitude,
                phase,
            )?
            .with_ramp(2.0 / ch.frequency)?;
            builder = builder.add_antenna(antenna);
        }
        for &pos in detector_positions {
            builder = builder.add_probe(Probe::point(pos));
        }
        let output = builder.run()?;
        Ok(output.into_series())
    }

    fn analyze(&self, series: &[TimeSeries]) -> Result<Vec<(f64, f64)>, GateError> {
        let start = self.duration() * self.settings.analysis_start_fraction;
        let mut out = Vec::with_capacity(series.len());
        for (c, s) in series.iter().enumerate() {
            let steady = s.after(start)?;
            let f = self.gate.channel_plan().channels()[c].frequency;
            let tone = steady.goertzel(f)?;
            out.push((tone.arg(), tone.abs()));
        }
        Ok(out)
    }

    /// Runs the calibration (all inputs logic 0, detectors at direct
    /// positions) if not already cached.
    ///
    /// # Errors
    ///
    /// Propagates simulation and analysis errors.
    pub fn calibrate(&mut self) -> Result<(), GateError> {
        if self.calibration.is_some() {
            return Ok(());
        }
        let offset = self.x_offset();
        // Direct-readout reference positions: for direct channels this
        // is the detector itself; for inverted channels, the point half
        // a wavelength *before* the detector reads the direct phase.
        let positions: Vec<f64> = self
            .gate
            .layout()
            .detectors()
            .iter()
            .map(|d| {
                let lambda = self.gate.channel_plan().channels()[d.channel].wavelength;
                let shift = match d.mode {
                    ReadoutMode::Direct => 0.0,
                    ReadoutMode::Inverted => -0.5 * lambda,
                };
                d.position + shift + offset
            })
            .collect();
        let series = self.run_once(&|_, _| false, &positions)?;
        self.calibration = Some(self.analyze(&series)?);
        Ok(())
    }

    /// Evaluates the gate micromagnetically on the given input words.
    ///
    /// The first call triggers an extra calibration simulation; it is
    /// cached for subsequent calls.
    ///
    /// # Errors
    ///
    /// * Operand shape errors as in [`ParallelGate::evaluate`].
    /// * Simulation errors from the LLG substrate.
    pub fn evaluate(&mut self, inputs: &[Word]) -> Result<MicromagReading, GateError> {
        let n = self.gate.word_width();
        let m = self.gate.input_count();
        if inputs.len() != m {
            return Err(GateError::InputCountMismatch {
                expected: m,
                actual: inputs.len(),
            });
        }
        for w in inputs {
            if w.width() != n {
                return Err(GateError::WordWidthMismatch {
                    expected: n,
                    actual: w.width(),
                });
            }
        }
        self.calibrate()?;
        let calibration = self.calibration.as_ref().expect("calibrated above").clone();

        let offset = self.x_offset();
        let positions: Vec<f64> = self
            .gate
            .layout()
            .detectors()
            .iter()
            .map(|d| d.position + offset)
            .collect();
        let bit_table: Vec<Vec<bool>> = (0..n)
            .map(|c| (0..m).map(|j| inputs[j].bit(c).unwrap_or(false)).collect())
            .collect();
        let series = self.run_once(&|c, j| bit_table[c][j], &positions)?;
        let measured = self.analyze(&series)?;

        let mut word = Word::zeros(n)?;
        let mut amplitudes = Vec::with_capacity(n);
        let mut phase_deltas = Vec::with_capacity(n);
        for c in 0..n {
            let (phase, amplitude) = measured[c];
            let (ref_phase, ref_amplitude) = calibration[c];
            let delta = wrap_phase(phase - ref_phase);
            let logic = match self.gate.function() {
                LogicFunction::Majority => delta.cos() < 0.0,
                LogicFunction::Xor => {
                    let bit = amplitude < 0.5 * ref_amplitude;
                    match self.gate.readout()[c] {
                        ReadoutMode::Direct => bit,
                        ReadoutMode::Inverted => !bit,
                    }
                }
            };
            word = word.with_bit(c, logic)?;
            amplitudes.push(amplitude);
            phase_deltas.push(delta);
        }
        Ok(MicromagReading {
            word,
            amplitudes,
            phase_deltas,
            series,
        })
    }

    /// Convenience: evaluates and compares against the analytic engine.
    ///
    /// Returns `(micromagnetic, analytic)` words.
    ///
    /// # Errors
    ///
    /// Propagates errors from either path.
    pub fn cross_check(&mut self, inputs: &[Word]) -> Result<(Word, Word), GateError> {
        let analytic = self.gate.evaluate(inputs)?.word();
        let micromag = self.evaluate(inputs)?.word;
        Ok((micromag, analytic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::ParallelGateBuilder;
    use magnon_math::constants::GHZ;
    use magnon_physics::waveguide::Waveguide;

    /// A reduced gate that keeps micromagnetic tests fast: 2 channels,
    /// low frequencies (long wavelengths → coarse 2 nm mesh is fine).
    fn small_gate() -> ParallelGate {
        ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(2)
            .inputs(3)
            .base_frequency(10.0 * GHZ)
            .frequency_step(10.0 * GHZ)
            .build()
            .unwrap()
    }

    fn fast_settings() -> ValidationSettings {
        ValidationSettings {
            cell_size: Some(2.0e-9),
            duration: Some(2.0e-9),
            ..ValidationSettings::default()
        }
    }

    #[test]
    fn settings_defaults_are_sane() {
        let gate = small_gate();
        let v = MicromagValidator::new(&gate);
        assert!(v.cell_size() <= 2.0e-9);
        assert!(v.duration() >= 2.0e-9);
        assert!(v.sim_length() > gate.layout().span());
        assert!(v.x_offset() > 0.0);
    }

    #[test]
    fn operand_validation() {
        let gate = small_gate();
        let mut v = MicromagValidator::with_settings(&gate, fast_settings());
        assert!(matches!(
            v.evaluate(&[Word::zeros(2).unwrap()]),
            Err(GateError::InputCountMismatch { .. })
        ));
        let wrong = Word::zeros(5).unwrap();
        assert!(matches!(
            v.evaluate(&[wrong, wrong, wrong]),
            Err(GateError::WordWidthMismatch { .. })
        ));
    }

    // Full micromagnetic majority validation lives in the workspace
    // integration tests (tests/micromag_validation.rs) because a single
    // simulation takes seconds; here we exercise the plumbing with the
    // cheapest possible configuration.
    #[test]
    fn calibration_runs_and_caches() {
        let gate = small_gate();
        let mut v = MicromagValidator::with_settings(&gate, fast_settings());
        v.calibrate().unwrap();
        assert!(v.calibration.is_some());
        let snapshot = v.calibration.clone();
        v.calibrate().unwrap(); // cached: no change
        assert_eq!(
            v.calibration.as_ref().unwrap().len(),
            snapshot.as_ref().unwrap().len()
        );
        // Calibration amplitudes must be clearly above numerical noise.
        for (_, amp) in v.calibration.as_ref().unwrap() {
            assert!(*amp > 1e-6, "calibration amplitude too small: {amp}");
        }
    }
}
