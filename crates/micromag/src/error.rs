//! Error type for the micromagnetic simulator.

use magnon_math::MathError;
use magnon_physics::PhysicsError;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A geometric or temporal parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A region (antenna, probe, absorber) does not fit in the mesh.
    RegionOutOfBounds {
        /// Description of the region.
        what: &'static str,
        /// Requested position or extent in metres.
        requested: f64,
        /// Available mesh length in metres.
        available: f64,
    },
    /// The simulation was asked to run with no probes or no duration.
    NothingToDo,
    /// The time step exceeds the explicit-integration stability limit.
    UnstableTimeStep {
        /// Requested step in seconds.
        requested: f64,
        /// Largest stable step in seconds.
        limit: f64,
    },
    /// The magnetization diverged (NaN/∞) during integration.
    Diverged {
        /// Simulation time at which divergence was detected, in seconds.
        at_time: f64,
    },
    /// An underlying physics computation failed.
    Physics(PhysicsError),
    /// An underlying numerical routine failed.
    Math(MathError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { parameter, value } => {
                write!(f, "parameter `{parameter}` is invalid: {value}")
            }
            SimError::RegionOutOfBounds {
                what,
                requested,
                available,
            } => {
                write!(
                    f,
                    "{what} at {requested:.3e} m does not fit in a mesh of length {available:.3e} m"
                )
            }
            SimError::NothingToDo => write!(f, "simulation has no probes or zero duration"),
            SimError::UnstableTimeStep { requested, limit } => {
                write!(
                    f,
                    "time step {requested:.3e} s exceeds the stability limit {limit:.3e} s"
                )
            }
            SimError::Diverged { at_time } => {
                write!(f, "magnetization diverged at t = {at_time:.3e} s")
            }
            SimError::Physics(e) => write!(f, "physics error: {e}"),
            SimError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Physics(e) => Some(e),
            SimError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysicsError> for SimError {
    fn from(e: PhysicsError) -> Self {
        SimError::Physics(e)
    }
}

impl From<MathError> for SimError {
    fn from(e: MathError) -> Self {
        SimError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::NothingToDo.to_string().contains("no probes"));
        let e = SimError::UnstableTimeStep {
            requested: 1e-12,
            limit: 1e-13,
        };
        assert!(e.to_string().contains("stability"));
    }

    #[test]
    fn conversions() {
        let e: SimError = PhysicsError::NotPerpendicular {
            internal_field: -1.0,
        }
        .into();
        assert!(matches!(e, SimError::Physics(_)));
        let e: SimError = MathError::EmptyInput.into();
        assert!(matches!(e, SimError::Math(_)));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = SimError::Physics(PhysicsError::NotPerpendicular {
            internal_field: -1.0,
        });
        assert!(e.source().is_some());
        assert!(SimError::NothingToDo.source().is_none());
    }
}
