//! The machine-readable JSON report: graph size, per-root verdicts
//! with call chains, the full waiver inventory, and every ambiguity.
//! Hand-rolled emitter — the toolchain takes no external deps.

use crate::{Analysis, Fact, Policy, PolicyResults};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: impl Iterator<Item = String>) -> String {
    let inner: Vec<String> = items.map(|s| format!("\"{}\"", esc(&s))).collect();
    format!("[{}]", inner.join(", "))
}

/// Renders the full report as a JSON object.
pub fn render_json(analysis: &Analysis, policy: &Policy, results: &PolicyResults) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files\": {},\n", analysis.files));
    out.push_str(&format!("  \"functions\": {},\n", analysis.fns.len()));
    out.push_str(&format!("  \"edges\": {},\n", analysis.edges.len()));
    out.push_str(&format!(
        "  \"calls\": {{\"resolved\": {}, \"external\": {}, \"ambiguous\": {}}},\n",
        analysis.resolved_calls,
        analysis.external_calls,
        analysis.ambiguities.len()
    ));
    // Per-fact totals: how much of the graph carries each fact.
    out.push_str("  \"fact_totals\": {");
    let totals: Vec<String> = Fact::ALL
        .iter()
        .map(|f| {
            format!(
                "\"{}\": {}",
                f.id(),
                analysis.can[f.index()].iter().filter(|&&b| b).count()
            )
        })
        .collect();
    out.push_str(&totals.join(", "));
    out.push_str("},\n");
    // Roots.
    out.push_str("  \"roots\": [\n");
    let roots: Vec<String> = results
        .roots
        .iter()
        .map(|r| {
            let status = if r.fn_idx.is_none() {
                "unresolved"
            } else if r.violations.is_empty() {
                "clean"
            } else {
                "violated"
            };
            let violations: Vec<String> = r
                .violations
                .iter()
                .map(|chain| {
                    let hops: Vec<String> = chain
                        .hops
                        .iter()
                        .map(|h| {
                            let f = &analysis.fns[h.fn_idx];
                            format!(
                                "{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                                esc(&f.id),
                                esc(&f.file),
                                h.via_line.unwrap_or(f.line)
                            )
                        })
                        .collect();
                    let last = &analysis.fns[chain.hops.last().map(|h| h.fn_idx).unwrap_or(0)];
                    format!(
                        "{{\"rule\": \"{}\", \"chain\": [{}], \"site\": {{\"token\": \"{}\", \"file\": \"{}\", \"line\": {}}}}}",
                        chain.fact.id(),
                        hops.join(", "),
                        esc(&chain.site_token),
                        esc(&last.file),
                        chain.site_line
                    )
                })
                .collect();
            format!(
                "    {{\"fn\": \"{}\", \"deny\": {}, \"status\": \"{}\", \"reachable\": {}, \"violations\": [{}]}}",
                esc(&r.spec.func),
                str_array(r.spec.deny.iter().map(|f| f.id().to_string())),
                status,
                r.reachable,
                violations.join(", ")
            )
        })
        .collect();
    out.push_str(&roots.join(",\n"));
    out.push_str("\n  ],\n");
    // Waiver inventory: every site waiver plus the policy trust list.
    out.push_str("  \"waivers\": [\n");
    let waivers: Vec<String> = analysis
        .waiver_decls
        .iter()
        .map(|w| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
                esc(&w.file),
                w.line,
                esc(&w.rule),
                esc(&w.reason)
            )
        })
        .collect();
    out.push_str(&waivers.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"trust\": [\n");
    let trust: Vec<String> = policy
        .trust
        .iter()
        .map(|t| {
            format!(
                "    {{\"fn\": \"{}\", \"rules\": {}, \"reason\": \"{}\"}}",
                esc(&t.func),
                str_array(t.rules.iter().map(|f| f.id().to_string())),
                esc(&t.reason)
            )
        })
        .collect();
    out.push_str(&trust.join(",\n"));
    out.push_str("\n  ],\n");
    // Ambiguities: reported, never dropped.
    out.push_str("  \"ambiguities\": [\n");
    let ambs: Vec<String> = analysis
        .ambiguities
        .iter()
        .map(|a| {
            format!(
                "    {{\"caller\": \"{}\", \"file\": \"{}\", \"line\": {}, \"call\": \"{}\", \"candidates\": {}}}",
                esc(&a.caller),
                esc(&a.file),
                a.line,
                esc(&a.call),
                str_array(a.candidates.iter().cloned())
            )
        })
        .collect();
    out.push_str(&ambs.join(",\n"));
    out.push_str("\n  ],\n");
    // The deadlock report: lock classes, computed order edges with
    // witnesses, declared order, and every lock violation.
    out.push_str("  \"locks\": {\n");
    out.push_str("    \"classes\": [\n");
    let classes: Vec<String> = policy
        .locks
        .iter()
        .map(|l| {
            format!(
                "      {{\"class\": \"{}\", \"receivers\": {}, \"acquire_fns\": {}, \"crate\": \"{}\", \"reentrant\": {}, \"before\": {}, \"reason\": \"{}\"}}",
                esc(&l.class),
                str_array(l.receivers.iter().cloned()),
                str_array(l.acquire_fns.iter().cloned()),
                esc(&l.crate_scope),
                l.reentrant,
                str_array(l.before.iter().cloned()),
                esc(&l.reason)
            )
        })
        .collect();
    out.push_str(&classes.join(",\n"));
    out.push_str("\n    ],\n");
    out.push_str(&format!(
        "    \"classified_sites\": {},\n",
        results.lock.classified_sites
    ));
    out.push_str(&format!(
        "    \"unclassified\": {},\n",
        str_array(results.lock.unclassified.iter().cloned())
    ));
    out.push_str("    \"edges\": [\n");
    let lock_edges: Vec<String> = results
        .lock
        .edges
        .iter()
        .map(|e| {
            let holder = &analysis.fns[e.holder];
            let hops: Vec<String> = e
                .hops
                .iter()
                .map(|&(f, line)| {
                    format!(
                        "{{\"fn\": \"{}\", \"call_line\": {}}}",
                        esc(&analysis.fns[f].id),
                        line
                    )
                })
                .collect();
            format!(
                "      {{\"from\": \"{}\", \"to\": \"{}\", \"holder\": \"{}\", \"file\": \"{}\", \"hold_line\": {}, \"acquire_line\": {}, \"hops\": [{}]}}",
                esc(&results.lock.class_names[e.from]),
                esc(&results.lock.class_names[e.to]),
                esc(&holder.id),
                esc(&holder.file),
                e.hold_line,
                e.acquire_line,
                hops.join(", ")
            )
        })
        .collect();
    out.push_str(&lock_edges.join(",\n"));
    out.push_str("\n    ],\n");
    out.push_str(&format!(
        "    \"declared_order\": [{}],\n",
        results
            .lock
            .declared
            .iter()
            .map(|(a, b)| format!("[\"{}\", \"{}\"]", esc(a), esc(b)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("    \"acyclic\": {},\n", results.lock.acyclic()));
    out.push_str("    \"violations\": [\n");
    let lock_violations: Vec<String> = results
        .lock
        .violations
        .iter()
        .map(|v| {
            format!(
                "      {{\"kind\": \"{}\", \"classes\": {}, \"detail\": \"{}\"}}",
                v.kind,
                str_array(v.classes.iter().cloned()),
                esc(&v.detail)
            )
        })
        .collect();
    out.push_str(&lock_violations.join(",\n"));
    out.push_str("\n    ]\n");
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"errors\": {}\n",
        str_array(results.errors.iter().cloned())
    ));
    out.push_str("}\n");
    out
}
