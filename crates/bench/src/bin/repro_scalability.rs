//! SCALE — reproduces the paper's §V scalability discussion: as the
//! channel count grows the gate lengthens, damping losses grow, and
//! sources must be driven at graded energies
//! `E(I_1) > E(I_2) > … > E(I_m)` to keep the vote balanced.
//!
//! Prints gate span, worst-case arrival decay and the required
//! drive-amplitude spread per channel count, and verifies that every
//! configuration still decodes its full truth table with the equalising
//! schedule. Writes `results/scalability.csv`.
//!
//! Usage: `cargo run --release -p magnon-bench --bin repro_scalability`

use magnon_bench::{combo_operand_sets, fmt_sci, results_dir, write_csv};
use magnon_core::backend::BackendChoice;
use magnon_core::gate::ParallelGateBuilder;
use magnon_core::scalability::scalability_sweep;
use magnon_core::truth::LogicFunction;
use magnon_math::constants::GHZ;
use magnon_physics::waveguide::Waveguide;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let guide = Waveguide::paper_default()?;
    let counts = [2usize, 3, 4, 6, 8, 10, 12, 14, 16];
    // 16 channels at 10 GHz spacing would reach 170 GHz; keep the
    // paper's 10 GHz start but pack at 5 GHz beyond n=8 feasibility.
    let points = scalability_sweep(&guide, 3, &counts, 10.0 * GHZ, 5.0 * GHZ)?;

    println!("SCALE: channel-count sweep (3-input majority, 10 GHz start, 5 GHz spacing)");
    println!(
        "\n{:>9} {:>10} {:>14} {:>18} {:>12} {:>10}",
        "channels", "span(nm)", "worst decay", "amplitude spread", "truth table", "backends"
    );
    let mut rows = Vec::new();
    let mut all_pass = true;
    for p in &points {
        let gate = ParallelGateBuilder::new(guide)
            .channels(p.channels)
            .inputs(3)
            .function(LogicFunction::Majority)
            .base_frequency(10.0 * GHZ)
            .frequency_step(5.0 * GHZ)
            .build()?;
        let report = gate.verify_truth_table()?;
        all_pass &= report.all_passed();
        // Every gate in the sweep must also decode identically through
        // the cached (LUT) backend — one batch covers all combinations.
        let sets = combo_operand_sets(3, p.channels)?;
        let mut cached = gate.session(BackendChoice::Cached)?;
        let batch = cached.evaluate_batch(&sets)?;
        let mut backends_agree = true;
        for (set, out) in sets.iter().zip(&batch) {
            backends_agree &= out.word() == gate.evaluate(set.words())?.word();
        }
        all_pass &= backends_agree;
        println!(
            "{:>9} {:>10.0} {:>14.4} {:>18.4} {:>12} {:>10}",
            p.channels,
            p.span * 1e9,
            p.worst_decay,
            p.amplitude_spread,
            if report.all_passed() { "PASS" } else { "FAIL" },
            if backends_agree { "AGREE" } else { "DIVERGE" }
        );
        rows.push(vec![
            p.channels.to_string(),
            fmt_sci(p.span),
            fmt_sci(p.worst_decay),
            fmt_sci(p.amplitude_spread),
            report.all_passed().to_string(),
            backends_agree.to_string(),
        ]);
    }

    // The paper's qualitative claims, checked quantitatively.
    let spans_grow = points.windows(2).all(|w| w[1].span >= w[0].span);
    let spread_grows = points
        .windows(2)
        .all(|w| w[1].amplitude_spread >= w[0].amplitude_spread - 1e-9);

    let dir = results_dir();
    write_csv(
        &dir.join("scalability.csv"),
        &[
            "channels",
            "span_m",
            "worst_decay",
            "amplitude_spread",
            "truth_table_pass",
            "backends_agree",
        ],
        &rows,
    )?;
    println!("\nwrote {}/scalability.csv", dir.display());
    println!(
        "SCALE {}",
        if all_pass && spans_grow && spread_grows {
            "PASS: span and required input-energy grading grow monotonically; all gates decode correctly"
        } else {
            "FAIL"
        }
    );
    if !(all_pass && spans_grow && spread_grows) {
        std::process::exit(1);
    }
    Ok(())
}
