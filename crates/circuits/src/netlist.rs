//! Word-level netlists of data-parallel gates.
//!
//! Circuits evaluate on two levels:
//!
//! * [`Circuit::evaluate`] — the boolean reference semantics (bitwise
//!   MAJ/XOR), used as the specification;
//! * [`Circuit::evaluate_with`] / [`Circuit::evaluate_batch_with`] —
//!   every MAJ/XOR node routed through a *physical* data-parallel
//!   spin-wave gate via a [`GateBank`]. The bank holds one
//!   [`GateSession`] per gate shape, so switching a whole circuit from
//!   analytic to cached to micromagnetic evaluation is the one-line
//!   change of its [`BackendChoice`].
//!
//! The physical path is abstracted behind [`GateDispatcher`]: a
//! [`GateBank`] dispatches inline on its own sessions, while the
//! `magnon-serve` crate's `ScheduledBank` submits the same per-node
//! batches to a sharded scheduler, so whole circuits (adders, ALUs,
//! parity trees) ride cross-request coalescing without knowing it.

use magnon_core::backend::{BackendChoice, GateSession, OperandSet};
use magnon_core::gate::{GateOutput, ParallelGateBuilder};
use magnon_core::truth::LogicFunction;
use magnon_core::word::Word;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;

/// The two physical gate shapes a netlist lowers to: 3-input majority
/// and 2-input XOR (inversions are free detector placements, constants
/// and inputs pass through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateShape {
    /// 3-input majority.
    Maj3,
    /// 2-input XOR.
    Xor2,
}

impl GateShape {
    /// The logic function of the shape.
    pub fn function(self) -> LogicFunction {
        match self {
            GateShape::Maj3 => LogicFunction::Majority,
            GateShape::Xor2 => LogicFunction::Xor,
        }
    }

    /// Operand count `m` of the shape.
    pub fn input_count(self) -> usize {
        match self {
            GateShape::Maj3 => 3,
            GateShape::Xor2 => 2,
        }
    }
}

/// Evaluates batches of physical gate invocations on behalf of a
/// [`Circuit`] walk.
///
/// Implementations decide *where* the work runs: [`GateBank`] evaluates
/// inline on per-shape [`GateSession`]s; the `magnon-serve` scheduler
/// fans the same batches out across worker shards and coalesces them
/// with unrelated traffic.
pub trait GateDispatcher {
    /// Word width every dispatched gate carries.
    fn width(&self) -> usize;

    /// Evaluates `batch` on the physical gate of `shape`, preserving
    /// order.
    ///
    /// # Errors
    ///
    /// Gate-construction, operand-shape and backend errors.
    fn dispatch(
        &mut self,
        shape: GateShape,
        batch: &[OperandSet],
    ) -> Result<Vec<GateOutput>, GateError>;

    /// Traffic this dispatcher has carried so far (all zero for
    /// implementations that do not track it).
    fn dispatch_stats(&self) -> DispatchStats {
        DispatchStats::default()
    }
}

/// Counters a [`GateDispatcher`] keeps about the traffic it carried —
/// the circuit-side view of how much physical gate work an evaluation
/// generated (and, for scheduled dispatchers, how much of it could
/// coalesce downstream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// [`GateDispatcher::dispatch`] calls issued (one per circuit node
    /// per batch).
    pub dispatch_calls: u64,
    /// Operand sets carried across those calls.
    pub sets_dispatched: u64,
}

/// Channel spacing that keeps `width` channels inside the paper's
/// 10–80 GHz style window (10 GHz spacing up to 8 channels, then packed
/// tighter).
pub fn packed_frequency_step(width: usize) -> f64 {
    let ghz = 1.0e9;
    match width {
        0..=8 => 10.0 * ghz,
        9..=16 => 5.0 * ghz,
        _ => 2.5 * ghz,
    }
}

/// Base frequency of FDM lane `lane` for `width`-channel gates built on
/// the [`packed_frequency_step`] grid.
///
/// Lane 0 keeps the paper's 10 GHz base; each further lane shifts up by
/// the full occupied band plus one extra channel step, so adjacent
/// lanes stay disjoint with a two-step guard band between the last
/// channel of one lane and the first channel of the next — the
/// frequency-division multiplexing layout of the companion paper
/// (arXiv:2008.12220) that lets several circuits' gates share one
/// physical waveguide.
pub fn fdm_lane_base(lane: u16, width: usize) -> f64 {
    10.0e9 + f64::from(lane) * (width as f64 + 1.0) * packed_frequency_step(width)
}

/// Guard band the [`fdm_lane_base`] grid guarantees between the last
/// occupied channel of one lane and the first channel of the next.
///
/// Lane `l` occupies `base(l) .. base(l) + (width-1)·step` and lane
/// `l+1` starts at `base(l) + (width+1)·step`, so exactly two channel
/// steps of clear spectrum separate consecutive lanes — derived from
/// [`packed_frequency_step`], never from a fixed 10 GHz/100 GHz
/// constant, so the guarantee holds at every width the packed grid
/// supports. Placers packing gates onto FDM lanes may rely on this
/// spacing (and should still verify built [`ChannelPlan`]s with
/// [`ChannelPlan::overlaps`] / [`ChannelPlan::guard_band_to`]).
///
/// [`ChannelPlan`]: magnon_core::channel::ChannelPlan
/// [`ChannelPlan::overlaps`]: magnon_core::channel::ChannelPlan::overlaps
/// [`ChannelPlan::guard_band_to`]:
///     magnon_core::channel::ChannelPlan::guard_band_to
pub fn fdm_lane_guard_band(width: usize) -> f64 {
    2.0 * packed_frequency_step(width)
}

/// Handle to a node in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Position of the node in its circuit's topological node order
    /// (nodes only reference strictly smaller indices).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circuit node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Node {
    /// External input with its operand index.
    Input(usize),
    /// A constant word.
    Constant(Word),
    /// 3-input majority (one data-parallel MAJ gate).
    Maj3(NodeId, NodeId, NodeId),
    /// 2-input XOR (one data-parallel XOR gate).
    Xor2(NodeId, NodeId),
    /// Complement — free in hardware via inverted readout (paper §III),
    /// so it is not counted as a gate.
    Not(NodeId),
}

/// Public view of one circuit node — the IR surface compilers walk
/// (via [`Circuit::node_kind`] / [`Circuit::node_kinds`]) to levelize,
/// place and schedule a netlist without re-deriving its structure from
/// evaluation traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// External input with its operand index.
    Input {
        /// Position in the evaluation operand list.
        index: usize,
    },
    /// A constant word.
    Constant(Word),
    /// 3-input majority gate over three earlier nodes.
    Maj3(NodeId, NodeId, NodeId),
    /// 2-input XOR gate over two earlier nodes.
    Xor2(NodeId, NodeId),
    /// Free inversion (inverted readout) of an earlier node.
    Not(NodeId),
}

impl NodeKind {
    /// The physical gate shape this node lowers to, or `None` for the
    /// free node kinds (inputs, constants, inverted readouts).
    pub fn gate_shape(&self) -> Option<GateShape> {
        match self {
            NodeKind::Maj3(..) => Some(GateShape::Maj3),
            NodeKind::Xor2(..) => Some(GateShape::Xor2),
            _ => None,
        }
    }

    /// The earlier nodes this node reads, in operand order (duplicates
    /// preserved — `MAJ(a, a, b)` lists `a` twice).
    pub fn operands(&self) -> Vec<NodeId> {
        match *self {
            NodeKind::Input { .. } | NodeKind::Constant(_) => Vec::new(),
            NodeKind::Maj3(a, b, c) => vec![a, b, c],
            NodeKind::Xor2(a, b) => vec![a, b],
            NodeKind::Not(a) => vec![a],
        }
    }
}

/// Gate-type counts of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Number of 3-input majority gates.
    pub maj3: usize,
    /// Number of 2-input XOR gates.
    pub xor2: usize,
    /// Number of inversions (free: realised by detector placement).
    pub not: usize,
}

impl GateCounts {
    /// Total transducer count: `4` per MAJ-3 (3 sources + 1 detector),
    /// `3` per XOR-2; inversions reuse their gate's detector.
    pub fn transducers(&self) -> usize {
        4 * self.maj3 + 3 * self.xor2
    }
}

/// Physical gate sessions backing a circuit's node types.
///
/// Each distinct gate shape (3-input majority, 2-input XOR) is built
/// lazily as one data-parallel [`magnon_core::gate::ParallelGate`] and
/// wrapped in a [`GateSession`] on the bank's backend. Inversions stay
/// free (inverted readout), constants and inputs pass through.
///
/// # Examples
///
/// ```
/// use magnon_circuits::netlist::{Circuit, GateBank};
/// use magnon_core::backend::BackendChoice;
/// use magnon_core::word::Word;
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new(8)?;
/// let a = c.input();
/// let b = c.input();
/// let x = c.xor2(a, b)?;
/// c.mark_output(x)?;
///
/// // The one line that selects the evaluation engine:
/// let mut bank = GateBank::new(Waveguide::paper_default()?, 8, BackendChoice::Cached);
/// let out = c.evaluate_with(&mut bank, &[Word::from_u8(0xF0), Word::from_u8(0xAA)])?;
/// assert_eq!(out[0].to_u8(), 0x5A);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GateBank {
    waveguide: Waveguide,
    width: usize,
    choice: BackendChoice,
    maj3: Option<GateSession>,
    xor2: Option<GateSession>,
    dispatch_calls: u64,
    sets_dispatched: u64,
}

impl GateBank {
    /// Creates a bank of `width`-channel gates on `waveguide`,
    /// evaluating through `choice`'s backend.
    ///
    /// Gates use the paper's default frequency plan (10 GHz base) with
    /// the channel spacing packed automatically for widths beyond 8;
    /// build [`GateBank::with_sessions`] for full control.
    pub fn new(waveguide: Waveguide, width: usize, choice: BackendChoice) -> Self {
        GateBank {
            waveguide,
            width,
            choice,
            maj3: None,
            xor2: None,
            dispatch_calls: 0,
            sets_dispatched: 0,
        }
    }

    /// Assembles a bank from pre-built sessions (custom frequency plans,
    /// layouts or backends). Either session may be omitted if the
    /// circuit never uses that gate shape; a slot the circuit *does*
    /// reach but was not provided is built lazily on `choice`'s
    /// backend, like [`GateBank::new`] would.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::WordWidthMismatch`] when the sessions'
    /// word widths disagree, and [`GateError::UnsupportedFunction`]
    /// when a session's gate computes the wrong function or operand
    /// count for its slot.
    pub fn with_sessions(
        waveguide: Waveguide,
        choice: BackendChoice,
        maj3: Option<GateSession>,
        xor2: Option<GateSession>,
    ) -> Result<Self, GateError> {
        let widths: Vec<usize> = maj3
            .iter()
            .chain(xor2.iter())
            .map(|s| s.gate().word_width())
            .collect();
        let Some(&width) = widths.first() else {
            return Err(GateError::UnsupportedFunction {
                reason: "a gate bank needs at least one session",
            });
        };
        if widths.iter().any(|&w| w != width) {
            return Err(GateError::WordWidthMismatch {
                expected: width,
                actual: widths[1],
            });
        }
        if let Some(s) = &maj3 {
            if s.gate().function() != LogicFunction::Majority || s.gate().input_count() != 3 {
                return Err(GateError::UnsupportedFunction {
                    reason: "maj3 slot requires a 3-input majority gate",
                });
            }
        }
        if let Some(s) = &xor2 {
            if s.gate().function() != LogicFunction::Xor || s.gate().input_count() != 2 {
                return Err(GateError::UnsupportedFunction {
                    reason: "xor2 slot requires a 2-input XOR gate",
                });
            }
        }
        Ok(GateBank {
            waveguide,
            width,
            choice,
            maj3,
            xor2,
            dispatch_calls: 0,
            sets_dispatched: 0,
        })
    }

    /// Word width of every gate in the bank.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The backend lazily-built gates will use.
    pub fn backend_choice(&self) -> BackendChoice {
        self.choice
    }

    /// Total operand sets evaluated across both sessions.
    pub fn sets_evaluated(&self) -> u64 {
        self.maj3
            .iter()
            .chain(self.xor2.iter())
            .map(GateSession::sets_evaluated)
            .sum()
    }

    fn maj3_session(&mut self) -> Result<&mut GateSession, GateError> {
        if self.maj3.is_none() {
            let gate = ParallelGateBuilder::new(self.waveguide)
                .channels(self.width)
                .inputs(3)
                .function(LogicFunction::Majority)
                .frequency_step(packed_frequency_step(self.width))
                .build()?;
            self.maj3 = Some(GateSession::new(gate, self.choice)?);
        }
        Ok(self.maj3.as_mut().expect("just built"))
    }

    fn xor2_session(&mut self) -> Result<&mut GateSession, GateError> {
        if self.xor2.is_none() {
            let gate = ParallelGateBuilder::new(self.waveguide)
                .channels(self.width)
                .inputs(2)
                .function(LogicFunction::Xor)
                .frequency_step(packed_frequency_step(self.width))
                .build()?;
            self.xor2 = Some(GateSession::new(gate, self.choice)?);
        }
        Ok(self.xor2.as_mut().expect("just built"))
    }
}

impl GateDispatcher for GateBank {
    fn width(&self) -> usize {
        self.width
    }

    fn dispatch(
        &mut self,
        shape: GateShape,
        batch: &[OperandSet],
    ) -> Result<Vec<GateOutput>, GateError> {
        self.dispatch_calls += 1;
        self.sets_dispatched += batch.len() as u64;
        let session = match shape {
            GateShape::Maj3 => self.maj3_session()?,
            GateShape::Xor2 => self.xor2_session()?,
        };
        session.evaluate_batch(batch)
    }

    fn dispatch_stats(&self) -> DispatchStats {
        DispatchStats {
            dispatch_calls: self.dispatch_calls,
            sets_dispatched: self.sets_dispatched,
        }
    }
}

/// A feed-forward circuit over `n`-bit words.
///
/// Nodes may only reference earlier nodes, so evaluation is a single
/// forward pass.
///
/// # Examples
///
/// ```
/// use magnon_circuits::netlist::Circuit;
/// use magnon_core::word::Word;
///
/// # fn main() -> Result<(), magnon_core::GateError> {
/// let mut c = Circuit::new(8)?;
/// let a = c.input();
/// let b = c.input();
/// let x = c.xor2(a, b)?;
/// c.mark_output(x)?;
/// let out = c.evaluate(&[Word::from_u8(0xF0), Word::from_u8(0xAA)])?;
/// assert_eq!(out[0].to_u8(), 0x5A);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    width: usize,
    nodes: Vec<Node>,
    input_count: usize,
    outputs: Vec<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit over words of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for widths outside
    /// `1..=64`.
    pub fn new(width: usize) -> Result<Self, GateError> {
        Word::zeros(width)?; // reuse word-width validation
        Ok(Circuit {
            width,
            nodes: Vec::new(),
            input_count: 0,
            outputs: Vec::new(),
        })
    }

    /// Word width carried by every wire.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of external inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// The output nodes in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Total node count (inputs, constants, gates and inversions).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of node `id`, or `None` for a foreign handle.
    pub fn node_kind(&self, id: NodeId) -> Option<NodeKind> {
        self.nodes.get(id.0).map(|node| match *node {
            Node::Input(index) => NodeKind::Input { index },
            Node::Constant(w) => NodeKind::Constant(w),
            Node::Maj3(a, b, c) => NodeKind::Maj3(a, b, c),
            Node::Xor2(a, b) => NodeKind::Xor2(a, b),
            Node::Not(a) => NodeKind::Not(a),
        })
    }

    /// Every node's kind in topological order (a node's operands always
    /// precede it) — the walk order compiler passes levelize over.
    pub fn node_kinds(&self) -> Vec<NodeKind> {
        self.node_ids()
            .map(|id| self.node_kind(id).expect("id enumerated from this circuit"))
            .collect()
    }

    /// Every node id in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Adds an external input and returns its node.
    pub fn input(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Input(self.input_count));
        self.input_count += 1;
        id
    }

    /// Adds a constant word.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::WordWidthMismatch`] when the constant's
    /// width differs from the circuit's.
    pub fn constant(&mut self, word: Word) -> Result<NodeId, GateError> {
        if word.width() != self.width {
            return Err(GateError::WordWidthMismatch {
                expected: self.width,
                actual: word.width(),
            });
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Constant(word));
        Ok(id)
    }

    fn check(&self, id: NodeId) -> Result<(), GateError> {
        if id.0 >= self.nodes.len() {
            return Err(GateError::InvalidParameter {
                parameter: "node_id",
                value: id.0 as f64,
            });
        }
        Ok(())
    }

    /// Adds a 3-input majority gate.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for dangling operands.
    pub fn maj3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> Result<NodeId, GateError> {
        self.check(a)?;
        self.check(b)?;
        self.check(c)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Maj3(a, b, c));
        Ok(id)
    }

    /// Adds a 2-input XOR gate.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for dangling operands.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GateError> {
        self.check(a)?;
        self.check(b)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Xor2(a, b));
        Ok(id)
    }

    /// Adds an inversion (free: inverted readout).
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a dangling operand.
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, GateError> {
        self.check(a)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Not(a));
        Ok(id)
    }

    /// AND via majority with a constant-0 input: `AND(a,b) = MAJ(a,b,0)`
    /// — the standard majority-logic construction (paper §I cites
    /// (N)AND/(N)OR gates built this way).
    ///
    /// # Errors
    ///
    /// Propagates operand validation.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GateError> {
        let zero = self.constant(Word::zeros(self.width)?)?;
        self.maj3(a, b, zero)
    }

    /// OR via majority with a constant-1 input: `OR(a,b) = MAJ(a,b,1)`.
    ///
    /// # Errors
    ///
    /// Propagates operand validation.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, GateError> {
        let one = self.constant(Word::ones(self.width)?)?;
        self.maj3(a, b, one)
    }

    /// Marks a node as a circuit output.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a dangling node.
    pub fn mark_output(&mut self, id: NodeId) -> Result<(), GateError> {
        self.check(id)?;
        self.outputs.push(id);
        Ok(())
    }

    /// Counts gates by type.
    pub fn gate_counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for node in &self.nodes {
            match node {
                Node::Maj3(..) => counts.maj3 += 1,
                Node::Xor2(..) => counts.xor2 += 1,
                Node::Not(..) => counts.not += 1,
                _ => {}
            }
        }
        counts
    }

    fn check_inputs(&self, inputs: &[Word]) -> Result<(), GateError> {
        if inputs.len() != self.input_count {
            return Err(GateError::InputCountMismatch {
                expected: self.input_count,
                actual: inputs.len(),
            });
        }
        for w in inputs {
            if w.width() != self.width {
                return Err(GateError::WordWidthMismatch {
                    expected: self.width,
                    actual: w.width(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the circuit on `input_count` words, returning one word
    /// per marked output — the boolean reference semantics.
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] for the wrong operand count.
    /// * [`GateError::WordWidthMismatch`] for mis-sized operands.
    pub fn evaluate(&self, inputs: &[Word]) -> Result<Vec<Word>, GateError> {
        let sets = [inputs.to_vec()];
        let mut outputs = self.evaluate_batch(&sets)?;
        Ok(outputs.pop().expect("one set in, one set out"))
    }

    /// Evaluates the circuit in the boolean reference semantics for
    /// many operand sets, returning one output vector per set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::evaluate`], per set.
    pub fn evaluate_batch(&self, sets: &[Vec<Word>]) -> Result<Vec<Vec<Word>>, GateError> {
        let width = self.width;
        self.run_engine(sets, |shape, batch| {
            batch
                .iter()
                .map(|set| {
                    let w = set.words();
                    match shape {
                        GateShape::Maj3 => Word::from_bits(
                            (w[0].bits() & w[1].bits())
                                | (w[0].bits() & w[2].bits())
                                | (w[1].bits() & w[2].bits()),
                            width,
                        ),
                        GateShape::Xor2 => Word::from_bits(w[0].bits() ^ w[1].bits(), width),
                    }
                })
                .collect()
        })
    }

    /// Evaluates the circuit with every MAJ/XOR node routed through a
    /// physical spin-wave gate from `bank`.
    ///
    /// # Errors
    ///
    /// * Operand shape errors as in [`Circuit::evaluate`].
    /// * Gate-construction and backend errors from the bank.
    pub fn evaluate_with(
        &self,
        bank: &mut GateBank,
        inputs: &[Word],
    ) -> Result<Vec<Word>, GateError> {
        self.evaluate_on(bank, inputs)
    }

    /// Evaluates many operand sets through `bank`'s physical gates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::evaluate_batch_on`].
    pub fn evaluate_batch_with(
        &self,
        bank: &mut GateBank,
        sets: &[Vec<Word>],
    ) -> Result<Vec<Vec<Word>>, GateError> {
        self.evaluate_batch_on(bank, sets)
    }

    /// Evaluates one operand set through any [`GateDispatcher`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::evaluate_batch_on`].
    pub fn evaluate_on(
        &self,
        dispatcher: &mut dyn GateDispatcher,
        inputs: &[Word],
    ) -> Result<Vec<Word>, GateError> {
        let sets = [inputs.to_vec()];
        let mut outputs = self.evaluate_batch_on(dispatcher, &sets)?;
        Ok(outputs.pop().expect("one set in, one set out"))
    }

    /// Evaluates many operand sets through any [`GateDispatcher`] —
    /// an inline [`GateBank`] or a serving scheduler.
    ///
    /// The walk is node-major: each MAJ/XOR node sends *all* sets to the
    /// dispatcher as one [`GateDispatcher::dispatch`] batch, so the
    /// per-node gate work is batched exactly where the paper's data
    /// parallelism lives (and a scheduler-backed dispatcher can coalesce
    /// it further with unrelated traffic).
    ///
    /// # Errors
    ///
    /// * Operand shape errors as in [`Circuit::evaluate`], per set.
    /// * [`GateError::WordWidthMismatch`] when the dispatcher's gates
    ///   carry a different word width than the circuit.
    /// * Gate-construction and backend errors from the dispatcher.
    pub fn evaluate_batch_on(
        &self,
        dispatcher: &mut dyn GateDispatcher,
        sets: &[Vec<Word>],
    ) -> Result<Vec<Vec<Word>>, GateError> {
        if dispatcher.width() != self.width {
            return Err(GateError::WordWidthMismatch {
                expected: self.width,
                actual: dispatcher.width(),
            });
        }
        self.run_engine(sets, |shape, batch| {
            Ok(dispatcher
                .dispatch(shape, batch)?
                .into_iter()
                .map(|out| out.word())
                .collect())
        })
    }

    /// The one circuit-walk engine every `evaluate_*` entry point
    /// shares, parameterized by how a per-node batch of gate operands
    /// turns into output words: the boolean reference semantics
    /// computes them bitwise, the physical paths hand them to a
    /// [`GateDispatcher`] (inline bank, serving scheduler), and a
    /// compiled plan's executor replays the same node order through
    /// scheduler tickets.
    ///
    /// The walk is node-major: each MAJ/XOR node evaluates *all* sets
    /// as one batch, free nodes (inputs, constants, inversions) resolve
    /// in place.
    fn run_engine<F>(&self, sets: &[Vec<Word>], mut eval: F) -> Result<Vec<Vec<Word>>, GateError>
    where
        F: FnMut(GateShape, &[OperandSet]) -> Result<Vec<Word>, GateError>,
    {
        for set in sets {
            self.check_inputs(set)?;
        }
        // values[set][node] — grown one node (for every set) at a time.
        let mut values: Vec<Vec<Word>> = vec![Vec::with_capacity(self.nodes.len()); sets.len()];
        let mut batch: Vec<OperandSet> = Vec::with_capacity(sets.len());
        for node in &self.nodes {
            match *node {
                Node::Input(k) => {
                    for (per_set, set) in values.iter_mut().zip(sets) {
                        per_set.push(set[k]);
                    }
                }
                Node::Constant(w) => {
                    for per_set in &mut values {
                        per_set.push(w);
                    }
                }
                Node::Not(a) => {
                    for per_set in &mut values {
                        let v = per_set[a.0].not();
                        per_set.push(v);
                    }
                }
                Node::Maj3(a, b, c) => {
                    batch.clear();
                    batch.extend(values.iter().map(|per_set| {
                        OperandSet::new(vec![per_set[a.0], per_set[b.0], per_set[c.0]])
                    }));
                    let outs = eval(GateShape::Maj3, &batch)?;
                    for (per_set, out) in values.iter_mut().zip(outs) {
                        per_set.push(out);
                    }
                }
                Node::Xor2(a, b) => {
                    batch.clear();
                    batch.extend(
                        values
                            .iter()
                            .map(|per_set| OperandSet::new(vec![per_set[a.0], per_set[b.0]])),
                    );
                    let outs = eval(GateShape::Xor2, &batch)?;
                    for (per_set, out) in values.iter_mut().zip(outs) {
                        per_set.push(out);
                    }
                }
            }
        }
        Ok(values
            .into_iter()
            .map(|per_set| self.outputs.iter().map(|id| per_set[id.0]).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_evaluates_to_nothing() {
        let c = Circuit::new(8).unwrap();
        assert!(c.evaluate(&[]).unwrap().is_empty());
        assert!(Circuit::new(0).is_err());
    }

    #[test]
    fn maj_gate_identity() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m = c.maj3(a, b, d).unwrap();
        c.mark_output(m).unwrap();
        let out = c
            .evaluate(&[
                Word::from_u8(0x0F),
                Word::from_u8(0x33),
                Word::from_u8(0x55),
            ])
            .unwrap();
        assert_eq!(out[0].to_u8(), 0x17);
    }

    #[test]
    fn and_or_via_majority() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let and = c.and2(a, b).unwrap();
        let or = c.or2(a, b).unwrap();
        c.mark_output(and).unwrap();
        c.mark_output(or).unwrap();
        let out = c
            .evaluate(&[Word::from_u8(0b1100), Word::from_u8(0b1010)])
            .unwrap();
        assert_eq!(out[0].to_u8(), 0b1000);
        assert_eq!(out[1].to_u8(), 0b1110);
    }

    #[test]
    fn not_is_free_and_correct() {
        let mut c = Circuit::new(4).unwrap();
        let a = c.input();
        let n = c.not(a).unwrap();
        c.mark_output(n).unwrap();
        let out = c.evaluate(&[Word::from_bits(0b0110, 4).unwrap()]).unwrap();
        assert_eq!(out[0].bits(), 0b1001);
        assert_eq!(c.gate_counts().not, 1);
        assert_eq!(c.gate_counts().transducers(), 0);
    }

    #[test]
    fn gate_counts_and_transducers() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let x = c.xor2(a, b).unwrap();
        let m = c.maj3(a, b, x).unwrap();
        let _ = c.not(m).unwrap();
        let counts = c.gate_counts();
        assert_eq!(counts.maj3, 1);
        assert_eq!(counts.xor2, 1);
        assert_eq!(counts.not, 1);
        assert_eq!(counts.transducers(), 7);
    }

    #[test]
    fn dangling_references_rejected() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let bogus = NodeId(99);
        assert!(c.maj3(a, a, bogus).is_err());
        assert!(c.xor2(bogus, a).is_err());
        assert!(c.not(bogus).is_err());
        assert!(c.mark_output(bogus).is_err());
    }

    #[test]
    fn operand_validation() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        c.mark_output(a).unwrap();
        assert!(matches!(
            c.evaluate(&[]),
            Err(GateError::InputCountMismatch { .. })
        ));
        let narrow = Word::zeros(4).unwrap();
        assert!(matches!(
            c.evaluate(&[narrow]),
            Err(GateError::WordWidthMismatch { .. })
        ));
        assert!(c.constant(narrow).is_err());
    }

    fn full_adder_circuit() -> Circuit {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let cin = c.input();
        let axb = c.xor2(a, b).unwrap();
        let sum = c.xor2(axb, cin).unwrap();
        let carry = c.maj3(a, b, cin).unwrap();
        c.mark_output(sum).unwrap();
        c.mark_output(carry).unwrap();
        c
    }

    fn sample_sets(count: usize) -> Vec<Vec<Word>> {
        (0..count as u64)
            .map(|i| {
                let seed = 0x9E37u64.wrapping_mul(i + 1);
                vec![
                    Word::from_u8(seed as u8),
                    Word::from_u8((seed >> 8) as u8),
                    Word::from_u8((seed >> 16) as u8),
                ]
            })
            .collect()
    }

    #[test]
    fn physical_gates_match_boolean_semantics() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let circuit = full_adder_circuit();
        let guide = Waveguide::paper_default().unwrap();
        let sets = sample_sets(6);
        let reference = circuit.evaluate_batch(&sets).unwrap();
        for choice in [BackendChoice::Analytic, BackendChoice::Cached] {
            let mut bank = GateBank::new(guide, 8, choice);
            let physical = circuit.evaluate_batch_with(&mut bank, &sets).unwrap();
            assert_eq!(physical, reference, "backend {choice:?}");
            assert!(bank.sets_evaluated() >= 3 * sets.len() as u64);
        }
    }

    #[test]
    fn evaluate_with_single_set_matches_batch() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let circuit = full_adder_circuit();
        let mut bank = GateBank::new(
            Waveguide::paper_default().unwrap(),
            8,
            BackendChoice::Cached,
        );
        let set = sample_sets(1).pop().unwrap();
        let single = circuit.evaluate_with(&mut bank, &set).unwrap();
        assert_eq!(single, circuit.evaluate(&set).unwrap());
    }

    #[test]
    fn bank_rejects_width_mismatch_and_bad_sessions() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let circuit = full_adder_circuit();
        let guide = Waveguide::paper_default().unwrap();
        let mut bank = GateBank::new(guide, 4, BackendChoice::Analytic);
        assert!(matches!(
            circuit.evaluate_with(&mut bank, &sample_sets(1)[0]),
            Err(GateError::WordWidthMismatch { .. })
        ));
        assert!(GateBank::with_sessions(guide, BackendChoice::Analytic, None, None).is_err());
    }

    #[test]
    fn with_sessions_lazily_fills_missing_slots_on_the_given_choice() {
        use magnon_core::backend::{BackendChoice, GateSession};
        use magnon_core::gate::ParallelGateBuilder;
        use magnon_physics::waveguide::Waveguide;
        let guide = Waveguide::paper_default().unwrap();
        let maj_gate = ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap();
        let maj3 = GateSession::new(maj_gate, BackendChoice::Cached).unwrap();
        // No XOR session provided: the full adder forces a lazy build,
        // which must use the bank's choice, not a silent default.
        let mut bank =
            GateBank::with_sessions(guide, BackendChoice::Cached, Some(maj3), None).unwrap();
        assert_eq!(bank.backend_choice(), BackendChoice::Cached);
        let circuit = full_adder_circuit();
        let set = sample_sets(1).pop().unwrap();
        let physical = circuit.evaluate_with(&mut bank, &set).unwrap();
        assert_eq!(physical, circuit.evaluate(&set).unwrap());
        // A wrong-shape XOR slot is rejected up front.
        let bad_xor = GateSession::new(
            ParallelGateBuilder::new(guide)
                .channels(8)
                .inputs(3)
                .function(LogicFunction::Majority)
                .build()
                .unwrap(),
            BackendChoice::Analytic,
        )
        .unwrap();
        assert!(matches!(
            GateBank::with_sessions(guide, BackendChoice::Analytic, None, Some(bad_xor)),
            Err(GateError::UnsupportedFunction { .. })
        ));
    }

    #[test]
    fn free_inversion_composes_with_physical_gates() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m = c.maj3(a, b, d).unwrap();
        let n = c.not(m).unwrap();
        c.mark_output(n).unwrap();
        let mut bank = GateBank::new(
            Waveguide::paper_default().unwrap(),
            8,
            BackendChoice::Analytic,
        );
        let inputs = vec![
            Word::from_u8(0x0F),
            Word::from_u8(0x33),
            Word::from_u8(0x55),
        ];
        let out = c.evaluate_with(&mut bank, &inputs).unwrap();
        assert_eq!(out[0].to_u8(), !0x17u8);
    }

    #[test]
    fn bank_dispatches_shapes_through_the_trait() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let mut bank = GateBank::new(
            Waveguide::paper_default().unwrap(),
            8,
            BackendChoice::Cached,
        );
        let dispatcher: &mut dyn GateDispatcher = &mut bank;
        assert_eq!(dispatcher.width(), 8);
        let batch = vec![OperandSet::new(vec![
            Word::from_u8(0x0F),
            Word::from_u8(0x33),
            Word::from_u8(0x55),
        ])];
        let outs = dispatcher.dispatch(GateShape::Maj3, &batch).unwrap();
        assert_eq!(outs[0].word().to_u8(), 0x17);
        let batch = vec![OperandSet::new(vec![
            Word::from_u8(0xF0),
            Word::from_u8(0xAA),
        ])];
        let outs = dispatcher.dispatch(GateShape::Xor2, &batch).unwrap();
        assert_eq!(outs[0].word().to_u8(), 0x5A);
        assert_eq!(GateShape::Maj3.function(), LogicFunction::Majority);
        assert_eq!(GateShape::Xor2.input_count(), 2);
        // The bank surfaces its traffic counters through the trait.
        let stats = dispatcher.dispatch_stats();
        assert_eq!(stats.dispatch_calls, 2);
        assert_eq!(stats.sets_dispatched, 2);
    }

    #[test]
    fn packed_step_keeps_wide_plans_buildable() {
        assert_eq!(packed_frequency_step(8), 10.0e9);
        assert_eq!(packed_frequency_step(16), 5.0e9);
        assert_eq!(packed_frequency_step(32), 2.5e9);
    }

    #[test]
    fn fdm_lane_bands_are_disjoint_with_guard_bands() {
        for width in [4usize, 8, 16] {
            let step = packed_frequency_step(width);
            for lane in 0u16..3 {
                let base = fdm_lane_base(lane, width);
                let band_high = base + (width as f64 - 1.0) * step;
                let next_base = fdm_lane_base(lane + 1, width);
                assert!(
                    next_base - band_high >= fdm_lane_guard_band(width) - 1.0,
                    "lane {lane} (w{width}) must keep a two-step guard band"
                );
            }
        }
        assert_eq!(fdm_lane_base(0, 8), 10.0e9);
        assert_eq!(fdm_lane_base(1, 8), 100.0e9);
        assert_eq!(fdm_lane_guard_band(8), 20.0e9);
    }

    #[test]
    fn fdm_lane_grid_survives_real_channel_plans() {
        // The arithmetic above is what the grid promises; what a placer
        // actually packs are built ChannelPlans — verify the promise
        // survives construction (band edges, overlap predicate, guard
        // band) for every width class of the packed grid.
        use magnon_core::channel::{ChannelPlan, DispersionModel};
        use magnon_physics::waveguide::Waveguide;
        let guide = Waveguide::paper_default().unwrap();
        for width in [4usize, 8, 12] {
            let step = packed_frequency_step(width);
            let plans: Vec<ChannelPlan> = (0u16..3)
                .map(|lane| {
                    ChannelPlan::uniform(
                        &guide,
                        DispersionModel::Exchange,
                        width,
                        fdm_lane_base(lane, width),
                        step,
                    )
                    .unwrap()
                })
                .collect();
            for (i, a) in plans.iter().enumerate() {
                for b in &plans[i + 1..] {
                    assert!(!a.overlaps(b), "w{width}: lane bands must stay disjoint");
                    assert!(
                        a.guard_band_to(b) >= fdm_lane_guard_band(width) - 1.0,
                        "w{width}: built plans must keep the two-step guard band"
                    );
                }
            }
        }
    }

    #[test]
    fn node_accessors_expose_the_ir() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let x = c.xor2(a, b).unwrap();
        let m = c.maj3(a, b, x).unwrap();
        let n = c.not(m).unwrap();
        c.mark_output(n).unwrap();
        assert_eq!(c.node_count(), 5);
        assert_eq!(a.index(), 0);
        assert_eq!(n.index(), 4);
        let kinds = c.node_kinds();
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0], NodeKind::Input { index: 0 });
        assert_eq!(kinds[2], NodeKind::Xor2(a, b));
        assert_eq!(kinds[2].gate_shape(), Some(GateShape::Xor2));
        assert_eq!(kinds[3].operands(), vec![a, b, x]);
        assert_eq!(kinds[4].gate_shape(), None);
        assert_eq!(kinds[4].operands(), vec![m]);
        assert!(c.node_kind(NodeId(99)).is_none());
        // Operands always precede their consumers in node_ids order.
        for (i, kind) in kinds.iter().enumerate() {
            for op in kind.operands() {
                assert!(op.index() < i);
            }
        }
    }

    #[test]
    fn parallelism_is_bitwise_independent() {
        // Each channel (bit position) computes independently: evaluating
        // all 8 MAJ combos at once matches per-bit evaluation.
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m = c.maj3(a, b, d).unwrap();
        c.mark_output(m).unwrap();
        // Channel i carries combination i.
        let a_w = Word::from_u8(0b10101010);
        let b_w = Word::from_u8(0b11001100);
        let d_w = Word::from_u8(0b11110000);
        let out = c.evaluate(&[a_w, b_w, d_w]).unwrap()[0];
        for i in 0..8 {
            let expected = [false, false, false, true, false, true, true, true][i];
            assert_eq!(out.bit(i).unwrap(), expected, "combo {i}");
        }
    }
}
