//! Micromagnetic validation of a data-parallel majority gate — the
//! paper's Fig. 3/4 methodology on a reduced (3-channel) gate so the
//! example finishes in tens of seconds. For the full byte-wide runs use
//! `cargo run --release -p magnon-bench --bin repro_fig3`.
//!
//! Run with: `cargo run --release --example byte_majority_gate`

use spinwave_parallel::core::micromag_bridge::{MicromagValidator, ValidationSettings};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::waveguide::Waveguide;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
        .channels(3)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;
    let n = gate.word_width();
    println!(
        "micromagnetic validation: {}-channel MAJ-3, frequencies {:?} GHz",
        n,
        gate.channel_plan()
            .frequencies()
            .iter()
            .map(|f| f / 1e9)
            .collect::<Vec<_>>()
    );

    let settings = ValidationSettings {
        duration: Some(2.5e-9),
        ..ValidationSettings::default()
    };
    let mut validator = MicromagValidator::with_settings(&gate, settings);

    // Drive each input combination on all channels simultaneously
    // (the paper's Fig. 3 protocol) and decode from the LLG simulation.
    println!("\ncombo  expected  micromagnetic  analytic  phase-deltas (rad)");
    for combo in 0..8usize {
        let bit = |j: usize| (combo >> j) & 1 == 1;
        let word_for = |set: bool| -> Result<Word, GateError> {
            if set {
                Word::ones(n)
            } else {
                Word::zeros(n)
            }
        };
        let inputs = [word_for(bit(0))?, word_for(bit(1))?, word_for(bit(2))?];
        let (micromag, analytic) = validator.cross_check(&inputs)?;
        let expected = combo.count_ones() >= 2;
        let reading = validator.evaluate(&inputs)?;
        println!(
            "{:03b}    {}         {}            {}       {:?}",
            combo,
            expected as u8,
            micromag,
            analytic,
            reading
                .phase_deltas
                .iter()
                .map(|p| (p * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            micromag, analytic,
            "micromagnetic and analytic decode differ"
        );
    }
    println!("\nall input combinations validated micromagnetically");
    Ok(())
}
