//! The Landau–Lifshitz–Gilbert equation for a single macrospin.
//!
//! The paper's eq. (1):
//!
//! ```text
//! dm/dt = −|γ| μ₀ (m × H_eff) + α (m × dm/dt)
//! ```
//!
//! is integrated here in its explicit Landau–Lifshitz form
//!
//! ```text
//! dm/dt = −γ' / (1 + α²) [ m × H + α m × (m × H) ],   γ' = |γ| μ₀
//! ```
//!
//! which is algebraically equivalent and avoids the implicit `dm/dt` on
//! the right-hand side. [`llg_rhs`] is the single-spin kernel shared by
//! the macrospin tests here and by the full finite-difference solver in
//! `magnon-micromag`.

use crate::error::PhysicsError;
use magnon_math::constants::{GAMMA_E, MU_0};
use magnon_math::integrate::{OdeSystem, Rk4};
use magnon_math::Vec3;

/// Right-hand side of the LLG equation in Landau–Lifshitz form.
///
/// * `m` — unit magnetization direction,
/// * `h_eff` — effective field in A/m,
/// * `alpha` — Gilbert damping.
///
/// Returns `dm/dt` in 1/s.
///
/// # Examples
///
/// ```
/// use magnon_math::Vec3;
/// use magnon_physics::macrospin::llg_rhs;
///
/// // No damping: torque is perpendicular to both m and H.
/// let dm = llg_rhs(Vec3::Z, Vec3::new(1.0e5, 0.0, 0.0), 0.0);
/// assert!(dm.z.abs() < 1e-3);
/// ```
#[inline]
pub fn llg_rhs(m: Vec3, h_eff: Vec3, alpha: f64) -> Vec3 {
    let gamma_prime = GAMMA_E * MU_0;
    let prefactor = -gamma_prime / (1.0 + alpha * alpha);
    let m_x_h = m.cross(h_eff);
    let m_x_m_x_h = m.cross(m_x_h);
    (m_x_h + m_x_m_x_h * alpha) * prefactor
}

/// A single macrospin in a static applied field, exposed as an ODE
/// system for the integrators in [`magnon_math::integrate`].
///
/// # Examples
///
/// ```
/// use magnon_math::Vec3;
/// use magnon_physics::macrospin::Macrospin;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// // Precession about a +z field.
/// let spin = Macrospin::new(Vec3::new(0.0, 0.0, 1.0e5), 0.01)?;
/// let f = spin.precession_frequency();
/// assert!(f > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Macrospin {
    field: Vec3,
    alpha: f64,
}

impl Macrospin {
    /// Creates a macrospin in the static field `field` (A/m) with
    /// Gilbert damping `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidMaterial`] for `alpha` outside
    /// `[0, 1)`.
    pub fn new(field: Vec3, alpha: f64) -> Result<Self, PhysicsError> {
        if !(alpha.is_finite() && (0.0..1.0).contains(&alpha)) {
            return Err(PhysicsError::InvalidMaterial {
                parameter: "gilbert_damping",
                value: alpha,
            });
        }
        Ok(Macrospin { field, alpha })
    }

    /// The applied field in A/m.
    pub fn field(&self) -> Vec3 {
        self.field
    }

    /// Larmor precession frequency `γ' |H| / (2π (1 + α²))` in Hz.
    pub fn precession_frequency(&self) -> f64 {
        GAMMA_E * MU_0 * self.field.norm()
            / (2.0 * std::f64::consts::PI * (1.0 + self.alpha * self.alpha))
    }

    /// Integrates the spin from `m0` for `duration` seconds with step
    /// `dt`, returning the trajectory sampled every step (including the
    /// initial state).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for non-positive
    /// `duration` or `dt`.
    pub fn integrate(&self, m0: Vec3, duration: f64, dt: f64) -> Result<Vec<Vec3>, PhysicsError> {
        for (name, v) in [("duration", duration), ("dt", dt)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(PhysicsError::InvalidGeometry {
                    parameter: name,
                    value: v,
                });
            }
        }
        let steps = (duration / dt).round().max(1.0) as usize;
        let mut rk4 = Rk4::new(3)?;
        let mut y = [m0.x, m0.y, m0.z];
        let mut out = Vec::with_capacity(steps + 1);
        out.push(m0);
        for s in 0..steps {
            rk4.step(self, s as f64 * dt, &mut y, dt);
            // Project back onto the unit sphere: |m| is an LLG invariant.
            let mut m = Vec3::new(y[0], y[1], y[2]);
            m.renormalize();
            y = [m.x, m.y, m.z];
            out.push(m);
        }
        Ok(out)
    }
}

impl OdeSystem for Macrospin {
    fn dim(&self) -> usize {
        3
    }

    fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let m = Vec3::new(y[0], y[1], y[2]);
        let d = llg_rhs(m, self.field, self.alpha);
        dydt[0] = d.x;
        dydt[1] = d.y;
        dydt[2] = d.z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torque_perpendicular_to_m() {
        let m = Vec3::new(0.6, 0.0, 0.8);
        let h = Vec3::new(0.0, 2.0e5, 1.0e5);
        let dm = llg_rhs(m, h, 0.02);
        // dm/dt ⟂ m always (both terms are cross products with m).
        assert!(dm.dot(m).abs() / dm.norm() < 1e-12);
    }

    #[test]
    fn no_torque_when_aligned() {
        let dm = llg_rhs(Vec3::Z, Vec3::new(0.0, 0.0, 5.0e5), 0.004);
        assert!(dm.norm() < 1e-6);
    }

    #[test]
    fn damping_pulls_toward_field() {
        // With damping, the m×(m×H) term has a positive projection of
        // dm/dt onto H when m is tilted away.
        let m = Vec3::new(1.0, 0.0, 0.0);
        let h = Vec3::new(0.0, 0.0, 1.0e5);
        let dm = llg_rhs(m, h, 0.1);
        assert!(dm.z > 0.0, "damping must rotate m toward +z");
    }

    #[test]
    fn precession_frequency_matches_integration() {
        // 0.2 T equivalent field along z: f ≈ 28.02 GHz/T · 0.2 T.
        let h_amps = 0.2 / MU_0;
        let spin = Macrospin::new(Vec3::new(0.0, 0.0, h_amps), 0.0).unwrap();
        let f_expected = spin.precession_frequency();

        // Integrate a tilted spin and measure the x-component period.
        let m0 = Vec3::new(0.5, 0.0, 0.866_025_403_784_438_6);
        let dt = 1.0e-14;
        let period = 1.0 / f_expected;
        let traj = spin.integrate(m0, 2.2 * period, dt).unwrap();
        // Find the first two upward zero crossings of m_x.
        let mut crossings = Vec::new();
        for w in traj.windows(2).enumerate() {
            let (i, pair) = w;
            if pair[0].x < 0.0 && pair[1].x >= 0.0 {
                crossings.push(i as f64 * dt);
            }
        }
        assert!(crossings.len() >= 2, "need two zero crossings");
        let measured_period = crossings[1] - crossings[0];
        let f_measured = 1.0 / measured_period;
        assert!(
            (f_measured - f_expected).abs() / f_expected < 5e-3,
            "f_measured = {f_measured}, f_expected = {f_expected}"
        );
    }

    #[test]
    fn norm_preserved_during_precession() {
        let spin = Macrospin::new(Vec3::new(0.0, 0.0, 1.0e5), 0.004).unwrap();
        let m0 = Vec3::new(0.3, 0.0, 0.954).normalized().unwrap();
        let traj = spin.integrate(m0, 1.0e-9, 1.0e-13).unwrap();
        for m in traj {
            assert!((m.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn damped_spin_relaxes_to_field_axis() {
        let spin = Macrospin::new(Vec3::new(0.0, 0.0, 5.0e5), 0.1).unwrap();
        let m0 = Vec3::new(0.9, 0.0, 0.435_889_894_354_067_4);
        let traj = spin.integrate(m0, 5.0e-9, 1.0e-13).unwrap();
        let last = traj.last().unwrap();
        assert!(last.z > 0.999, "m_z = {} after relaxation", last.z);
    }

    #[test]
    fn zero_damping_conserves_mz() {
        let spin = Macrospin::new(Vec3::new(0.0, 0.0, 2.0e5), 0.0).unwrap();
        let m0 = Vec3::new(0.6, 0.0, 0.8);
        let traj = spin.integrate(m0, 0.5e-9, 1.0e-13).unwrap();
        for m in traj {
            assert!((m.z - 0.8).abs() < 1e-6);
        }
    }

    #[test]
    fn constructor_validation() {
        assert!(Macrospin::new(Vec3::Z, -0.1).is_err());
        assert!(Macrospin::new(Vec3::Z, 1.0).is_err());
        let spin = Macrospin::new(Vec3::Z, 0.0).unwrap();
        assert!(spin.integrate(Vec3::X, 0.0, 1e-13).is_err());
        assert!(spin.integrate(Vec3::X, 1e-9, -1.0).is_err());
    }
}
