//! TCP serving front-end for the spin-wave scheduler.
//!
//! The paper's `n`-bit data-parallel gate pays off at scale when many
//! *independent* clients stream operand words into one shared waveguide
//! batch. `magnon-serve` already coalesces in-process traffic; this
//! crate opens [`magnon_serve::Scheduler::submit`] to the network so
//! remote request streams join the same drain cycles:
//!
//! * [`protocol`] — a hand-rolled, versioned, checksummed,
//!   length-prefixed binary frame format (submit / response / error /
//!   retry-after / hello), following the `magnon_core::lut_store`
//!   conventions since the workspace's serde shim is a no-op;
//! * [`NetServer`] — an accept loop plus per-connection reader threads
//!   and writer pumps over plain `std::net` (the container vendors no
//!   tokio/mio); completions are delivered out of order by tag, and
//!   scheduler backpressure ([`magnon_serve::ServeError::QueueFull`])
//!   becomes a retry-after frame instead of a stalled reader;
//! * [`NetClient`] — a blocking client with pipelined submits,
//!   tag-matched waits and transparent bounded retry on backpressure.
//!
//! # Example
//!
//! ```
//! use magnon_core::backend::BackendChoice;
//! use magnon_core::gate::WaveguideId;
//! use magnon_core::word::Word;
//! use magnon_net::{NetClient, NetServer, NetServerConfig};
//! use magnon_physics::waveguide::Waveguide;
//! use magnon_serve::{SchedulerBuilder, ServeConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = SchedulerBuilder::new(ServeConfig::default());
//! builder.register_circuit_gates(
//!     Waveguide::paper_default()?,
//!     WaveguideId(0),
//!     8,
//!     BackendChoice::Cached,
//! )?;
//! let scheduler = Arc::new(builder.build()?);
//! let server = NetServer::bind(
//!     "127.0.0.1:0",
//!     Arc::clone(&scheduler),
//!     NetServerConfig::default(),
//! )?;
//!
//! let mut client = NetClient::connect(server.local_addr())?;
//! let maj3 = client.gate("maj3_w8_wg0").expect("advertised in the hello-ack");
//! let out = client.eval(
//!     maj3,
//!     &[Word::from_u8(0x0F), Word::from_u8(0x33), Word::from_u8(0x55)],
//! )?;
//! assert_eq!(out.to_u8(), 0x17);
//!
//! drop(client);
//! server.shutdown();
//! Arc::try_unwrap(scheduler).expect("no clients left").shutdown()?;
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use client::{NetClient, NetClientConfig, NetClientStats, RemoteGateId};
pub use error::{NetError, WireErrorCode};
pub use protocol::{Frame, GateInfo, MAX_FRAME_BYTES, NET_MAGIC, NET_VERSION};
pub use server::{NetServer, NetServerConfig, NetServerStats};
