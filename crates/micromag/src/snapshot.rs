//! Spatial analysis of magnetization snapshots.
//!
//! OOMMF workflows inspect `m(x)` snapshots as much as probe traces;
//! this module provides the Rust equivalents: per-row extraction of a
//! magnetization component, spatial FFT to read off the dominant
//! wavenumber (the k-space counterpart of the paper's Fig. 3), and
//! zero-crossing wavelength estimation.

use crate::error::SimError;
use crate::mesh::Mesh;
use magnon_math::fft;
use magnon_math::stats;
use magnon_math::Vec3;

/// A 1D profile of one magnetization component along the guide
/// (averaged across rows for 2D meshes).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialProfile {
    dx: f64,
    values: Vec<f64>,
}

impl SpatialProfile {
    /// Extracts the `m_x` profile from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `m.len()` does not
    /// match the mesh.
    pub fn mx(mesh: &Mesh, m: &[Vec3]) -> Result<Self, SimError> {
        Self::component(mesh, m, |v| v.x)
    }

    /// Extracts an arbitrary component profile from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `m.len()` does not
    /// match the mesh.
    pub fn component<F: Fn(Vec3) -> f64>(
        mesh: &Mesh,
        m: &[Vec3],
        extract: F,
    ) -> Result<Self, SimError> {
        if m.len() != mesh.cell_count() {
            return Err(SimError::InvalidParameter {
                parameter: "snapshot_len",
                value: m.len() as f64,
            });
        }
        let nx = mesh.nx();
        let ny = mesh.ny();
        let mut values = vec![0.0; nx];
        for j in 0..ny {
            let row = j * nx;
            for (i, v) in values.iter_mut().enumerate() {
                *v += extract(m[row + i]);
            }
        }
        for v in &mut values {
            *v /= ny as f64;
        }
        Ok(SpatialProfile {
            dx: mesh.dx(),
            values,
        })
    }

    /// Cell size along x in metres.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// The profile samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Restricts the profile to the window `[x_lo, x_hi)` (metres).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegionOutOfBounds`] for an empty window.
    pub fn window(&self, x_lo: f64, x_hi: f64) -> Result<SpatialProfile, SimError> {
        let i_lo = (x_lo / self.dx).max(0.0) as usize;
        let i_hi = ((x_hi / self.dx) as usize).min(self.values.len());
        if i_lo + 2 > i_hi {
            return Err(SimError::RegionOutOfBounds {
                what: "profile window",
                requested: x_lo,
                available: self.values.len() as f64 * self.dx,
            });
        }
        Ok(SpatialProfile {
            dx: self.dx,
            values: self.values[i_lo..i_hi].to_vec(),
        })
    }

    /// Dominant spatial wavenumber (rad/m) from the spatial FFT,
    /// ignoring the DC bin.
    ///
    /// # Errors
    ///
    /// Propagates FFT errors; returns [`SimError::InvalidParameter`]
    /// when the profile is too short.
    pub fn dominant_wavenumber(&self) -> Result<f64, SimError> {
        if self.values.len() < 8 {
            return Err(SimError::InvalidParameter {
                parameter: "profile_len",
                value: self.values.len() as f64,
            });
        }
        let spec = fft::fft_real(&self.values)?;
        let n = spec.len();
        let half = n / 2;
        let magnitudes: Vec<f64> = spec[1..half].iter().map(|z| z.abs()).collect();
        let (idx, _) = stats::argmax(&magnitudes)?;
        let bin = idx + 1;
        // Parabolic interpolation around the peak for sub-bin accuracy.
        let refined = if bin > 1 && bin + 1 < half {
            let (a, b, c) = (spec[bin - 1].abs(), spec[bin].abs(), spec[bin + 1].abs());
            let denom = a - 2.0 * b + c;
            if denom.abs() > 1e-300 {
                bin as f64 + 0.5 * (a - c) / denom
            } else {
                bin as f64
            }
        } else {
            bin as f64
        };
        let dk = 2.0 * std::f64::consts::PI / (n as f64 * self.dx);
        Ok(refined * dk)
    }

    /// Wavelength estimate from interpolated zero crossings (mean
    /// half-period × 2). More robust than the FFT for short windows.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when fewer than 3
    /// crossings exist.
    pub fn zero_crossing_wavelength(&self) -> Result<f64, SimError> {
        let mut crossings = Vec::new();
        for i in 0..self.values.len() - 1 {
            let (a, b) = (self.values[i], self.values[i + 1]);
            if (a == 0.0 && b != 0.0) || a * b < 0.0 {
                let frac = if a == b { 0.0 } else { a / (a - b) };
                crossings.push((i as f64 + frac) * self.dx);
            }
        }
        if crossings.len() < 3 {
            return Err(SimError::InvalidParameter {
                parameter: "zero_crossings",
                value: crossings.len() as f64,
            });
        }
        let spacing = (crossings.last().expect("non-empty")
            - crossings.first().expect("non-empty"))
            / (crossings.len() - 1) as f64;
        Ok(2.0 * spacing)
    }

    /// Peak absolute value of the profile.
    pub fn peak(&self) -> f64 {
        self.values.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Root-mean-square of the profile.
    pub fn rms(&self) -> f64 {
        let sum: f64 = self.values.iter().map(|v| v * v).sum();
        (sum / self.values.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::NM;

    fn sine_snapshot(mesh: &Mesh, lambda: f64, amplitude: f64) -> Vec<Vec3> {
        let k = 2.0 * std::f64::consts::PI / lambda;
        (0..mesh.cell_count())
            .map(|idx| {
                let (i, _) = mesh.coords(idx);
                let x = mesh.x_at(i);
                Vec3::new(amplitude * (k * x).sin(), 0.0, 1.0)
            })
            .collect()
    }

    fn mesh() -> Mesh {
        Mesh::line(1000.0 * NM, 1.0 * NM, 50.0 * NM, 1.0 * NM).unwrap()
    }

    #[test]
    fn length_validation() {
        let mesh = mesh();
        assert!(SpatialProfile::mx(&mesh, &[Vec3::Z; 3]).is_err());
    }

    #[test]
    fn fft_recovers_wavenumber() {
        let mesh = mesh();
        let lambda = 80.0 * NM;
        let snap = sine_snapshot(&mesh, lambda, 1e-3);
        let profile = SpatialProfile::mx(&mesh, &snap).unwrap();
        let k = profile.dominant_wavenumber().unwrap();
        let k_expected = 2.0 * std::f64::consts::PI / lambda;
        assert!(
            (k - k_expected).abs() / k_expected < 0.02,
            "k = {k}, expected {k_expected}"
        );
    }

    #[test]
    fn zero_crossings_recover_wavelength() {
        let mesh = mesh();
        let lambda = 64.0 * NM;
        let snap = sine_snapshot(&mesh, lambda, 1e-3);
        let profile = SpatialProfile::mx(&mesh, &snap).unwrap();
        let measured = profile.zero_crossing_wavelength().unwrap();
        assert!(
            (measured - lambda).abs() / lambda < 0.01,
            "λ = {measured}, expected {lambda}"
        );
    }

    #[test]
    fn window_restricts_range() {
        let mesh = mesh();
        let snap = sine_snapshot(&mesh, 100.0 * NM, 1.0);
        let profile = SpatialProfile::mx(&mesh, &snap).unwrap();
        let win = profile.window(200.0 * NM, 600.0 * NM).unwrap();
        assert_eq!(win.values().len(), 400);
        assert!(profile.window(990.0 * NM, 991.0 * NM).is_err());
    }

    #[test]
    fn averages_rows_in_2d() {
        let mesh = Mesh::plane(100.0 * NM, 10.0 * NM, 2.0 * NM, 2.0 * NM, 1.0 * NM).unwrap();
        // Rows alternate ±0.5: the average is 0; a uniform 0.2 offset
        // survives.
        let m: Vec<Vec3> = (0..mesh.cell_count())
            .map(|idx| {
                let (_, j) = mesh.coords(idx);
                let alt = if j % 2 == 0 { 0.5 } else { -0.5 };
                Vec3::new(alt + 0.2, 0.0, 1.0)
            })
            .collect();
        let profile = SpatialProfile::mx(&mesh, &m).unwrap();
        // 5 rows: 3 positive (+0.7), 2 negative (-0.3) -> mean 0.3.
        let expected = (3.0 * 0.7 - 2.0 * 0.3) / 5.0;
        for v in profile.values() {
            assert!((v - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn peak_and_rms() {
        let mesh = mesh();
        let snap = sine_snapshot(&mesh, 100.0 * NM, 2.0);
        let profile = SpatialProfile::mx(&mesh, &snap).unwrap();
        assert!((profile.peak() - 2.0).abs() < 0.01);
        assert!((profile.rms() - 2.0 / 2.0f64.sqrt()).abs() < 0.05);
    }

    #[test]
    fn short_profiles_rejected() {
        let mesh = Mesh::line(10.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let snap = vec![Vec3::Z; mesh.cell_count()];
        let profile = SpatialProfile::mx(&mesh, &snap).unwrap();
        assert!(profile.dominant_wavenumber().is_err());
        assert!(profile.zero_crossing_wavelength().is_err());
    }
}
