//! End-to-end tests for the TCP front-end: concurrent clients against
//! one scheduler, hostile peers, and wire-level backpressure.

use magnon_core::backend::BackendChoice;
use magnon_core::gate::{ParallelGate, WaveguideId};
use magnon_core::word::Word;
use magnon_net::{
    Frame, NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, RemoteGateId,
    NET_VERSION,
};
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{AdaptiveConfig, Scheduler, SchedulerBuilder, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A scheduler serving the circuit gate pair (maj3 + xor2) on two
/// waveguides, shared behind an Arc for the server threads.
fn serving_scheduler(config: ServeConfig) -> Arc<Scheduler> {
    let mut builder = SchedulerBuilder::new(config);
    for wg in [0u64, 1] {
        builder
            .register_circuit_gates(
                Waveguide::paper_default().unwrap(),
                WaveguideId(wg),
                8,
                BackendChoice::Cached,
            )
            .unwrap();
    }
    Arc::new(builder.build().unwrap())
}

fn quick_serve_config() -> ServeConfig {
    ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: 64,
        linger: Duration::from_micros(100),
        queue_depth: 256,
        lut_dir: None,
        adaptive: AdaptiveConfig::default(),
    }
}

/// Deterministic mixed-gate request stream for one client thread.
fn client_stream(seed: u64, count: usize) -> Vec<(usize, Vec<Word>)> {
    (0..count as u64)
        .map(|i| {
            let r = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i.wrapping_mul(0xD134_2543_DE82_EF95));
            // Gate indices cycle over the 4 registered gates
            // (maj/xor on each of two waveguides).
            let gate = (r % 4) as usize;
            let inputs = if gate.is_multiple_of(2) { 3 } else { 2 };
            let words = (0..inputs)
                .map(|j| Word::from_u8((r >> (8 * j)) as u8))
                .collect();
            (gate, words)
        })
        .collect()
}

#[test]
fn concurrent_clients_match_sequential_evaluation() {
    let scheduler = serving_scheduler(quick_serve_config());
    let reference: Vec<ParallelGate> = (0..scheduler.gate_count())
        .map(|i| {
            scheduler
                .gate(scheduler.gate_id(i).unwrap())
                .unwrap()
                .clone()
        })
        .collect();
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&scheduler),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 48;
    let mut all: Vec<Vec<(usize, Vec<Word>, Word)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).unwrap();
                    let stream = client_stream(c as u64 + 1, PER_CLIENT);
                    // Pipeline everything, then redeem in reverse order
                    // to prove tag-matched out-of-order delivery.
                    let tags: Vec<u64> = stream
                        .iter()
                        .map(|(gate, words)| {
                            client.submit(RemoteGateId(*gate as u32), words).unwrap()
                        })
                        .collect();
                    let mut results: Vec<(usize, Vec<Word>, Word)> = tags
                        .into_iter()
                        .zip(&stream)
                        .rev()
                        .map(|(tag, (gate, words))| {
                            (*gate, words.clone(), client.wait(tag).unwrap())
                        })
                        .collect();
                    results.reverse();
                    assert_eq!(client.stats().responses, PER_CLIENT as u64);
                    results
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every remote answer must equal the sequential in-process result.
    for results in all.drain(..) {
        for (gate, words, remote) in results {
            let expected = reference[gate].evaluate(&words).unwrap();
            assert_eq!(remote, expected.word(), "gate {gate} diverged over TCP");
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, CLIENTS as u64);
    assert_eq!(stats.responses, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.timeouts, 0);
    let scheduler = Arc::try_unwrap(scheduler).expect("server released its handle");
    let report = scheduler.shutdown().unwrap();
    assert_eq!(report.stats.completed, (CLIENTS * PER_CLIENT) as u64);
}

#[test]
fn hostile_peers_cannot_kill_the_server() {
    let scheduler = serving_scheduler(quick_serve_config());
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&scheduler),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // 1. Plain garbage instead of a hello: the server answers one
    //    protocol error (or just closes) and drops the connection.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\nHost: spinwave\r\n\r\n")
            .unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf); // server closes after the diagnostic
    }

    // 2. A version-mismatched hello is rejected with a diagnostic.
    {
        let mut client_err = None;
        // Drive the real client but fake the version via a raw frame.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(
            &Frame::Hello {
                version: NET_VERSION + 7,
            }
            .encode(),
        )
        .unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut reader = &raw;
        if let Ok(Frame::Error { message, .. }) = magnon_net::protocol::read_frame(&mut reader) {
            client_err = Some(message);
        }
        let message = client_err.expect("a version-mismatch diagnostic frame");
        assert!(
            message.contains("version"),
            "diagnostic should name the version problem: {message}"
        );
    }

    // 3. A truncated frame after a valid handshake: length prefix
    //    promises more bytes than ever arrive.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(
            &Frame::Hello {
                version: NET_VERSION,
            }
            .encode(),
        )
        .unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut reader = &raw;
        assert!(matches!(
            magnon_net::protocol::read_frame(&mut reader),
            Ok(Frame::HelloAck { .. })
        ));
        raw.write_all(&200u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        drop(raw); // close mid-frame
    }

    // 4. A frame whose checksum lies.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(
            &Frame::Hello {
                version: NET_VERSION,
            }
            .encode(),
        )
        .unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert!(matches!(
            magnon_net::protocol::read_frame(&mut (&raw)),
            Ok(Frame::HelloAck { .. })
        ));
        let mut corrupt = Frame::Submit {
            tag: 1,
            gate: 0,
            lane: None,
            operands: vec![Word::from_u8(1), Word::from_u8(2), Word::from_u8(3)],
        }
        .encode();
        let k = corrupt.len() - 9;
        corrupt[k] ^= 0xFF;
        raw.write_all(&corrupt).unwrap();
        // The server answers a tag-0 protocol diagnostic and closes.
        match magnon_net::protocol::read_frame(&mut (&raw)) {
            Ok(Frame::Error { tag: 0, .. }) => {}
            other => panic!("expected a protocol diagnostic, got {other:?}"),
        }
    }

    // After all four abuses, an honest client still gets served.
    let mut client = NetClient::connect(addr).unwrap();
    assert_eq!(client.gates().len(), 4);
    let maj3 = client.gate("maj3_w8_wg0").unwrap();
    let out = client
        .eval(
            maj3,
            &[
                Word::from_u8(0x0F),
                Word::from_u8(0x33),
                Word::from_u8(0x55),
            ],
        )
        .unwrap();
    assert_eq!(out.to_u8(), 0x17);
    // An unknown gate index errors without poisoning the connection
    // (the client catches it before any bytes move)…
    let err = client
        .eval(RemoteGateId(99), &[Word::from_u8(1)])
        .unwrap_err();
    assert!(matches!(err, NetError::BadRequest { .. }));
    // …and the client-side shape check does the same.
    let xor2 = client.gate("xor2_w8_wg0").unwrap();
    assert!(matches!(
        client.eval(xor2, &[Word::from_u8(1)]),
        Err(NetError::BadRequest { .. })
    ));
    let out = client.eval(xor2, &[Word::from_u8(0xF0), Word::from_u8(0xAA)]);
    assert_eq!(out.unwrap().to_u8(), 0x5A);
    drop(client);

    // A handcrafted wrong-shape submit that really crosses the wire
    // (the frame format allows 1..=16 operands for any gate): the
    // scheduler's gate error must come back as a tagged Gate error
    // frame through the writer pump, and the connection must survive.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(
            &Frame::Hello {
                version: NET_VERSION,
            }
            .encode(),
        )
        .unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert!(matches!(
            magnon_net::protocol::read_frame(&mut (&raw)),
            Ok(Frame::HelloAck { .. })
        ));
        // Gate 0 is a 3-input majority; send one operand.
        raw.write_all(
            &Frame::Submit {
                tag: 41,
                gate: 0,
                lane: None,
                operands: vec![Word::from_u8(0x7E)],
            }
            .encode(),
        )
        .unwrap();
        match magnon_net::protocol::read_frame(&mut (&raw)) {
            Ok(Frame::Error { tag: 41, code, .. }) => {
                assert_eq!(code, magnon_net::WireErrorCode::Gate)
            }
            other => panic!("expected a tagged gate error, got {other:?}"),
        }
        // The same connection still serves a well-formed request.
        raw.write_all(
            &Frame::Submit {
                tag: 42,
                gate: 0,
                lane: None,
                operands: vec![
                    Word::from_u8(0x0F),
                    Word::from_u8(0x33),
                    Word::from_u8(0x55),
                ],
            }
            .encode(),
        )
        .unwrap();
        match magnon_net::protocol::read_frame(&mut (&raw)) {
            Ok(Frame::Response { tag: 42, word }) => assert_eq!(word.to_u8(), 0x17),
            other => panic!("expected the response, got {other:?}"),
        }
    }

    let stats = server.shutdown();
    assert!(
        stats.connections_rejected >= 3,
        "the hostile peers must be counted: {stats:?}"
    );
    assert!(stats.connections_accepted >= 3);
    Arc::try_unwrap(scheduler).unwrap().shutdown().unwrap();
}

#[test]
fn lanes_ride_the_wire_directory_pins_and_fdm_coalescing() {
    use magnon_core::gate::LaneId;
    // Two frequency lanes of ONE waveguide: the v2 directory must
    // advertise both, lane-pinned submits must validate, and remote
    // traffic hitting both lanes must coalesce into multi-lane FDM
    // drains server-side.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 1,
        linger: Duration::from_millis(1),
        ..quick_serve_config()
    });
    for lane in [0u16, 1] {
        builder
            .register_circuit_gates_on_lane(
                Waveguide::paper_default().unwrap(),
                WaveguideId(0),
                LaneId(lane),
                8,
                BackendChoice::Cached,
            )
            .unwrap();
    }
    let scheduler = Arc::new(builder.build().unwrap());
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&scheduler),
        NetServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // The hello-ack directory lists both lanes of waveguide 0.
    let lanes: Vec<u16> = client
        .gates_on_waveguide(0)
        .map(|(_, lane, _)| lane)
        .collect();
    assert_eq!(lanes, vec![0, 0, 1, 1], "maj+xor on each of two lanes");
    assert!(client.gates().iter().all(|g| g.waveguide == 0));
    let maj_lane0 = client.gate("maj3_w8_wg0").unwrap();
    let maj_lane1 = client.gate("maj3_w8_wg0_lane1").unwrap();

    // Lane-pinned submits: the right pin serves, the wrong pin is
    // caught client-side against the directory…
    let words = [
        Word::from_u8(0x0F),
        Word::from_u8(0x33),
        Word::from_u8(0x55),
    ];
    let tag = client.submit_on_lane(maj_lane1, 1, &words).unwrap();
    assert_eq!(client.wait(tag).unwrap().to_u8(), 0x17);
    assert!(matches!(
        client.submit_on_lane(maj_lane1, 0, &words),
        Err(NetError::BadRequest { .. })
    ));
    // …and a pin that lies on the wire is rejected by the server with
    // the v2 lane-mismatch code.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(
            &Frame::Hello {
                version: NET_VERSION,
            }
            .encode(),
        )
        .unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert!(matches!(
            magnon_net::protocol::read_frame(&mut (&raw)),
            Ok(Frame::HelloAck { .. })
        ));
        raw.write_all(
            &Frame::Submit {
                tag: 77,
                gate: maj_lane1.index(),
                lane: Some(9),
                operands: words.to_vec(),
            }
            .encode(),
        )
        .unwrap();
        match magnon_net::protocol::read_frame(&mut (&raw)) {
            Ok(Frame::Error { tag: 77, code, .. }) => {
                assert_eq!(code, magnon_net::WireErrorCode::LaneMismatch)
            }
            other => panic!("expected a lane-mismatch error, got {other:?}"),
        }
    }

    // Interleaved remote traffic across both lanes coalesces into
    // multi-lane FDM drains on the shared waveguide.
    let requests: Vec<(RemoteGateId, Vec<Word>)> = (0..64u64)
        .map(|i| {
            let gate = if i % 2 == 0 { maj_lane0 } else { maj_lane1 };
            let words = (0..3)
                .map(|j| Word::from_u8((i.wrapping_mul(0x9E37_79B9) >> (8 * j)) as u8))
                .collect();
            (gate, words)
        })
        .collect();
    let outputs = client.eval_many(&requests).unwrap();
    let reference: Vec<ParallelGate> = (0..scheduler.gate_count())
        .map(|i| {
            scheduler
                .gate(scheduler.gate_id(i).unwrap())
                .unwrap()
                .clone()
        })
        .collect();
    for ((gate, words), output) in requests.iter().zip(&outputs) {
        assert_eq!(
            *output,
            reference[gate.index() as usize]
                .evaluate(words)
                .unwrap()
                .word()
        );
    }
    drop(client);
    server.shutdown();
    let scheduler = Arc::try_unwrap(scheduler).unwrap();
    let stats = scheduler.stats();
    assert!(
        stats.fdm_batches >= 1 && stats.fdm_lanes >= 2,
        "remote two-lane traffic must stack into FDM drains: {stats:?}"
    );
    scheduler.shutdown().unwrap();
}

#[test]
fn backpressure_surfaces_as_retry_after_and_still_completes() {
    // A tiny queue with a lingering worker: the per-connection reader
    // outruns the scheduler, so try_submit refusals must reach the
    // wire as retry-after frames — and the client's transparent
    // retries must still land every request exactly once.
    let scheduler = serving_scheduler(ServeConfig {
        keep_readouts: false,
        workers: 1,
        max_batch: 4,
        linger: Duration::from_micros(500),
        queue_depth: 1,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(),
    });
    let reference: Vec<ParallelGate> = (0..scheduler.gate_count())
        .map(|i| {
            scheduler
                .gate(scheduler.gate_id(i).unwrap())
                .unwrap()
                .clone()
        })
        .collect();
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&scheduler),
        NetServerConfig {
            retry_hint: Duration::from_micros(100),
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let mut client = NetClient::connect_with(
        server.local_addr(),
        NetClientConfig {
            wait_timeout: Duration::from_secs(30),
            ..NetClientConfig::default()
        },
    )
    .unwrap();
    let stream = client_stream(42, 128);
    let requests: Vec<(RemoteGateId, Vec<Word>)> = stream
        .iter()
        .map(|(gate, words)| (RemoteGateId(*gate as u32), words.clone()))
        .collect();
    let outputs = client.eval_many(&requests).unwrap();
    for ((gate, words), output) in stream.iter().zip(&outputs) {
        assert_eq!(
            *output,
            reference[*gate].evaluate(words).unwrap().word(),
            "backpressure retries must not duplicate or reorder results"
        );
    }
    let client_stats = client.stats();
    drop(client);
    let server_stats = server.shutdown();
    assert!(
        server_stats.retry_afters > 0,
        "a depth-1 queue under a pipelined flood must push back: {server_stats:?}"
    );
    assert_eq!(client_stats.retries, server_stats.retry_afters);
    assert_eq!(client_stats.responses, 128);
    let report = Arc::try_unwrap(scheduler).unwrap().shutdown().unwrap();
    assert_eq!(report.stats.completed, 128);
}
